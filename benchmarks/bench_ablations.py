"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these probe the design space around it:
cluster geometry (replication degree), scheduler policy (the dynamic-
scheduling sensitivity that motivates runtime-level classification), and
page size (Section V-E's closing remark that larger pages relieve RRT
pressure).
"""

from repro.config import scaled_config
from repro.experiments import ablations
from repro.stats.report import format_table

from .conftest import emit

CFG = scaled_config(1 / 256)


def test_cluster_size_ablation(benchmark):
    res = benchmark.pedantic(
        ablations.sweep_cluster_size,
        args=("knn", CFG),
        kwargs={"geometries": ((1, 1), (2, 2), (4, 4))},
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            f"{w}x{h}",
            f"{r.machine.mean_nuca_distance:.2f}",
            f"{r.machine.llc_hit_ratio:.2%}",
            f"{r.makespan:,}",
        ]
        for (w, h), r in res.items()
    ]
    emit(
        format_table(
            ["cluster", "NUCA distance", "hit ratio", "makespan"],
            rows,
            "Ablation: LLC Cluster Replication geometry (KNN)",
        )
    )
    # Replication degree trades distance against capacity: smaller
    # clusters must not be farther than chip-wide spreading.
    assert (
        res[(1, 1)].machine.mean_nuca_distance
        <= res[(4, 4)].machine.mean_nuca_distance + 0.05
    )


def test_scheduler_ablation(benchmark):
    res = benchmark.pedantic(
        ablations.sweep_scheduler, args=("histo", CFG), rounds=1, iterations=1
    )
    rows = [
        [
            name,
            f"{r.machine.mean_nuca_distance:.2f}",
            f"{r.makespan:,}",
        ]
        for name, r in res.items()
    ]
    emit(
        format_table(
            ["scheduler", "R-NUCA NUCA distance", "makespan"],
            rows,
            "Ablation: scheduler policy under R-NUCA (Histo)",
        )
    )
    assert {r.execution.tasks_executed for r in res.values()} == {
        res["ordered"].execution.tasks_executed
    }


def test_page_size_ablation(benchmark):
    res = benchmark.pedantic(
        ablations.sweep_page_size,
        args=("jacobi", CFG),
        kwargs={"page_sizes": (512, 2048)},
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            f"{p}",
            f"{r.runtime.mean_rrt_occupancy:.1f}",
            f"{r.isa.translation_tlb_accesses:,}",
        ]
        for p, r in res.items()
    ]
    emit(
        format_table(
            ["page bytes", "mean RRT occupancy", "translation TLB accesses"],
            rows,
            "Ablation: page size vs RRT pressure (Jacobi, Section V-E remark)",
        )
    )
    # Larger pages collapse to fewer RRT ranges and fewer TLB walks.
    assert (
        res[2048].isa.translation_tlb_accesses
        < res[512].isa.translation_tlb_accesses
    )
