"""Section II-A motivation: hardware-managed D-NUCA vs the co-designs.

The paper argues microarchitectural D-NUCA pays search latency and
migration traffic while knowing nothing about sharing or reuse.  This
bench runs the gradual-migration D-NUCA baseline next to S-NUCA and
TD-NUCA on three contrasting benchmarks:

* MD5 (private streaming) — migration chases blocks that are never
  touched again; D-NUCA cannot beat even S-NUCA by much, TD-NUCA's
  bypass wins.
* KNN (hot shared read-only set) — migration ping-pongs the training set
  between requesters (no replication!), TD-NUCA replicates it.
* Kmeans — mixed.
"""

from repro.config import scaled_config
from repro.experiments.runner import run_experiment
from repro.stats.report import format_table

from .conftest import emit

CFG = scaled_config(1 / 256)
BENCHES = ("md5", "knn", "kmeans")


def test_dnuca_vs_codesign(benchmark):
    def sweep():
        out = {}
        for wl in BENCHES:
            out[wl] = {
                pol: run_experiment(wl, pol, CFG)
                for pol in ("snuca", "dnuca", "tdnuca")
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for wl, by_policy in results.items():
        base = by_policy["snuca"].makespan
        rows.append(
            [
                wl,
                f"{base / by_policy['dnuca'].makespan:.3f}x",
                f"{base / by_policy['tdnuca'].makespan:.3f}x",
                f"{by_policy['dnuca'].machine.mean_nuca_distance:.2f}",
                f"{by_policy['tdnuca'].machine.mean_nuca_distance:.2f}",
            ]
        )
    emit(
        format_table(
            ["bench", "D-NUCA speedup", "TD-NUCA speedup",
             "D-NUCA distance", "TD-NUCA distance"],
            rows,
            "Hardware D-NUCA vs runtime-driven TD-NUCA (vs S-NUCA)",
        )
    )
    for wl, by_policy in results.items():
        base = by_policy["snuca"].makespan
        td = base / by_policy["tdnuca"].makespan
        dn = base / by_policy["dnuca"].makespan
        # Runtime knowledge beats blind migration on every benchmark here.
        assert td > dn, wl
        # D-NUCA never catastrophically regresses (it does migrate toward
        # requesters), but its search latency caps the gains.
        assert dn > 0.85, wl
