"""Fig. 3 — categorization of access and reuse patterns.

Paper: on average 96% of unique cache blocks belong to task dependencies
and 72% are predicted non-reused, while an OS-level classifier can only
call 36% of blocks private or shared read-only (and <1% shared-RO).
"""

from repro.experiments import figures, paper

from .conftest import emit


def test_fig3_classification(benchmark, suite):
    fig = benchmark(figures.fig3_classification, suite)
    emit(fig.to_text())
    by = {s.label: s for s in fig.series}

    # Dependencies cover (almost) all touched blocks.
    assert by["td_dep_blocks"].average > 0.9

    # NotReused is high exactly where the paper says it is...
    for bench in paper.FIG3_HIGH_NOT_REUSED:
        assert by["td_not_reused"].values[bench] > 0.8, bench
    # ...and low where bypass has nothing to do.
    for bench in paper.FIG3_LOW_NOT_REUSED:
        assert by["td_not_reused"].values[bench] < 0.3, bench
    assert by["td_not_reused"].values["gauss"] > 0.7

    # R-NUCA's optimizable fraction is small, shared-RO nearly absent.
    assert by["rnuca_private"].average + by["rnuca_shared_ro"].average < 0.6
    assert by["rnuca_shared_ro"].average < 0.05
