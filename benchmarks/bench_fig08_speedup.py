"""Fig. 8 — performance speedup normalized to S-NUCA.

Paper: TD-NUCA averages 1.18x (Gauss 1.26, LU 1.59, Redblack 1.20, Histo/
Jacobi/Kmeans 1.09-1.10, KNN/MD5 1.04); R-NUCA averages 1.02x with every
benchmark below 1.11x.
"""

from repro.experiments import figures

from .conftest import emit


def test_fig8_speedup(benchmark, suite):
    fig = benchmark(figures.fig8_speedup, suite)
    emit(fig.to_text())
    rnuca = next(s for s in fig.series if s.label == "rnuca")
    tdnuca = next(s for s in fig.series if s.label == "tdnuca")

    # TD-NUCA wins on every benchmark and clearly on average.
    for bench, speedup in tdnuca.values.items():
        assert speedup > 1.0, f"TD-NUCA slower on {bench}"
    assert 1.08 <= tdnuca.average <= 1.35

    # R-NUCA helps far less (paper: 1.02x average).
    assert rnuca.average < tdnuca.average
    assert rnuca.average < 1.12

    # TD-NUCA beats R-NUCA on the average and on most benchmarks.
    wins = sum(tdnuca.values[b] >= rnuca.values[b] for b in tdnuca.values)
    assert wins >= 6
