"""Fig. 9 — LLC accesses normalized to S-NUCA.

Paper: TD-NUCA needs only 0.48x the LLC accesses on average (0.14x for
MD5, 0.99x for KNN) thanks to bypassing; R-NUCA stays within 0.02x of
S-NUCA everywhere.
"""

from repro.experiments import figures

from .conftest import emit


def test_fig9_llc_accesses(benchmark, suite):
    fig = benchmark(figures.fig9_llc_accesses, suite)
    emit(fig.to_text())
    rnuca = next(s for s in fig.series if s.label == "rnuca")
    tdnuca = next(s for s in fig.series if s.label == "tdnuca")

    # R-NUCA never bypasses: access counts track S-NUCA.
    for bench, ratio in rnuca.values.items():
        assert abs(ratio - 1.0) < 0.1, bench

    # TD-NUCA cuts accesses overall; extremes land where the paper's do.
    assert tdnuca.average < 0.7
    assert tdnuca.values["md5"] < 0.2  # paper: 0.14x
    assert tdnuca.values["knn"] > 0.85  # paper: 0.99x
    assert all(r <= 1.02 for r in tdnuca.values.values())
