"""Fig. 10 — LLC hit ratio (absolute).

Paper: TD-NUCA averages 74% vs 41%/40% for S-NUCA/R-NUCA, because
bypassing removes the no-reuse traffic that thrashes the LLC; LU and KNN
are near-100% under every policy.
"""

from repro.experiments import figures, paper

from .conftest import emit


def test_fig10_hit_ratio(benchmark, suite):
    fig = benchmark(figures.fig10_hit_ratio, suite)
    emit(fig.to_text())
    by = {s.label: s for s in fig.series}

    # TD-NUCA's bypass protects the LLC: clearly higher average hit ratio.
    assert by["tdnuca"].average > by["snuca"].average + 0.15
    # S-NUCA and R-NUCA are close to each other (paper: 41% vs 40%).
    assert abs(by["snuca"].average - by["rnuca"].average) < 0.1

    # LU and KNN are high-hit for every policy (paper: ~100%, within 2%).
    for bench in paper.FIG10_HIGH_HIT_BENCHES:
        for pol in ("snuca", "rnuca", "tdnuca"):
            assert by[pol].values[bench] > 0.85, (bench, pol)
