"""Fig. 11 — average NUCA distance in hops (bypassed accesses excluded).

Paper: S-NUCA sits at 2.49 (theoretical 2.5); R-NUCA reaches 1.46 and
TD-NUCA 1.91 — TD-NUCA's number is *higher* than R-NUCA's only because
its bypassed majority is excluded from the metric; in the benchmarks with
few bypasses (Histo, KNN, LU) TD-NUCA is clearly more local.
"""

from repro.experiments import figures, paper

from .conftest import emit


def test_fig11_nuca_distance(benchmark, suite):
    fig = benchmark(figures.fig11_nuca_distance, suite)
    emit(fig.to_text())
    by = {s.label: s for s in fig.series}

    # S-NUCA interleaving is uniform: ~2.5 hops everywhere.
    for bench, dist in by["snuca"].values.items():
        assert abs(dist - 2.5) < 0.3, bench

    # Both optimized policies reduce distance on average.
    assert by["rnuca"].average < by["snuca"].average
    assert by["tdnuca"].average < by["snuca"].average

    # Where bypass is rare, TD-NUCA beats R-NUCA on distance (paper's
    # Histo/KNN/LU observation).
    for bench in paper.FIG11_TD_BEATS_R:
        assert by["tdnuca"].values[bench] <= by["rnuca"].values[bench] + 0.05, bench
