"""Fig. 12 — NoC data movement (router-bytes) normalized to S-NUCA.

Paper: TD-NUCA moves 0.62x the bytes of S-NUCA on average (0.58-0.70x per
benchmark, including bypassed DRAM->L1 transfers); R-NUCA manages 0.84x.
"""

from repro.experiments import figures

from .conftest import emit


def test_fig12_data_movement(benchmark, suite):
    fig = benchmark(figures.fig12_data_movement, suite)
    emit(fig.to_text())
    rnuca = next(s for s in fig.series if s.label == "rnuca")
    tdnuca = next(s for s in fig.series if s.label == "tdnuca")

    # Every benchmark moves less data under TD-NUCA than under S-NUCA...
    for bench, ratio in tdnuca.values.items():
        assert ratio < 1.0, bench
    # ...and the average cut is deep (paper: 0.62x).
    assert 0.45 <= tdnuca.average <= 0.75

    # R-NUCA helps but much less (paper: 0.84x).
    assert tdnuca.average < rnuca.average < 1.0
