"""Fig. 13 — LLC dynamic energy normalized to S-NUCA.

Paper: TD-NUCA consumes 0.52x on average (Jacobi 0.10x); LU is the one
benchmark where replication pushes TD-NUCA to/above S-NUCA's energy.
R-NUCA matches S-NUCA on average.
"""

from repro.experiments import figures

from .conftest import emit


def test_fig13_llc_energy(benchmark, suite):
    fig = benchmark(figures.fig13_llc_energy, suite)
    emit(fig.to_text())
    rnuca = next(s for s in fig.series if s.label == "rnuca")
    tdnuca = next(s for s in fig.series if s.label == "tdnuca")

    # Deep average cut from bypassing (paper: 0.52x).
    assert tdnuca.average < 0.65
    assert tdnuca.values["jacobi"] < 0.2  # paper: 0.10x

    # LU: replication costs LLC energy — TD-NUCA's worst ratios are the
    # replication-heavy benchmarks, LU near the top (paper: above 1x).
    ranked = sorted(tdnuca.values, key=tdnuca.values.get, reverse=True)
    assert "lu" in ranked[:2]
    assert tdnuca.values["lu"] > 0.9

    # R-NUCA is S-NUCA-like (paper: 1.00x average).
    assert abs(rnuca.average - 1.0) < 0.12
