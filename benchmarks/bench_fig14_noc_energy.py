"""Fig. 14 — NoC dynamic energy normalized to S-NUCA.

Paper: TD-NUCA 0.55-0.80x (average 0.64x); R-NUCA 0.68-0.98x (average
0.88x).  Tracks Fig. 12's data movement, which drives NoC energy.
"""

from repro.experiments import figures

from .conftest import emit


def test_fig14_noc_energy(benchmark, suite):
    fig = benchmark(figures.fig14_noc_energy, suite)
    emit(fig.to_text())
    rnuca = next(s for s in fig.series if s.label == "rnuca")
    tdnuca = next(s for s in fig.series if s.label == "tdnuca")

    assert 0.45 <= tdnuca.average <= 0.75  # paper: 0.64x
    assert tdnuca.average < rnuca.average < 1.0  # paper: 0.64 < 0.88 < 1
    for bench, ratio in tdnuca.values.items():
        assert ratio < 0.95, bench


def test_fig14_tracks_fig12(benchmark, suite):
    """NoC energy follows data movement (the paper notes the same trends)."""
    noc = benchmark(figures.fig14_noc_energy, suite)
    move = figures.fig12_data_movement(suite)
    td_noc = next(s for s in noc.series if s.label == "tdnuca").values
    td_move = next(s for s in move.series if s.label == "tdnuca").values
    for bench in td_noc:
        assert abs(td_noc[bench] - td_move[bench]) < 0.1, bench
