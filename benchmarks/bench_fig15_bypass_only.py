"""Fig. 15 — the TD-NUCA variant that only performs LLC bypassing.

Paper: the bypass-only variant averages 1.06x vs the full design's 1.18x.
It brings no benefit in Histo/KNN/LU (few non-reused blocks), matches the
full design in Jacobi/Kmeans/MD5/Redblack (>97% non-reused), and sits in
between for Gauss.
"""

from repro.experiments import figures, paper

from .conftest import emit


def test_fig15_bypass_only(benchmark, suite):
    fig = benchmark(figures.fig15_bypass_only, suite)
    emit(fig.to_text())
    byp = next(s for s in fig.series if s.label == "bypass_only")
    full = next(s for s in fig.series if s.label == "full_tdnuca")

    # The full design never loses to its own subset on average.
    assert full.average > byp.average

    # No benefit (or a slight loss) where nothing is bypassable.
    for bench in paper.FIG15_NO_BENEFIT:
        assert byp.values[bench] < 1.10, bench
        assert full.values[bench] > byp.values[bench], bench

    # Bypass alone recovers (almost) the full gain where everything is
    # predicted non-reused.
    for bench in paper.FIG15_MATCHES_FULL:
        assert byp.values[bench] > 1.0, bench
        assert full.values[bench] - byp.values[bench] < 0.12, bench

    # Gauss benefits from bypass but clearly more from the full design.
    for bench in paper.FIG15_INTERMEDIATE:
        assert 1.0 < byp.values[bench] < full.values[bench], bench
