"""Scale robustness: the reproduction's conclusions must not be an
artifact of one capacity scale.

Runs the core comparison (S-NUCA vs TD-NUCA) for three contrasting
benchmarks at two scales (1/128 and 1/512) and checks that the paper's
qualitative claims — TD-NUCA wins, bypass cuts LLC accesses, data
movement drops — hold at both.
"""

from repro.config import scaled_config
from repro.experiments.runner import run_experiment
from repro.stats.report import format_table

from .conftest import emit

BENCHES = ("md5", "kmeans", "lu")
SCALES = (128, 512)


def test_conclusions_hold_across_scales(benchmark):
    def sweep():
        out = {}
        for denom in SCALES:
            cfg = scaled_config(1.0 / denom)
            for wl in BENCHES:
                out[(denom, wl)] = {
                    pol: run_experiment(wl, pol, cfg)
                    for pol in ("snuca", "tdnuca")
                }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for (denom, wl), by_policy in sorted(results.items()):
        s, t = by_policy["snuca"], by_policy["tdnuca"]
        speedup = s.makespan / t.makespan
        llc = t.machine.llc_accesses / max(1, s.machine.llc_accesses)
        move = t.machine.router_bytes / max(1, s.machine.router_bytes)
        rows.append(
            [f"1/{denom}", wl, f"{speedup:.3f}x", f"{llc:.3f}", f"{move:.3f}"]
        )
        # The paper's qualitative conclusions at every scale:
        assert speedup > 0.98, (denom, wl)
        assert llc < 1.0, (denom, wl)
        assert move < 0.9, (denom, wl)
    emit(
        format_table(
            ["scale", "bench", "TD speedup", "LLC accesses", "data movement"],
            rows,
            "Scale robustness: TD-NUCA vs S-NUCA at 1/128 and 1/512",
        )
    )
