"""Section V-E — TD-NUCA design trade-offs and overheads.

Paper claims reproduced here:

* RRT latency: 1-cycle RRTs cost 0.1% vs ideal; 2/3/4 cycles cost
  0.5/1.1/1.9% on average.
* RRT occupancy: 14.71 entries average; Gauss/Histo/Kmeans/KNN never
  exceed 23; the maximum anywhere is 59 (64 entries always suffice).
* Cache flushing: <0.1% of execution time everywhere except Histo (0.49%).
* Runtime extensions alone (ISA off): 0.01% average overhead.
"""


from repro.config import scaled_config
from repro.experiments import figures
from repro.experiments.runner import run_experiment
from repro.stats.report import format_table

from .conftest import emit

#: smaller scale for the latency sweep: 5 extra full runs.
SWEEP_CFG = scaled_config(1 / 256)
SWEEP_BENCHES = ("kmeans", "lu", "knn")


def test_rrt_latency_sensitivity(benchmark):
    """Makespan vs RRT lookup latency, normalized to the 1-cycle design."""

    def sweep():
        out = {}
        for cycles in (0, 1, 2, 3, 4):
            total = 0
            for wl in SWEEP_BENCHES:
                r = run_experiment(wl, "tdnuca", SWEEP_CFG, rrt_lookup_cycles=cycles)
                total += r.makespan
            out[cycles] = total
        return out

    makespans = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = makespans[1]
    rows = [
        [str(c), f"{makespans[c] / base:.4f}", f"{makespans[c] / makespans[0]:.4f}"]
        for c in sorted(makespans)
    ]
    emit(
        format_table(
            ["RRT cycles", "vs 1-cycle", "vs ideal (0)"],
            rows,
            "Section V-E: RRT latency sensitivity",
        )
    )
    # Monotone: more latency, more time; overheads stay small (paper <2%).
    assert makespans[0] <= makespans[1] <= makespans[4]
    assert makespans[4] / makespans[0] < 1.05


def test_rrt_occupancy(benchmark, suite):
    report = benchmark(figures.rrt_occupancy_report, suite)
    rows = [
        [b, f"{v['mean']:.2f}", f"{v['max']:.0f}"] for b, v in report.items()
    ]
    emit(format_table(["bench", "mean", "max"], rows, "Section V-E: RRT occupancy"))
    # 64 entries always suffice (paper's central occupancy claim)...
    for bench, v in report.items():
        assert v["max"] <= 64, bench
    # ...and the low-pressure benchmarks stay far from the limit.
    for bench in ("gauss", "kmeans", "knn"):
        assert report[bench]["max"] <= 30, bench


def test_flush_overhead(benchmark, suite):
    report = benchmark(figures.flush_overhead_report, suite)
    rows = [[b, f"{v * 100:.3f}%"] for b, v in report.items()]
    emit(
        format_table(
            ["bench", "flush time"], rows, "Section V-E: time spent flushing"
        )
    )
    # Flushing stays a sub-percent effect everywhere (paper: <0.1%
    # everywhere but Histo's 0.49%; our smaller tasks inflate the ratio).
    for bench, v in report.items():
        assert v < 0.02, bench


def test_runtime_extension_overhead(benchmark, suite):
    report = benchmark(figures.runtime_overhead_report, suite)
    rows = [[b, f"{v * 100:+.3f}%"] for b, v in report.items()]
    emit(
        format_table(
            ["bench", "overhead"],
            rows,
            "Section V-E: runtime extensions overhead (ISA disabled vs S-NUCA)",
        )
    )
    # The software-only extension cost is small; at this scale the signal
    # (paper: 0.01%) is below the scheduling noise, so bound it loosely.
    for bench, v in report.items():
        assert abs(v) < 0.05, bench


def test_runtime_software_cycles_fraction(benchmark, suite):
    """A noise-free view of the same claim: directory + decision cycles
    as a fraction of total busy cycles."""
    benchmark(lambda: None)  # the work below is assembly over cached runs
    rows = []
    for (wl, pol), r in suite.items():
        if pol != "tdnuca" or r.runtime is None:
            continue
        frac = r.runtime.software_cycles / max(1, sum(r.execution.busy_cycles))
        rows.append([wl, f"{frac * 100:.3f}%"])
        # Fixed per-dependency bookkeeping over 1/64-scale tasks inflates
        # the paper's 0.01% by roughly the scale factor; Gauss (the
        # smallest tasks, 9 deps each) sits highest at ~2.7%.
        assert frac < 0.04, wl
    emit(
        format_table(
            ["bench", "software cycles"],
            rows,
            "Section V-E: RTCacheDirectory + decision cycles / busy cycles",
        )
    )
