"""Raw simulator throughput: honest timings of single (workload, policy)
runs, for tracking the simulator's own performance."""

from repro.config import scaled_config
from repro.experiments.runner import run_experiment

CFG = scaled_config(1 / 256)


def test_simulate_kmeans_snuca(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("kmeans", "snuca", CFG), rounds=1, iterations=1
    )
    assert result.execution.tasks_executed > 0


def test_simulate_kmeans_tdnuca(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("kmeans", "tdnuca", CFG), rounds=1, iterations=1
    )
    assert result.execution.tasks_executed > 0


def test_simulate_md5_rnuca(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("md5", "rnuca", CFG), rounds=1, iterations=1
    )
    assert result.execution.tasks_executed == 128
