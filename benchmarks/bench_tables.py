"""Tables I and II: configuration and benchmark characteristics."""

from repro.experiments import figures
from repro.stats.report import format_table

from .conftest import emit


def test_table1_configuration(benchmark, bench_cfg):
    rows = benchmark(figures.table1_rows, bench_cfg)
    emit(format_table(["parameter", "value"], rows, "Table I: simulator configuration"))
    labels = {r[0] for r in rows}
    assert {"cores", "L1D", "LLC", "NoC", "RRT"} <= labels


def test_table2_benchmarks(benchmark, bench_cfg):
    rows = benchmark.pedantic(
        figures.table2_rows, args=(bench_cfg,), rounds=1, iterations=1
    )
    emit(
        format_table(
            [
                "bench", "problem", "paper MB", "scaled MB",
                "paper tasks", "tasks", "paper task KB", "task KB",
            ],
            rows,
            "Table II: benchmarks, problem and task sizes",
        )
    )
    assert len(rows) == 8
    for row in rows:
        paper_tasks, tasks = int(row[4]), int(row[5])
        assert abs(tasks - paper_tasks) / paper_tasks < 0.07
