"""Shared infrastructure for the figure-reproduction benchmarks.

The full (8 workloads x 5 policies) sweep is expensive, so it runs once
per session (the ``suite`` fixture) and every ``bench_figNN`` target
derives its table/figure from the cached results, printing the measured
series next to the paper's reference numbers and asserting the paper's
qualitative shape.

Environment knobs:

* ``REPRO_BENCH_SCALE``  — capacity scale (default 1/64, the calibrated
  experiment scale; use e.g. 1/256 for a quick smoke run).
"""

from __future__ import annotations

import os

import pytest

from repro.config import scaled_config
from repro.experiments.runner import run_suite

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", 1.0 / 64.0))

ALL_POLICIES = ["snuca", "rnuca", "tdnuca", "tdnuca-bypass-only", "tdnuca-noisa"]


@pytest.fixture(scope="session")
def suite():
    """Results of the full sweep, shared by every figure target."""
    cfg = scaled_config(BENCH_SCALE)
    return run_suite(policies=ALL_POLICIES, cfg=cfg)


@pytest.fixture(scope="session")
def bench_cfg():
    return scaled_config(BENCH_SCALE)


def emit(figure_text: str) -> None:
    """Print a figure table (visible with ``pytest -s`` and in the teed
    bench output)."""
    print("\n" + figure_text + "\n")
