#!/usr/bin/env python
"""The paper's Fig.-2 Cholesky: its TDG, and NUCA behaviour per policy.

Builds the blocked Cholesky factorization the paper uses to introduce
task dataflow (potrf/trsm/syrk/gemm), exports its task dependency graph
as Graphviz DOT (render with ``dot -Tpdf cholesky.dot``), runs it under
the three policies, and prints the per-bank LLC load heatmaps that show
*why* TD-NUCA's NUCA distance drops: local-bank mapping concentrates each
task's traffic in its own tile.

Run:  python examples/cholesky_tdg.py [--dot cholesky.dot]
"""

import argparse

from repro.config import scaled_config
from repro.experiments.runner import build_runtime
from repro.runtime import Executor
from repro.runtime.tdgviz import program_to_dot, tdg_edge_list
from repro.sim.machine import build_machine
from repro.stats.bankload import load_imbalance, mesh_heatmap
from repro.workloads.registry import get_workload


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--dot", default=None, help="write the TDG as DOT here")
    args = ap.parse_args()

    cfg = scaled_config(1 / 256)
    wl = get_workload("cholesky")
    program = wl.build(cfg)
    edges = tdg_edge_list(
        type(program)(program.name, program.phases[program.warmup_phases :])
    )
    kernels = {}
    for t in program.tasks:
        kernels[t.name.split("[")[0]] = kernels.get(t.name.split("[")[0], 0) + 1
    print(
        f"Cholesky: {program.num_tasks} tasks "
        f"({', '.join(f'{v} {k}' for k, v in sorted(kernels.items()))}), "
        f"{len(edges)} TDG edges\n"
    )

    if args.dot:
        with open(args.dot, "w") as fh:
            fh.write(program_to_dot(program, max_tasks=60))
        print(f"wrote {args.dot} (first 60 tasks; render: dot -Tpdf {args.dot})\n")

    base = None
    for policy in ("snuca", "rnuca", "tdnuca"):
        machine = build_machine(cfg, policy)
        extension = build_runtime(machine, policy)
        stats = Executor(machine, extension=extension).run(wl.build(cfg))
        if base is None:
            base = stats.makespan_cycles
        print(
            f"--- {policy}: speedup {base / stats.makespan_cycles:.3f}x, "
            f"NUCA distance {machine.collect_stats().mean_nuca_distance:.2f}, "
            f"bank imbalance {load_imbalance(machine.llc):.2f}"
        )
        print(mesh_heatmap(machine.llc, machine.mesh))
        print()


if __name__ == "__main__":
    main()
