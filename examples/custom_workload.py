#!/usr/bin/env python
"""Writing your own task-dataflow workload and running it under TD-NUCA.

This example builds a small producer/consumer pipeline from scratch using
the public runtime API — the same annotations an OpenMP 4.0 program would
carry (``depend(in/out/inout)``) — and shows how TD-NUCA's runtime
extension classifies each dependency (bypass / local bank / cluster
replicate) purely from the task graph.

The pipeline:

    generate[i]  --(out: chunk_i)-->  transform[i]  --(inout: chunk_i,
                                                       out: digest_i)
    reduce       --(in: every digest)

* chunks are written, transformed in place, and never reused afterwards
  -> their last use is *predicted non-reused* and bypasses the LLC;
* the shared lookup table is read by every transform task
  -> *cluster-replicated*;
* digests are produced with a consumer already in the TDG
  -> *local-bank mapped* during their producer, flushed at task end.

Run:  python examples/custom_workload.py
"""

from repro.config import scaled_config
from repro.deps import DepMode
from repro.experiments.runner import build_runtime
from repro.mem.allocator import VirtualAllocator
from repro.runtime import Dependency, Executor, Program, Task
from repro.sim.machine import build_machine
from repro.stats.report import format_table

N_CHUNKS = 32
CHUNK_BYTES = 16 * 1024
TABLE_BYTES = 4 * 1024


def build_pipeline() -> Program:
    alloc = VirtualAllocator()
    table = alloc.allocate(TABLE_BYTES, "lookup_table")
    chunks = [alloc.allocate(CHUNK_BYTES, f"chunk[{i}]") for i in range(N_CHUNKS)]
    digests = [alloc.allocate(64, f"digest[{i}]") for i in range(N_CHUNKS)]

    prog = Program("pipeline")
    # Phase 0 (taskwait-separated): populate the lookup table.
    setup = prog.new_phase()
    setup.append(Task("init_table", (Dependency(table, DepMode.OUT),)))
    prog.warmup_phases = 0  # measure everything, including setup

    phase = prog.new_phase()
    for i in range(N_CHUNKS):
        phase.append(
            Task(f"generate[{i}]", (Dependency(chunks[i], DepMode.OUT),))
        )
        phase.append(
            Task(
                f"transform[{i}]",
                (
                    Dependency(table, DepMode.IN),
                    Dependency(chunks[i], DepMode.INOUT),
                    Dependency(digests[i], DepMode.OUT),
                ),
            )
        )
    reduce_deps = tuple(Dependency(d, DepMode.IN) for d in digests)
    phase.append(Task("reduce", reduce_deps))
    return prog


def main() -> None:
    cfg = scaled_config(1 / 64)
    rows = []
    for policy in ("snuca", "tdnuca"):
        machine = build_machine(cfg, policy)
        extension = build_runtime(machine, policy)
        executor = Executor(machine, extension=extension)
        stats = executor.run(build_pipeline())
        m = machine.collect_stats()
        rows.append(
            [
                policy,
                f"{stats.makespan_cycles:,}",
                f"{m.llc_accesses:,}",
                f"{m.llc_hit_ratio:.1%}",
                f"{m.mean_nuca_distance:.2f}",
            ]
        )
        if policy == "tdnuca":
            td_stats = extension.stats
    print(
        format_table(
            ["policy", "makespan", "LLC accesses", "hit ratio", "NUCA distance"],
            rows,
            "custom pipeline under S-NUCA vs TD-NUCA",
        )
    )
    print(
        f"\nTD-NUCA classified the pipeline's dependencies as:\n"
        f"  bypass            : {td_stats.bypass_decisions:4d} "
        f"(single-use chunks at their last predicted use)\n"
        f"  local bank        : {td_stats.local_decisions:4d} "
        f"(chunks/digests private to their producer)\n"
        f"  cluster replicate : {td_stats.replicate_decisions:4d} "
        f"(the shared lookup table)\n"
        f"  lazy invalidations: {td_stats.lazy_invalidations:4d} "
        f"(replicated table... never written again, so 0 — transforms\n"
        f"   write chunks, which were never replicated)"
    )


if __name__ == "__main__":
    main()
