#!/usr/bin/env python
"""Multiprogramming with PID-tagged RRTs (paper Section III-D).

The paper's hardware extension tags RRT entries with the OS process ID so
several processes share the RRTs without save/restore at context
switches.  This example co-schedules two independent task-dataflow
programs — a streaming hasher and a shared-table lookup kernel — on one
machine, each with its own TD-NUCA runtime, then terminates one process
and shows its entries being dropped.

Run:  python examples/multiprogramming.py
"""

from repro.config import scaled_config
from repro.deps import DepMode
from repro.mem.allocator import VirtualAllocator
from repro.runtime import Dependency, Executor, FifoScheduler, Program, Task
from repro.runtime.multiprog import MultiProcessRuntime, merge_programs
from repro.sim.machine import build_machine
from repro.stats.report import format_table


def streaming_program(base: int, n: int = 24) -> Program:
    """Process 1: hash independent buffers (everything bypasses)."""
    alloc = VirtualAllocator(base=base)
    prog = Program("hasher")
    phase = prog.new_phase()
    for i in range(n):
        buf = alloc.allocate(8 * 1024, f"buf[{i}]")
        digest = alloc.allocate(64, f"digest[{i}]")
        phase.append(
            Task(
                f"hash[{i}]",
                (Dependency(buf, DepMode.IN), Dependency(digest, DepMode.OUT)),
            )
        )
    return prog


def lookup_program(base: int, n: int = 24) -> Program:
    """Process 2: every task reads a shared table (cluster-replicated)."""
    alloc = VirtualAllocator(base=base)
    table = alloc.allocate(8 * 1024, "table")
    prog = Program("lookup")
    phase = prog.new_phase()
    for i in range(n):
        out = alloc.allocate(1024, f"out[{i}]")
        phase.append(
            Task(
                f"lookup[{i}]",
                (Dependency(table, DepMode.IN), Dependency(out, DepMode.OUT)),
            )
        )
    return prog


def main() -> None:
    cfg = scaled_config(1 / 64)
    machine = build_machine(cfg, "tdnuca")
    ext = MultiProcessRuntime(machine.mesh, machine.isa, pids=[1, 2])
    merged = merge_programs(
        {1: streaming_program(0x0010_0000), 2: lookup_program(0x8000_0000)}
    )
    # FIFO dispatch follows the merged (round-robin) creation order, so
    # the two processes genuinely interleave on the cores.
    stats = Executor(machine, extension=ext, scheduler=FifoScheduler()).run(merged)

    rows = []
    for pid, name in ((1, "hasher"), (2, "lookup")):
        st = ext.runtimes[pid].stats
        rows.append(
            [
                f"{pid} ({name})",
                st.decisions,
                st.bypass_decisions,
                st.replicate_decisions,
                st.local_decisions,
            ]
        )
    print(
        format_table(
            ["process", "decisions", "bypass", "replicate", "local"],
            rows,
            "per-process TD-NUCA decisions over shared, PID-tagged RRTs",
        )
    )
    print(
        f"\n{stats.tasks_executed} tasks, {ext.context_switches} RRT context "
        f"switches — zero save/restore cost (entries are tagged)"
    )

    # A graceful exit leaves nothing behind — TD-NUCA retires mappings at
    # each dependency's last predicted use.  A *killed* process does leave
    # entries; the OS reclaims them with a tagged drop, no RRT scan needed:
    machine.isa.rrts[0].set_active_pid(2)
    machine.isa.rrts[0].register(0x8000_0000, 0x8000_2000, 0b11)
    machine.isa.rrts[4].set_active_pid(2)
    machine.isa.rrts[4].register(0x8000_0000, 0x8000_2000, 0b11)
    freed = ext.terminate(2)
    print(f"process 2 killed: OS dropped {freed} stale PID-tagged entries")

    # The declarative route to the same machinery: a multiprog scenario
    # co-schedules real benchmarks with automatic per-process address
    # rebasing (see scenarios/multiprog-duo.yaml, runnable as
    # `repro run multiprog-duo`).
    from repro import Scenario
    from repro.scenario import CoRunner, MachineSpec, run_multiprog

    duo = Scenario(
        name="duo",
        corunners=(CoRunner("md5"), CoRunner("histo")),
        policy="tdnuca",
        machine=MachineSpec(scale=2048),
    )
    result = run_multiprog(duo)
    print(
        f"\nscenario {duo.name!r}: {result.workload} co-scheduled, "
        f"{result.execution.tasks_executed} tasks, "
        f"{result.extra['context_switches']} RRT context switches"
    )


if __name__ == "__main__":
    main()
