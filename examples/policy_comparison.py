#!/usr/bin/env python
"""Reproduce the paper's headline numbers over the full benchmark suite.

Runs all eight Table-II benchmarks under S-NUCA, R-NUCA and TD-NUCA and
prints Figures 8-14 with the paper's averages alongside.  This is the
programmatic equivalent of ``pytest benchmarks/ --benchmark-only`` for
interactive use.

Run:  python examples/policy_comparison.py [--scale 256] [--quick]

``--quick`` restricts the sweep to three benchmarks; ``--scale N`` runs at
capacity scale 1/N (default 64, the calibrated scale).
"""

import argparse
import time

from repro import Scenario, Session
from repro.experiments import figures
from repro.scenario.model import MachineSpec
from repro.workloads.registry import workload_names


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=int, default=64, help="capacity scale 1/N")
    ap.add_argument("--quick", action="store_true", help="3 benchmarks only")
    args = ap.parse_args()

    workloads = ["kmeans", "lu", "md5"] if args.quick else workload_names()
    # The declarative form of this sweep; `repro run` on the same mapping
    # saved as YAML (or on the curated 'paper-table1' scenario) produces
    # the identical fingerprints.
    scenario = Scenario(
        name="policy-comparison",
        workloads=tuple(workloads),
        policies=("snuca", "rnuca", "tdnuca"),
        machine=MachineSpec(scale=args.scale),
    )
    print(f"Running the suite at scale 1/{args.scale} "
          f"({'quick subset' if args.quick else 'all 8 benchmarks'})...")
    t0 = time.time()
    session = Session.from_scenario(scenario)
    results = session.suite(
        workloads=list(scenario.workloads),
        policies=list(scenario.policies),
    )
    print(f"...done in {time.time() - t0:.0f}s\n")

    for build in (
        figures.fig8_speedup,
        figures.fig9_llc_accesses,
        figures.fig10_hit_ratio,
        figures.fig11_nuca_distance,
        figures.fig12_data_movement,
        figures.fig13_llc_energy,
        figures.fig14_noc_energy,
        figures.fig3_classification,
    ):
        print(build(results).to_text())
        print()


if __name__ == "__main__":
    main()
