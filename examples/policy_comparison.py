#!/usr/bin/env python
"""Reproduce the paper's headline numbers over the full benchmark suite.

Runs all eight Table-II benchmarks under S-NUCA, R-NUCA and TD-NUCA and
prints Figures 8-14 with the paper's averages alongside.  This is the
programmatic equivalent of ``pytest benchmarks/ --benchmark-only`` for
interactive use.

Run:  python examples/policy_comparison.py [--scale 256] [--quick]

``--quick`` restricts the sweep to three benchmarks; ``--scale N`` runs at
capacity scale 1/N (default 64, the calibrated scale).
"""

import argparse
import time

from repro.config import scaled_config
from repro.experiments import figures
from repro.experiments.runner import run_suite


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=int, default=64, help="capacity scale 1/N")
    ap.add_argument("--quick", action="store_true", help="3 benchmarks only")
    args = ap.parse_args()

    cfg = scaled_config(1.0 / args.scale)
    workloads = ["kmeans", "lu", "md5"] if args.quick else None
    print(f"Running the suite at scale 1/{args.scale} "
          f"({'quick subset' if args.quick else 'all 8 benchmarks'})...")
    t0 = time.time()
    results = run_suite(workloads=workloads, cfg=cfg)
    print(f"...done in {time.time() - t0:.0f}s\n")

    for build in (
        figures.fig8_speedup,
        figures.fig9_llc_accesses,
        figures.fig10_hit_ratio,
        figures.fig11_nuca_distance,
        figures.fig12_data_movement,
        figures.fig13_llc_energy,
        figures.fig14_noc_energy,
        figures.fig3_classification,
    ):
        print(build(results).to_text())
        print()


if __name__ == "__main__":
    main()
