#!/usr/bin/env python
"""Quickstart: run one benchmark under all three NUCA policies.

Describes the experiment as a :class:`repro.Scenario` — the same
declarative document the CLI (``repro run``), the service and the curated
``scenarios/`` library use — then runs the Kmeans task-dataflow benchmark
under S-NUCA (the baseline), the augmented R-NUCA comparator, and TD-NUCA
(the paper's contribution), and prints the headline metrics of the
paper's evaluation side by side.

Run:  python examples/quickstart.py
"""

from repro import Scenario, run_scenario
from repro.stats.report import format_table

WORKLOAD = "kmeans"
POLICIES = ("snuca", "rnuca", "tdnuca")


def main() -> None:
    # One scenario per policy; everything else (machine geometry, scale,
    # seed) is the shared default — Table I at 1/64 capacity.  Writing
    # the same mapping to a YAML file and running `repro run file.yaml`
    # produces the byte-identical result.
    scenarios = {
        policy: Scenario(
            name=f"quickstart-{policy}", workload=WORKLOAD, policy=policy
        )
        for policy in POLICIES
    }
    cfg = scenarios["tdnuca"].to_config()
    print(
        f"Simulating {WORKLOAD!r} on a {cfg.num_cores}-core "
        f"{cfg.mesh_width}x{cfg.mesh_height} mesh, "
        f"LLC {cfg.llc_total_bytes // 1024} KB "
        f"({cfg.llc_bank_bytes // 1024} KB/bank)...\n"
    )

    results = {}
    for policy, scenario in scenarios.items():
        print(f"  running {policy} ...")
        results[policy] = run_scenario(scenario)

    base = results["snuca"].makespan
    rows = []
    for policy in POLICIES:
        r = results[policy]
        m = r.machine
        rows.append(
            [
                policy,
                f"{base / r.makespan:.3f}x",
                f"{m.llc_accesses:,}",
                f"{m.llc_hit_ratio:.1%}",
                f"{m.mean_nuca_distance:.2f}",
                f"{m.router_bytes / 1e6:.1f} MB",
                f"{m.energy.llc / 1e6:.2f} uJ",
            ]
        )
    print()
    print(
        format_table(
            [
                "policy", "speedup", "LLC accesses", "LLC hit ratio",
                "NUCA distance", "NoC traffic", "LLC energy",
            ],
            rows,
            f"{WORKLOAD}: S-NUCA vs R-NUCA vs TD-NUCA",
        )
    )

    td = results["tdnuca"]
    print(
        f"\nTD-NUCA placement decisions: {td.runtime.bypass_decisions} bypass, "
        f"{td.runtime.local_decisions} local-bank, "
        f"{td.runtime.replicate_decisions} cluster-replicate"
    )
    print(
        f"RRT occupancy: mean {td.runtime.mean_rrt_occupancy:.1f}, "
        f"max {td.runtime.occupancy_max} of {cfg.rrt_entries} entries"
    )


if __name__ == "__main__":
    main()
