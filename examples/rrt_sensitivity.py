#!/usr/bin/env python
"""Ablation: RRT lookup latency and RRT capacity (paper Section V-E).

Sweeps the RRT lookup latency from 0 (ideal) to 4 cycles and the RRT
capacity from 8 to 64 entries, showing that (a) the 1-cycle design costs
almost nothing over ideal, and (b) 64 entries are comfortably enough —
but *small* RRTs degrade replication-heavy benchmarks toward S-NUCA
because dropped registrations fall back to address interleaving.

Run:  python examples/rrt_sensitivity.py
"""

from dataclasses import replace

from repro.config import scaled_config
from repro.experiments.runner import run_experiment
from repro.stats.report import format_table

WORKLOAD = "lu"  # the most RRT-hungry benchmark (replicated panels)
SCALE = 1 / 256  # quick ablation scale


def main() -> None:
    cfg = scaled_config(SCALE)
    base = run_experiment(WORKLOAD, "snuca", cfg).makespan

    rows = []
    for cycles in (0, 1, 2, 3, 4):
        r = run_experiment(WORKLOAD, "tdnuca", cfg, rrt_lookup_cycles=cycles)
        rows.append([f"{cycles}", f"{base / r.makespan:.3f}x"])
    print(
        format_table(
            ["RRT lookup cycles", "TD-NUCA speedup vs S-NUCA"],
            rows,
            f"{WORKLOAD}: RRT latency sensitivity (Section V-E)",
        )
    )

    print()
    rows = []
    for entries in (8, 16, 32, 64):
        r = run_experiment(
            WORKLOAD, "tdnuca", replace(cfg, rrt_entries=entries)
        )
        rows.append(
            [
                f"{entries}",
                f"{base / r.makespan:.3f}x",
                f"{r.runtime.mean_rrt_occupancy:.1f}",
                f"{r.runtime.occupancy_max}",
            ]
        )
    print(
        format_table(
            ["RRT entries", "speedup", "mean occupancy", "max occupancy"],
            rows,
            f"{WORKLOAD}: RRT capacity ablation",
        )
    )
    print(
        "\nNote: dropped registrations (full RRT) are not errors — those "
        "ranges simply fall back to S-NUCA interleaving (Section III-B2)."
    )


if __name__ == "__main__":
    main()
