#!/usr/bin/env python
"""Wall-clock benchmark of the simulator's per-reference hot path.

Runs a fixed set of (workload, policy) cases *without* cProfile (so the
numbers reflect real interpreter speed, not profiler overhead), takes the
best of ``--repeats`` runs per case, and writes a schema-versioned
``BENCH_hotpath.json`` next to the repo root (or ``--out``).  The output
is written atomically, so a crash mid-benchmark never corrupts a
previously recorded baseline.

The JSON keeps both machine-dependent timings (seconds, us/reference)
and machine-independent volume (references, tasks) so two checkouts can
be compared meaningfully: identical reference counts mean the runs did
the same simulated work.

Usage:
    PYTHONPATH=src python scripts/bench_hotpath.py
    PYTHONPATH=src python scripts/bench_hotpath.py --smoke   # CI: 1 case, 1 repeat
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.api import Session  # noqa: E402
from repro.config import scaled_config  # noqa: E402
from repro.ioutils import atomic_write  # noqa: E402

SCHEMA_VERSION = 1

#: canonical hot-path cases: the paper's most TD-NUCA-sensitive workload
#: under the optimised policy, plus the static baseline for contrast.
DEFAULT_CASES = (
    ("kmeans", "tdnuca"),
    ("kmeans", "snuca"),
    ("jacobi", "tdnuca"),
)
SMOKE_CASES = (("kmeans", "tdnuca"),)


def bench_case(
    workload: str, policy: str, denom: int, repeats: int
) -> dict:
    session = Session(scaled_config(1.0 / denom))
    best = None
    references = tasks = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = session.run(workload, policy)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
        references = result.machine.l1.accesses
        tasks = result.execution.tasks_executed
    return {
        "workload": workload,
        "policy": policy,
        "references": references,
        "tasks": tasks,
        "seconds_best": round(best, 6),
        "us_per_reference": round(best / max(1, references) * 1e6, 4),
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--scale", type=int, default=256, metavar="DENOM",
        help="run at 1/DENOM of the paper's full-size config (default 256)",
    )
    ap.add_argument(
        "--repeats", type=int, default=3,
        help="runs per case; best-of is recorded (default 3)",
    )
    ap.add_argument(
        "--out", type=Path, default=ROOT / "BENCH_hotpath.json",
        help="output JSON path (default BENCH_hotpath.json at the repo root)",
    )
    ap.add_argument(
        "--smoke", action="store_true",
        help="CI mode: one case, one repeat, still writes the JSON",
    )
    args = ap.parse_args(argv)

    cases = SMOKE_CASES if args.smoke else DEFAULT_CASES
    repeats = 1 if args.smoke else args.repeats
    results = []
    for workload, policy in cases:
        row = bench_case(workload, policy, args.scale, repeats)
        results.append(row)
        print(
            f"{workload}/{policy} @1/{args.scale}: "
            f"{row['references']:,} references, "
            f"{row['seconds_best']:.3f}s best of {repeats} -> "
            f"{row['us_per_reference']:.2f} us/reference"
        )

    payload = {
        "schema_version": SCHEMA_VERSION,
        "scale_denominator": args.scale,
        "repeats": repeats,
        "smoke": args.smoke,
        "python": platform.python_version(),
        "results": results,
    }
    with atomic_write(args.out) as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
