#!/usr/bin/env python
"""Wall-clock benchmark of the simulator's per-reference hot path.

Runs every golden (workload, policy[, faults]) cell under each simulation
kernel *without* cProfile (so the numbers reflect real interpreter speed,
not profiler overhead), takes the best of ``--repeats`` runs per cell,
and writes a schema-versioned ``BENCH_hotpath.json`` (atomically — a
crash mid-benchmark never corrupts a previously recorded baseline).

Schema 2 records two timings per (cell, kernel):

``us_per_reference``
    whole-run wall time per reference — what a user experiences; includes
    runtime-layer work (scheduler, trace build, census, extensions).
``hot_us_per_reference``
    time inside ``Machine._run_blocks`` only — the per-reference hot path
    this benchmark is named for, and the number the kernels compete on.

Each invocation also appends one line per (cell, kernel) to
``BENCH_history.jsonl`` and gates against the trendline: the run fails
if ``hot_us_per_reference`` worsens more than ``--gate-pct`` (default
15%) against the median of the last 3 committed entries for the same
cell at the same scale, with an absolute noise floor.  The gate reads
the hot-path number, not the whole-run wall time: the runtime layer's
share of a run swings with allocator/GC state and machine load far
more than the kernel loop does, and the kernels are what this gate
polices.  ``--no-gate`` records without judging (for machines with no
comparable history).

Usage:
    PYTHONPATH=src python scripts/bench_hotpath.py
    PYTHONPATH=src python scripts/bench_hotpath.py --smoke   # CI: 2 cells only
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import replace
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.api import Session  # noqa: E402
from repro.config import scaled_config  # noqa: E402
from repro.experiments.golden import GOLDEN_CASES  # noqa: E402
from repro.ioutils import atomic_write  # noqa: E402
from repro.sim.kernels import KERNEL_ENV  # noqa: E402

SCHEMA_VERSION = 2

#: kernels every cell is benchmarked under (``auto`` and ``verify`` are
#: selection/debug modes, not distinct engines).
BENCH_KERNELS = ("reference", "vector")

#: cells the CI smoke run times: the two cells the ROADMAP's perf
#: target is stated against.
SMOKE_CASE_IDS = ("kmeans-tdnuca", "jacobi-tdnuca")

#: entries of history considered per cell; the gate compares against
#: their median so one outlier run cannot set (or wreck) the baseline.
GATE_WINDOW = 3

#: regressions smaller than this many us/reference never fail the gate.
#: Sized to the observed run-to-run wall-clock jitter on a shared box
#: (±3 us on ~10 us cells): a cell fails only when it is BOTH >15%
#: worse than its trendline AND past this absolute noise floor, so a
#: real regression (which clears both easily) still trips while load
#: spikes do not.
GATE_ABS_FLOOR_US = 3.0


class _HotTimer:
    """Accumulates wall time spent inside ``Machine._run_blocks``."""

    def __init__(self) -> None:
        self.seconds = 0.0
        self.kernel_stats = None

    def install(self):
        from repro.sim.machine import Machine

        original = Machine._run_blocks
        timer = self

        def timed(machine, core, pblocks, writes, compute_per_access=None):
            t0 = time.perf_counter()
            result = original(
                machine, core, pblocks, writes, compute_per_access
            )
            timer.seconds += time.perf_counter() - t0
            timer.kernel_stats = machine.kernel.stats
            return result

        Machine._run_blocks = timed
        return lambda: setattr(Machine, "_run_blocks", original)


def bench_cell(case, kernel: str, denom: int, repeats: int) -> dict:
    cfg = scaled_config(1.0 / denom)
    if case.fault_spec:
        cfg = replace(cfg, fault_spec=case.fault_spec)
    session = Session(cfg, seed=case.seed, kernel=kernel)
    best = hot_best = None
    references = tasks = 0
    dispatch = None
    for _ in range(repeats):
        timer = _HotTimer()
        uninstall = timer.install()
        try:
            start = time.perf_counter()
            result = session.run(case.workload, case.policy)
            elapsed = time.perf_counter() - start
        finally:
            uninstall()
        best = elapsed if best is None else min(best, elapsed)
        hot_best = (
            timer.seconds if hot_best is None else min(hot_best, timer.seconds)
        )
        references = result.machine.l1.accesses
        tasks = result.execution.tasks_executed
        ks = timer.kernel_stats
        if ks is not None:
            dispatch = {
                "tasks_total": ks.tasks_total,
                "tasks_vector": ks.tasks_vector,
                "tasks_reference": ks.tasks_reference,
                "tasks_mixed": ks.tasks_mixed,
                "fallback_reasons": dict(ks.fallback_reasons),
            }
    return {
        "case": case.case_id,
        "workload": case.workload,
        "policy": case.policy,
        "faults": case.fault_spec,
        "kernel": kernel,
        "references": references,
        "tasks": tasks,
        "seconds_best": round(best, 6),
        "us_per_reference": round(best / max(1, references) * 1e6, 4),
        "hot_seconds_best": round(hot_best, 6),
        "hot_us_per_reference": round(
            hot_best / max(1, references) * 1e6, 4
        ),
        "dispatch": dispatch,
    }


def _cell_key(row: dict, scale: int) -> tuple:
    return (row["case"], row["kernel"], scale)


def load_history(path: Path) -> list[dict]:
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # a torn append must not break future benches
    return entries


def check_gate(
    results: list[dict], history: list[dict], scale: int, gate_pct: float
) -> list[str]:
    """Compare each new cell against its trendline; returns failures."""
    failures = []
    for row in results:
        key = _cell_key(row, scale)
        past = [
            e["hot_us_per_reference"]
            for e in history
            if (e.get("case"), e.get("kernel"), e.get("scale")) == key
            and "hot_us_per_reference" in e
        ][-GATE_WINDOW:]
        if not past:
            continue
        baseline = sorted(past)[len(past) // 2]
        new = row["hot_us_per_reference"]
        worsened = new - baseline
        if worsened > baseline * gate_pct and worsened > GATE_ABS_FLOOR_US:
            failures.append(
                f"{row['case']} [{row['kernel']}]: hot path {new:.2f} us/ref "
                f"vs trendline median {baseline:.2f} "
                f"(+{worsened / baseline * 100.0:.0f}%, gate {gate_pct * 100:.0f}%)"
            )
    return failures


def append_history(path: Path, results: list[dict], scale: int) -> None:
    stamp = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
    with open(path, "a", encoding="utf-8") as fh:
        for row in results:
            entry = {
                "ts": stamp,
                "scale": scale,
                "case": row["case"],
                "kernel": row["kernel"],
                "references": row["references"],
                "us_per_reference": row["us_per_reference"],
                "hot_us_per_reference": row["hot_us_per_reference"],
                "python": platform.python_version(),
            }
            fh.write(json.dumps(entry, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--scale", type=int, default=256, metavar="DENOM",
        help="run at 1/DENOM of the paper's full-size config (default 256)",
    )
    ap.add_argument(
        "--repeats", type=int, default=3,
        help="runs per cell; best-of is recorded (default 3)",
    )
    ap.add_argument(
        "--kernels", nargs="+", default=list(BENCH_KERNELS),
        choices=list(BENCH_KERNELS),
        help="kernels to bench (default: all)",
    )
    ap.add_argument(
        "--out", type=Path, default=ROOT / "BENCH_hotpath.json",
        help="output JSON path (default BENCH_hotpath.json at the repo root)",
    )
    ap.add_argument(
        "--history", type=Path, default=ROOT / "BENCH_history.jsonl",
        help="trendline file appended to and gated against",
    )
    ap.add_argument(
        "--smoke", action="store_true",
        help="CI mode: only the two ROADMAP target cells, still gated",
    )
    ap.add_argument(
        "--gate-pct", type=float, default=0.15,
        help="fail if the hot-path us/ref worsens more than this fraction "
        "vs the trendline median (default 0.15)",
    )
    ap.add_argument(
        "--no-gate", action="store_true",
        help="record results and history without failing on regression",
    )
    args = ap.parse_args(argv)

    if os.environ.pop(KERNEL_ENV, None) is not None:
        print(
            f"warning: ignoring {KERNEL_ENV} — the bench pins each kernel "
            "explicitly", file=sys.stderr,
        )

    if args.smoke:
        cases = [c for c in GOLDEN_CASES if c.case_id in SMOKE_CASE_IDS]
    else:
        cases = list(GOLDEN_CASES)
    repeats = args.repeats

    results = []
    for case in cases:
        for kernel in args.kernels:
            row = bench_cell(case, kernel, args.scale, repeats)
            results.append(row)
            print(
                f"{row['case']:28s} [{kernel:9s}] @1/{args.scale}: "
                f"{row['references']:>9,} refs  "
                f"wall {row['us_per_reference']:6.2f} us/ref  "
                f"hot {row['hot_us_per_reference']:6.2f} us/ref"
            )

    history = load_history(args.history)
    failures = check_gate(results, history, args.scale, args.gate_pct)
    append_history(args.history, results, args.scale)

    payload = {
        "schema_version": SCHEMA_VERSION,
        "scale_denominator": args.scale,
        "repeats": repeats,
        "smoke": args.smoke,
        "python": platform.python_version(),
        "kernels": list(args.kernels),
        "results": results,
    }
    with atomic_write(args.out) as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}; appended {len(results)} entries to {args.history}")

    if failures:
        print("\nperformance regression gate:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        if args.no_gate:
            print("  (--no-gate: reported, not failing)", file=sys.stderr)
        else:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
