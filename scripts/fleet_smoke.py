#!/usr/bin/env python
"""CI chaos smoke for fleet mode: N servers over one shared directory.

Drives real ``repro serve --fleet-dir`` processes over HTTP and asserts
the multi-host resilience contract end-to-end:

1. Three servers join one fleet dir; ``repro fleet status`` sees all
   three host leases from the filesystem alone.
2. ``kill -9`` of the host that owns an in-flight job: a survivor
   detects the dead lease, reclaims the claim with a fenced epoch bump,
   adopts the job as a ghost and resumes it from the shared spool
   snapshot — final statistics byte-identical to an uninterrupted
   ``repro run --json`` reference.
3. A duplicate submit to a *different* host is answered from the shared
   result store — zero new simulations, fleet-tier hit counted.
4. Lease-skew fencing: ``fleet.lease.skew`` stalls a host's heartbeats
   so its peers declare it dead and re-run its job, while its own worker
   keeps computing.  The stale owner's publish is fenced — it never
   lands in the shared store — and exactly one valid entry exists.
5. SIGTERM drains every host cleanly (exit 75): host leases and claim
   files are gone, and the ``drained:`` line carries the fleet gauges.

Usage: ``PYTHONPATH=src python scripts/fleet_smoke.py``
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.service.client import ServiceClient  # noqa: E402

EXIT_DRAINED = 75
START_TIMEOUT = 30.0
KILL_AFTER = 2.0  # seconds into the SLOW hold: victim is mid-attempt
LU_SPEC = {"workload": "lu", "policy": "tdnuca", "scale": 128}
MD5_SPEC = {"workload": "md5", "policy": "tdnuca", "scale": 2048}


def _env(**overrides: str) -> dict[str, str]:
    env = {**os.environ, **overrides}
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _reference(spec: dict) -> dict:
    out = subprocess.run(
        [sys.executable, "-m", "repro", "run", spec["workload"],
         spec["policy"], "--scale", str(spec["scale"]), "--json"],
        env=_env(), cwd=ROOT, capture_output=True, text=True, check=True,
    ).stdout
    return json.loads(out)


def _start_host(
    fleet_dir: Path,
    cache_dir: Path,
    host_id: str,
    *extra_args: str,
    lease_timeout: float = 2.0,
    **env_overrides: str,
) -> tuple[subprocess.Popen, ServiceClient]:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", "1",
            "--cache-dir", str(cache_dir),
            "--fleet-dir", str(fleet_dir),
            "--host-id", host_id,
            "--host-lease-timeout", str(lease_timeout),
            "--checkpoint-every", "40",
            "--drain-grace", "20",
            *extra_args,
        ],
        env=_env(**env_overrides), cwd=ROOT,
        stdout=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + START_TIMEOUT
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line.startswith("listening on "):
            break
    assert line.startswith("listening on "), (
        f"{host_id} never came up: {line!r}"
    )
    host, _, port = line.split()[-1].rpartition(":")
    client = ServiceClient(host, int(port), retries=8, backoff=0.2)
    return proc, client


def _stop(proc: subprocess.Popen) -> tuple[int, str]:
    proc.send_signal(signal.SIGTERM)
    tail, _ = proc.communicate(timeout=60)
    return proc.returncode, tail or ""


def _poll(what: str, predicate, timeout: float = 45.0, every: float = 0.25):
    """Poll ``predicate`` until it returns a truthy value; assert on
    timeout.  Transient connection errors (a host mid-stall) retry."""
    deadline = time.monotonic() + timeout
    last_exc: Exception | None = None
    while time.monotonic() < deadline:
        try:
            value = predicate()
        except Exception as exc:  # noqa: BLE001 - poll through stalls
            last_exc = exc
            value = None
        if value:
            return value
        time.sleep(every)
    raise AssertionError(f"timed out waiting for {what} (last: {last_exc})")


def _fleet_gauges(client: ServiceClient) -> dict:
    return client.health()["fleet"]


def _phase_reclaim(tmp: Path, lu_ref: dict, md5_ref: dict) -> None:
    """kill -9 the claim owner; a survivor resumes byte-identically."""
    fleet = tmp / "fleet1"
    proc_a, client_a = _start_host(
        fleet, tmp / "cache-a", "host-a", REPRO_SERVICE_SLOW="0.5",
    )
    proc_b, client_b = _start_host(fleet, tmp / "cache-b", "host-b")
    proc_c, client_c = _start_host(fleet, tmp / "cache-c", "host-c")
    survivors = {"host-b": client_b, "host-c": client_c}
    try:
        # The offline inspector sees all three leases before any traffic.
        status = json.loads(subprocess.run(
            [sys.executable, "-m", "repro", "fleet", "status",
             str(fleet), "--json"],
            env=_env(), cwd=ROOT, capture_output=True, text=True, check=True,
        ).stdout)
        seen = {h["host_id"] for h in status["hosts"]}
        assert seen == {"host-a", "host-b", "host-c"}, seen

        client_a.submit_run(**LU_SPEC)
        time.sleep(KILL_AFTER)
        proc_a.kill()  # SIGKILL: no drain, no lease cleanup, no goodbye
        proc_a.wait(timeout=30)
        proc_a.stdout.close()

        # Exactly one survivor reclaims the orphaned claim.
        _poll(
            "a survivor to reclaim the dead host's claim",
            lambda: sum(
                _fleet_gauges(c)["reclaims"] for c in survivors.values()
            ) == 1,
        )
        adopter = next(
            name for name, c in survivors.items()
            if _fleet_gauges(c)["reclaims"] == 1
        )
        ghost = _poll(
            "the adopted ghost job to finish",
            lambda: next(
                (g for g in survivors[adopter].health()["queue"]["ghost_jobs"]
                 if g["state"] == "done"),
                None,
            ),
            timeout=90.0,
        )
        assert ghost["origin"] == "reclaim", ghost
        assert ghost["resumed_from_task"], (
            f"ghost should resume from the shared spool snapshot: {ghost}"
        )
        health = survivors[adopter].health()
        assert health["queue"]["adopted"] == 1, health["queue"]
        assert health["fleet"]["claims_won"] >= 1, health["fleet"]

        # Resubmitting the dead host's job to the OTHER survivor answers
        # from the shared store: zero recompute, byte-identical result.
        other = next(n for n in survivors if n != adopter)
        job = survivors[other].submit_run(**LU_SPEC)
        done = survivors[other].wait(job["id"], timeout=120)
        assert done["simulated"] == 0, done
        assert done["cache_hits"] == 1, done
        result = survivors[other].result(job["id"])["result"]
        assert result == lu_ref, (
            "reclaimed-and-resumed result diverges from a clean run"
        )
        assert survivors[other].health()["cache"]["fleet_hits"] >= 1, (
            survivors[other].health()["cache"]
        )
        assert not list((fleet / "spool").glob("*.snap")), (
            "shared snapshot must be consumed after the ghost resumed"
        )

        # Duplicate submit across hosts: B computes, C dedupes.
        job_b = client_b.submit_run(**MD5_SPEC)
        done_b = client_b.wait(job_b["id"], timeout=120)
        assert done_b["simulated"] == 1, done_b
        assert client_b.result(job_b["id"])["result"] == md5_ref
        job_c = client_c.submit_run(**MD5_SPEC)
        done_c = client_c.wait(job_c["id"], timeout=120)
        assert done_c["simulated"] == 0, (
            f"duplicate submit must be a shared-store hit: {done_c}"
        )
        assert client_c.result(job_c["id"])["result"] == md5_ref

        # The human-readable inspector still renders mid-flight state.
        human = subprocess.run(
            [sys.executable, "-m", "repro", "fleet", "status", str(fleet)],
            env=_env(), cwd=ROOT, capture_output=True, text=True, check=True,
        ).stdout
        assert "hosts (" in human and "shared store:" in human, human
    finally:
        rc_b, tail_b = _stop(proc_b)
        rc_c, tail_c = _stop(proc_c)
    assert rc_b == EXIT_DRAINED and rc_c == EXIT_DRAINED, (rc_b, rc_c)
    for tail in (tail_b, tail_c):
        assert "drained:" in tail and "reclaims=" in tail, tail
    assert "reclaims=1" in tail_b + tail_c, (tail_b, tail_c)
    # Clean drain: the drained hosts removed their leases (the SIGKILLed
    # host's stale lease remains as post-mortem debris — that is what
    # peers detected as dead), no claim files (epoch markers are
    # historical debris and may remain), no queued work left behind.
    leases = {p.stem for p in (fleet / "hosts").glob("*.json")}
    assert leases <= {"host-a"}, (
        f"drained hosts must remove their leases: {leases}"
    )
    assert not list((fleet / "claims").glob("*.json")), (
        "all claims must be settled after the fleet drains"
    )
    assert sum(
        1 for shard in (fleet / "queue").iterdir() if shard.is_dir()
        for _ in shard.glob("*.json")
    ) == 0, "no queued entries may survive the drain"


def _phase_fence(tmp: Path, lu_ref: dict) -> None:
    """A stalled-but-alive owner is fenced out of the shared store."""
    fleet = tmp / "fleet2"
    # host-d: heartbeats stall for 12 s after the 4th tick (the claim is
    # acquired well before), while its worker holds the attempt 5 s and
    # then computes — so peers declare it dead and re-run the job while
    # the stale owner's child is still going.
    proc_d, client_d = _start_host(
        fleet, tmp / "cache-d", "host-d",
        lease_timeout=1.0,
        REPRO_FAILPOINTS="fleet.lease.skew=1@after:4@param:12",
        REPRO_SERVICE_SLOW="5",
    )
    proc_e, client_e = _start_host(
        fleet, tmp / "cache-e", "host-e", lease_timeout=1.0,
    )
    try:
        client_d.submit_run(**LU_SPEC)
        # host-e declares host-d dead after ~2 s of observed heartbeat
        # silence and reclaims; its ghost re-runs the job from scratch
        # (or from host-d's periodic checkpoint — identical either way).
        _poll(
            "host-e to reclaim the stalled host's claim",
            lambda: _fleet_gauges(client_e)["reclaims"] == 1,
        )
        ghost = _poll(
            "host-e's ghost job to finish",
            lambda: next(
                (g for g in client_e.health()["queue"]["ghost_jobs"]
                 if g["state"] == "done"),
                None,
            ),
            timeout=90.0,
        )
        assert ghost["origin"] == "reclaim", ghost

        # The stale owner's publish is fenced: its child finishes, checks
        # the claim, finds itself superseded, and never touches the store.
        _poll(
            "host-d to observe its fenced write",
            lambda: _fleet_gauges(client_d)["fenced_writes"] >= 1,
            timeout=60.0,
        )
        entries = list((fleet / "results").glob("*.rcache"))
        assert len(entries) == 1, (
            f"exactly one shared-store entry must exist: {entries}"
        )
        # ... and the surviving entry is the valid, canonical result.
        job = client_e.submit_run(**LU_SPEC)
        done = client_e.wait(job["id"], timeout=120)
        assert done["simulated"] == 0, done
        assert client_e.result(job["id"])["result"] == lu_ref, (
            "post-fence shared-store entry diverges from a clean run"
        )
    finally:
        rc_d, tail_d = _stop(proc_d)
        rc_e, tail_e = _stop(proc_e)
    assert rc_d == EXIT_DRAINED and rc_e == EXIT_DRAINED, (rc_d, rc_e)
    assert "fenced=" in tail_d and "drained:" in tail_d, tail_d
    assert "reclaims=1" in tail_e, tail_e
    assert not list((fleet / "hosts").glob("*.json"))
    assert not list((fleet / "claims").glob("*.json"))


def main() -> int:
    lu_ref = _reference(LU_SPEC)
    md5_ref = _reference(MD5_SPEC)
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        _phase_reclaim(tmp, lu_ref, md5_ref)
        _phase_fence(tmp, lu_ref)
    print(
        "fleet smoke ok: kill -9'd owner's job reclaimed and resumed "
        "byte-identically from the shared spool, duplicate submit to a "
        "peer answered from the shared store with zero recompute, stalled "
        "owner fenced out of the store (one valid entry), all hosts "
        "drained cleanly (exit 75) leaving no leases or claims"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
