#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md from a full suite run.

Runs all eight benchmarks under all five policies at the calibrated scale
(1/64) and writes paper-vs-measured Markdown for every table, figure and
Section V-E study. Takes ~10 minutes.

Usage: python scripts/generate_experiments_md.py [output-path]
"""

from __future__ import annotations

import sys
import time

from repro.api import Session
from repro.config import scaled_config
from repro.experiments import figures
from repro.experiments.serialize import figure_to_markdown

SCALE = 1 / 64

HEADER = """# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation (Section V), regenerated
by this repository's simulator at capacity scale 1/64 (see DESIGN.md for
the scaling rules). Regenerate with:

```bash
python scripts/generate_experiments_md.py          # this file
pytest benchmarks/ --benchmark-only -s             # the same data + checks
```

**Reading guide.** Absolute numbers are not expected to match a
cycle-accurate gem5 full-system simulation; the claims reproduced are the
*shapes*: who wins, by roughly what factor, which benchmarks sit at which
extreme, and where the crossovers fall. Each section lists the paper's
statement first, then the measured table.
"""


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    cfg = scaled_config(SCALE)
    print(f"running full suite at scale 1/{int(1 / SCALE)} ...", file=sys.stderr)
    t0 = time.time()
    results = Session(cfg).suite(
        policies=["snuca", "rnuca", "tdnuca", "tdnuca-bypass-only", "tdnuca-noisa"],
    )
    elapsed = time.time() - t0
    print(f"suite done in {elapsed:.0f}s", file=sys.stderr)

    parts = [HEADER]

    def fig_avg(fig, label):
        return next(s for s in fig.series if s.label == label).average

    # --- Fig. 3 ---
    fig3 = figures.fig3_classification(results)
    parts.append(
        f"""## Fig. 3 — access/reuse pattern classification

Paper: 96% of unique cache blocks belong to task dependencies and 72% are
predicted non-reused on average; an OS classifier can call only 36%
private + shared-read-only, with <1% shared-read-only in every benchmark.
NotReused is >97% in Jacobi/Kmeans/MD5/Redblack, ~94% in Gauss, and low
in Histo/KNN/LU.

Measured: dependency blocks {fig_avg(fig3, "td_dep_blocks"):.1%}, NotReused
{fig_avg(fig3, "td_not_reused"):.1%}, R-NUCA private+shared-RO
{fig_avg(fig3, "rnuca_private") + fig_avg(fig3, "rnuca_shared_ro"):.1%},
shared-RO {fig_avg(fig3, "rnuca_shared_ro"):.2%}. The high/low NotReused
split lands exactly on the paper's benchmarks.

{figure_to_markdown(fig3)}
"""
    )

    # --- Fig. 8 ---
    fig8 = figures.fig8_speedup(results)
    parts.append(
        f"""## Fig. 8 — speedup over S-NUCA

Paper: TD-NUCA 1.18x average (Gauss 1.26, LU 1.59, Redblack 1.20,
Histo/Jacobi/Kmeans 1.09-1.10, KNN/MD5 1.04); R-NUCA 1.02x average, best
case Gauss 1.11x.

Measured: TD-NUCA {fig_avg(fig8, "tdnuca"):.3f}x average, winning on every
benchmark; R-NUCA {fig_avg(fig8, "rnuca"):.3f}x. Our LU sits near the
suite average rather than leading it — the trace-driven model understates
the contention relief that amplifies LU's replication win in the paper's
loaded NoC (see DESIGN.md, fidelity notes).

{figure_to_markdown(fig8)}
"""
    )

    # --- Fig. 9 ---
    fig9 = figures.fig9_llc_accesses(results)
    parts.append(
        f"""## Fig. 9 — LLC accesses (normalized to S-NUCA)

Paper: TD-NUCA 0.48x average (MD5 0.14x, KNN 0.99x); R-NUCA within 0.02x
of S-NUCA everywhere.

Measured: TD-NUCA {fig_avg(fig9, "tdnuca"):.3f}x, R-NUCA
{fig_avg(fig9, "rnuca"):.3f}x, extremes on the same benchmarks.

{figure_to_markdown(fig9)}
"""
    )

    # --- Fig. 10 ---
    fig10 = figures.fig10_hit_ratio(results)
    parts.append(
        f"""## Fig. 10 — LLC hit ratio

Paper: 41% / 40% / 74% average for S-NUCA / R-NUCA / TD-NUCA; LU and KNN
near-100% under every policy.

Measured: {fig_avg(fig10, "snuca"):.1%} / {fig_avg(fig10, "rnuca"):.1%} /
{fig_avg(fig10, "tdnuca"):.1%}.

{figure_to_markdown(fig10)}
"""
    )

    # --- Fig. 11 ---
    fig11 = figures.fig11_nuca_distance(results)
    parts.append(
        f"""## Fig. 11 — average NUCA distance (hops, bypasses excluded)

Paper: S-NUCA 2.49 (theoretical 2.5), R-NUCA 1.46, TD-NUCA 1.91; TD-NUCA
beats R-NUCA where bypass is rare (Histo, KNN, LU).

Measured: {fig_avg(fig11, "snuca"):.2f} / {fig_avg(fig11, "rnuca"):.2f} /
{fig_avg(fig11, "tdnuca"):.2f}. Our TD-NUCA's non-bypassed remainder is
more local than the paper's (the ordering TD < R is inverted vs. the
paper's averages), but the per-benchmark claim — TD more local than R on
Histo/KNN/LU — holds.

{figure_to_markdown(fig11)}
"""
    )

    # --- Fig. 12 ---
    fig12 = figures.fig12_data_movement(results)
    parts.append(
        f"""## Fig. 12 — NoC data movement (normalized to S-NUCA)

Paper: TD-NUCA 0.62x average (0.58-0.70x), R-NUCA 0.84x.

Measured: TD-NUCA {fig_avg(fig12, "tdnuca"):.3f}x, R-NUCA
{fig_avg(fig12, "rnuca"):.3f}x.

{figure_to_markdown(fig12)}
"""
    )

    # --- Fig. 13 ---
    fig13 = figures.fig13_llc_energy(results)
    td13 = next(s for s in fig13.series if s.label == "tdnuca").values
    parts.append(
        f"""## Fig. 13 — LLC dynamic energy (normalized to S-NUCA)

Paper: TD-NUCA 0.52x average, Jacobi deepest at 0.10x, LU the one
benchmark *above* 1x (replication); R-NUCA 1.00x average.

Measured: TD-NUCA {fig_avg(fig13, "tdnuca"):.3f}x average, Jacobi
{td13["jacobi"]:.3f}x, LU {td13["lu"]:.3f}x (the replication-heavy
benchmarks are TD-NUCA's worst, at ~1x rather than above it); R-NUCA
{fig_avg(fig13, "rnuca"):.3f}x.

{figure_to_markdown(fig13)}
"""
    )

    # --- Fig. 14 ---
    fig14 = figures.fig14_noc_energy(results)
    parts.append(
        f"""## Fig. 14 — NoC dynamic energy (normalized to S-NUCA)

Paper: TD-NUCA 0.55-0.80x (average 0.64x); R-NUCA 0.68-0.98x (average
0.88x); follows the data-movement trends.

Measured: TD-NUCA {fig_avg(fig14, "tdnuca"):.3f}x, R-NUCA
{fig_avg(fig14, "rnuca"):.3f}x.

{figure_to_markdown(fig14)}
"""
    )

    # --- Fig. 15 ---
    fig15 = figures.fig15_bypass_only(results)
    byp = next(s for s in fig15.series if s.label == "bypass_only").values
    parts.append(
        f"""## Fig. 15 — bypass-only variant

Paper: bypass alone averages 1.06x vs the full design's 1.18x; no benefit
in Histo/KNN/LU, matches the full design in Jacobi/Kmeans/MD5/Redblack,
intermediate in Gauss.

Measured: bypass-only {fig_avg(fig15, "bypass_only"):.3f}x vs full
{fig_avg(fig15, "full_tdnuca"):.3f}x; Histo/KNN/LU at
{byp["histo"]:.2f}/{byp["knn"]:.2f}/{byp["lu"]:.2f} (KNN/LU actually lose
slightly — bypassing final uses without placement support costs them);
the streaming four match the full design; Gauss is intermediate.

{figure_to_markdown(fig15)}
"""
    )

    # --- Section V-E ---
    occ = figures.rrt_occupancy_report(results)
    flush = figures.flush_overhead_report(results)
    overhead = figures.runtime_overhead_report(results)
    occ_rows = "\n".join(
        f"| {b} | {v['mean']:.2f} | {v['max']:.0f} |" for b, v in occ.items()
    )
    flush_rows = "\n".join(
        f"| {b} | {v * 100:.3f}% |" for b, v in flush.items()
    )
    ovh_rows = "\n".join(
        f"| {b} | {v * 100:+.3f}% |" for b, v in overhead.items()
    )
    sw_rows = []
    for (wl, pol), r in results.items():
        if pol == "tdnuca" and r.runtime is not None:
            frac = r.runtime.software_cycles / max(1, sum(r.execution.busy_cycles))
            sw_rows.append(f"| {wl} | {frac * 100:.3f}% |")
    mean_occ = sum(v["mean"] for v in occ.values()) / len(occ)
    parts.append(
        f"""## Section V-E — overheads

**RRT occupancy.** Paper: 14.71 entries mean, 59 max (Redblack);
Gauss/Histo/Kmeans/KNN never exceed 23. Measured: {mean_occ:.1f} mean over
the suite, maxima all within the 64-entry budget — lower than the paper's
because our replica-retirement cleanup is aggressive and our scaled
dependencies span fewer pages.

| bench | mean | max |
|---|---|---|
{occ_rows}

**Cache flushing.** Paper: <0.1% of execution time everywhere except
Histo (0.49%). Measured (our smaller tasks inflate the per-task flush
cost relative to trace length):

| bench | flush time |
|---|---|
{flush_rows}

**Runtime extensions (ISA disabled) vs S-NUCA.** Paper: 0.01% average.
Measured via makespans (noisy at this scale — the signal is far below
the ±8% task jitter), and via the noise-free software-cycle fraction:

| bench | makespan delta |
|---|---|
{ovh_rows}

| bench | software cycles / busy cycles |
|---|---|
{chr(10).join(sw_rows)}

**RRT latency.** See `benchmarks/bench_secVE_overheads.py`
(`test_rrt_latency_sensitivity`): makespans grow monotonically from
0-cycle to 4-cycle RRTs with a total spread under 5% (paper: 1.9% at 4
cycles).
"""
    )

    # --- Tables ---
    t2 = figures.table2_rows(cfg)
    t2_rows = "\n".join(
        "| " + " | ".join(str(c) for c in row) + " |" for row in t2
    )
    parts.append(
        f"""## Tables I & II

Table I is the machine configuration (`repro.config`); at scale 1/64 the
LLC is 512 KB total (32 KB/bank), pages are 512 B, and all latencies,
associativities and structure sizes match the paper. Table II, scaled:

| bench | problem | paper MB | scaled MB | paper tasks | tasks | paper task KB | task KB |
|---|---|---|---|---|---|---|---|
{t2_rows}
"""
    )

    parts.append(
        f"_Generated by `scripts/generate_experiments_md.py` in {elapsed:.0f}s "
        f"(suite of {len(results)} runs at scale 1/{int(1 / SCALE)})._\n"
    )

    with open(out_path, "w") as fh:
        fh.write("\n".join(parts))
    print(f"wrote {out_path}", file=sys.stderr)


if __name__ == "__main__":
    main()
