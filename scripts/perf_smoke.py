#!/usr/bin/env python
"""Deterministic perf-regression smoke test for CI.

Wall-clock timing is useless on shared CI runners, but the *number of
Python function calls* the simulator makes per run is fully deterministic
(fixed seeds, fixed traces).  This test runs the canonical hot-path case
(kmeans/tdnuca at 1/256 scale) under cProfile, once per simulation
kernel, and fails if the total call count exceeds that kernel's ceiling,
so an accidental re-introduction of per-reference call overhead (the
exact regression the flattened hot path removed) is caught on every push.

Ceilings are the measured counts plus ~15% headroom for legitimate
feature growth (reference: ~0.99M calls after the hot-path flattening —
it was ~3.6M before; vector: ~0.86M, the fused engine inlines the
coherence/eviction call chains).  If you trip one with a real feature,
re-measure with ``scripts/profile_simulator.py --json --kernel <k>`` and
raise the ceiling in the same commit, stating the new measured count.

When NumPy is unavailable the vector kernel falls back to the reference
path per task; its leg is then checked against the reference ceiling, so
the no-numpy CI job still runs this script unchanged.

Usage: ``PYTHONPATH=src python scripts/perf_smoke.py``
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from profile_simulator import profile_run  # noqa: E402
from repro.sim.kernels import numpy_available  # noqa: E402

WORKLOAD = "kmeans"
POLICY = "tdnuca"
DENOM = 256
#: per-kernel measured call counts (+~15% headroom).  reference: 986,935
#: after the hot-path flattening; vector: 860,047 with the fused engine.
CALL_CEILINGS = {
    "reference": 1_150_000,
    "vector": 1_000_000,
}
#: tracing must stay off the per-reference path: a traced run may make at
#: most 5% more function calls than the identical untraced run (events
#: fire at task/phase boundaries only, so the overhead is O(tasks), which
#: is a rounding error next to O(references)).  Checked under the
#: reference kernel only — tracing forces the vector kernel to fall back,
#: so a vector-vs-traced ratio would measure kernel dispatch, not tracing.
TRACED_RATIO_CEILING = 1.05


def main() -> int:
    reference_calls = reference_refs = None
    for kernel in ("reference", "vector"):
        ceiling = CALL_CEILINGS[kernel]
        if kernel == "vector" and not numpy_available():
            ceiling = CALL_CEILINGS["reference"]
        result, stats = profile_run(WORKLOAD, POLICY, DENOM, kernel=kernel)
        calls = stats.total_calls
        references = result.machine.l1.accesses
        print(
            f"{WORKLOAD}/{POLICY} @1/{DENOM} [{kernel}]: "
            f"{references:,} references, {calls:,} function calls "
            f"(ceiling {ceiling:,})"
        )
        if calls > ceiling:
            print(
                f"FAIL: [{kernel}] call count exceeds the hot-path ceiling — "
                "a per-reference call chain has probably crept back in.  "
                "Profile with scripts/profile_simulator.py --kernel and "
                "either flatten it or raise the ceiling with a re-measured "
                "baseline.",
                file=sys.stderr,
            )
            return 1
        if kernel == "reference":
            reference_calls = calls
            reference_refs = references

    traced_result, traced_stats = profile_run(
        WORKLOAD, POLICY, DENOM, trace=True, kernel="reference"
    )
    if traced_result.machine.l1.accesses != reference_refs:
        print(
            "FAIL: tracing changed the simulated work "
            f"({traced_result.machine.l1.accesses:,} references vs "
            f"{reference_refs:,} untraced) — observability must be read-only.",
            file=sys.stderr,
        )
        return 1
    ratio = traced_stats.total_calls / max(1, reference_calls)
    print(
        f"traced [reference]: {traced_stats.total_calls:,} function calls -> "
        f"{ratio:.4f}x untraced (ceiling {TRACED_RATIO_CEILING}x)"
    )
    if ratio > TRACED_RATIO_CEILING:
        print(
            "FAIL: tracing overhead exceeds the ratio ceiling — an observer "
            "hook has probably landed on the per-reference path.  Keep event "
            "emission at task/phase boundaries only.",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
