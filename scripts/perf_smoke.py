#!/usr/bin/env python
"""Deterministic perf-regression smoke test for CI.

Wall-clock timing is useless on shared CI runners, but the *number of
Python function calls* the simulator makes per run is fully deterministic
(fixed seeds, fixed traces).  This test runs the canonical hot-path case
(kmeans/tdnuca at 1/256 scale) under cProfile and fails if the total call
count exceeds a ceiling, so an accidental re-introduction of per-reference
call overhead (the exact regression the flattened hot path removed) is
caught on every push.

The ceiling is the measured count (~0.99M calls after the hot-path
flattening; it was ~3.6M before) plus ~15% headroom for legitimate
feature growth.  If you trip it with a real feature, re-measure with
``scripts/profile_simulator.py --json`` and raise the ceiling in the same
commit, stating the new measured count.

Usage: ``PYTHONPATH=src python scripts/perf_smoke.py``
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from profile_simulator import profile_run  # noqa: E402

WORKLOAD = "kmeans"
POLICY = "tdnuca"
DENOM = 256
#: measured 985,574 calls after the hot-path flattening (+15% headroom).
CALL_CEILING = 1_150_000


def main() -> int:
    result, stats = profile_run(WORKLOAD, POLICY, DENOM)
    calls = stats.total_calls
    references = result.machine.l1.accesses
    print(
        f"{WORKLOAD}/{POLICY} @1/{DENOM}: {references:,} references, "
        f"{calls:,} function calls (ceiling {CALL_CEILING:,})"
    )
    if calls > CALL_CEILING:
        print(
            "FAIL: call count exceeds the hot-path ceiling — a per-reference "
            "call chain has probably crept back in.  Profile with "
            "scripts/profile_simulator.py and either flatten it or raise "
            "CALL_CEILING with a re-measured baseline.",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
