#!/usr/bin/env python
"""Deterministic perf-regression smoke test for CI.

Wall-clock timing is useless on shared CI runners, but the *number of
Python function calls* the simulator makes per run is fully deterministic
(fixed seeds, fixed traces).  This test runs the canonical hot-path case
(kmeans/tdnuca at 1/256 scale) under cProfile and fails if the total call
count exceeds a ceiling, so an accidental re-introduction of per-reference
call overhead (the exact regression the flattened hot path removed) is
caught on every push.

The ceiling is the measured count (~0.99M calls after the hot-path
flattening; it was ~3.6M before) plus ~15% headroom for legitimate
feature growth.  If you trip it with a real feature, re-measure with
``scripts/profile_simulator.py --json`` and raise the ceiling in the same
commit, stating the new measured count.

Usage: ``PYTHONPATH=src python scripts/perf_smoke.py``
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from profile_simulator import profile_run  # noqa: E402

WORKLOAD = "kmeans"
POLICY = "tdnuca"
DENOM = 256
#: measured 985,574 calls after the hot-path flattening (+15% headroom).
CALL_CEILING = 1_150_000
#: tracing must stay off the per-reference path: a traced run may make at
#: most 5% more function calls than the identical untraced run (events
#: fire at task/phase boundaries only, so the overhead is O(tasks), which
#: is a rounding error next to O(references)).
TRACED_RATIO_CEILING = 1.05


def main() -> int:
    result, stats = profile_run(WORKLOAD, POLICY, DENOM)
    calls = stats.total_calls
    references = result.machine.l1.accesses
    print(
        f"{WORKLOAD}/{POLICY} @1/{DENOM}: {references:,} references, "
        f"{calls:,} function calls (ceiling {CALL_CEILING:,})"
    )
    if calls > CALL_CEILING:
        print(
            "FAIL: call count exceeds the hot-path ceiling — a per-reference "
            "call chain has probably crept back in.  Profile with "
            "scripts/profile_simulator.py and either flatten it or raise "
            "CALL_CEILING with a re-measured baseline.",
            file=sys.stderr,
        )
        return 1

    traced_result, traced_stats = profile_run(WORKLOAD, POLICY, DENOM, trace=True)
    if traced_result.machine.l1.accesses != references:
        print(
            "FAIL: tracing changed the simulated work "
            f"({traced_result.machine.l1.accesses:,} references vs "
            f"{references:,} untraced) — observability must be read-only.",
            file=sys.stderr,
        )
        return 1
    ratio = traced_stats.total_calls / max(1, calls)
    print(
        f"traced: {traced_stats.total_calls:,} function calls -> "
        f"{ratio:.4f}x untraced (ceiling {TRACED_RATIO_CEILING}x)"
    )
    if ratio > TRACED_RATIO_CEILING:
        print(
            "FAIL: tracing overhead exceeds the ratio ceiling — an observer "
            "hook has probably landed on the per-reference path.  Keep event "
            "emission at task/phase boundaries only.",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
