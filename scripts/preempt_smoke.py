#!/usr/bin/env python
"""CI smoke test for graceful preemption and byte-identical resume.

End-to-end through the real CLI:

1. Run an uninterrupted reference sweep and keep its merged JSON.
2. Start the same sweep fresh, SIGTERM it mid-flight (the
   ``REPRO_HARNESS_SLOW`` hook holds workers long enough for the signal
   to land), and require exit code 75 (``EX_TEMPFAIL``) with a
   ``sweep_status: "interrupted"`` manifest and no surviving worker
   processes.
3. Resume the sweep and assert the merged JSON equals the uninterrupted
   reference — byte-identical statistics, with only the
   ``resumed_from_task`` markers as the permitted difference.

Usage: ``PYTHONPATH=src python scripts/preempt_smoke.py``
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
EXPECTED_RUNS = {"md5/snuca", "md5/tdnuca", "knn/snuca", "knn/tdnuca"}
EXIT_PREEMPTED = 75
SIGTERM_AFTER = 3.0  # seconds: past worker spawn, inside the SLOW hold
DRAIN_TIMEOUT = 60.0


def _env(**overrides: str) -> dict[str, str]:
    env = {**os.environ, **overrides}
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _sweep_args(out: Path, run_dir: Path) -> list[str]:
    return [
        sys.executable, "-m", "repro",
        "sweep", "--scale", "2048",
        "--workloads", "md5", "knn", "--policies", "snuca", "tdnuca",
        "--jobs", "2", "--retries", "0",
        "--out", str(out), "--run-dir", str(run_dir),
    ]


def _strip_resume_markers(doc: dict) -> dict:
    for run in doc.get("runs", {}).values():
        run.pop("resumed_from_task", None)
    return doc


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        ref_out = Path(tmp) / "ref.json"
        out = Path(tmp) / "sweep.json"
        run_dir = Path(tmp) / "sweep.d"

        # 1. Uninterrupted reference.
        rc = subprocess.call(
            _sweep_args(ref_out, Path(tmp) / "ref.d"), env=_env(), cwd=ROOT
        )
        assert rc == 0, f"reference sweep should exit 0, got {rc}"
        reference = _strip_resume_markers(json.loads(ref_out.read_text()))

        # 2. Same sweep, SIGTERMed mid-flight.
        proc = subprocess.Popen(
            _sweep_args(out, run_dir),
            env=_env(REPRO_HARNESS_SLOW="8"), cwd=ROOT,
        )
        time.sleep(SIGTERM_AFTER)
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=DRAIN_TIMEOUT)
        assert rc == EXIT_PREEMPTED, (
            f"preempted sweep should exit {EXIT_PREEMPTED}, got {rc}"
        )

        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["sweep_status"] == "interrupted", manifest
        preempted = [
            key for key, rec in manifest.get("status", {}).items()
            if rec["status"] == "preempted"
        ]
        for key in preempted:
            rec = manifest["status"][key]
            snap = Path(rec["snapshot"])
            assert snap.exists(), f"{key}: snapshot {snap} missing"
            assert rec["tasks_done"] > 0, rec
        # The drain joined every worker: no repro process survives ours.
        alive = subprocess.run(
            ["pgrep", "-f", "repro.experiments.harness|-m repro sweep"],
            capture_output=True, text=True,
        ).stdout.strip()
        assert not alive, f"orphaned sweep processes survive: {alive}"

        # 3. Resume and compare against the uninterrupted reference.
        rc = subprocess.call(
            [sys.executable, "-m", "repro", "sweep", "--resume", str(run_dir)],
            env=_env(), cwd=ROOT,
        )
        assert rc == 0, f"resumed sweep should exit 0, got {rc}"
        merged = json.loads(out.read_text())
        assert set(merged["runs"]) == EXPECTED_RUNS, merged["runs"].keys()
        assert merged["failures"] == []
        resumed_markers = {
            key: run.get("resumed_from_task")
            for key, run in merged["runs"].items()
            if "resumed_from_task" in run
        }
        assert set(resumed_markers) == set(preempted), (
            f"resume markers {resumed_markers} != preempted jobs {preempted}"
        )
        merged = _strip_resume_markers(merged)
        diffs = [
            key for key in EXPECTED_RUNS
            if merged["runs"][key] != reference["runs"][key]
        ]
        assert not diffs, f"resumed results diverge from reference: {diffs}"

    print(
        "preempt smoke ok: SIGTERM checkpointed "
        f"{len(preempted)} job(s), resume merged byte-identically"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
