#!/usr/bin/env python
"""Profile the simulator's hot path.

"No optimization without measuring": runs one (workload, policy)
experiment under cProfile and prints the top functions by cumulative and
internal time, so changes to the per-access loop can be checked for
regressions.

Usage: python scripts/profile_simulator.py [workload] [policy] [1/scale]
"""

from __future__ import annotations

import cProfile
import pstats
import sys

from repro.config import scaled_config
from repro.experiments.runner import run_experiment


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "kmeans"
    policy = sys.argv[2] if len(sys.argv) > 2 else "tdnuca"
    denom = int(sys.argv[3]) if len(sys.argv) > 3 else 256
    cfg = scaled_config(1.0 / denom)

    profiler = cProfile.Profile()
    profiler.enable()
    result = run_experiment(workload, policy, cfg)
    profiler.disable()

    accesses = result.machine.l1.accesses
    stats = pstats.Stats(profiler)
    total = stats.total_tt
    print(
        f"{workload}/{policy} @1/{denom}: {accesses:,} memory references, "
        f"{total:.2f}s -> {total / max(1, accesses) * 1e6:.2f} us/reference\n"
    )
    print("== top 15 by cumulative time ==")
    stats.sort_stats("cumulative").print_stats(15)
    print("== top 15 by internal time ==")
    stats.sort_stats("tottime").print_stats(15)


if __name__ == "__main__":
    main()
