#!/usr/bin/env python
"""Profile the simulator's hot path.

"No optimization without measuring": runs one (workload, policy)
experiment under cProfile and prints the top functions by cumulative and
internal time, so changes to the per-access loop can be checked for
regressions.

With ``--json PATH`` a machine-readable summary (us/reference, total
function calls) is also written atomically, for diffing across commits.

Usage: python scripts/profile_simulator.py [workload] [policy] [1/scale]
                                           [--json PATH]
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
from pathlib import Path

from repro.api import Session
from repro.config import scaled_config
from repro.ioutils import atomic_write

JSON_SCHEMA_VERSION = 1


def profile_run(
    workload: str,
    policy: str,
    denom: int,
    trace: bool = False,
    kernel: str = "auto",
):
    """Run one experiment under cProfile; returns ``(result, stats)``.

    The session is built outside the profiled region so only simulation
    work is measured; ``trace=True`` profiles the observability-enabled
    path (used by the perf smoke test to bound tracing overhead), and
    ``kernel`` pins a simulation backend so per-kernel call counts can
    be compared.
    """
    session = Session(scaled_config(1.0 / denom), kernel=kernel)
    profiler = cProfile.Profile()
    profiler.enable()
    result = session.run(workload, policy, trace=trace)
    profiler.disable()
    return result, pstats.Stats(profiler)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description="Profile the simulator hot path")
    ap.add_argument("workload", nargs="?", default="kmeans")
    ap.add_argument("policy", nargs="?", default="tdnuca")
    ap.add_argument("denom", nargs="?", type=int, default=256,
                    help="scale denominator (config at 1/denom)")
    ap.add_argument("--json", type=Path, default=None, metavar="PATH",
                    help="also write a machine-readable summary to PATH")
    ap.add_argument("--trace", action="store_true",
                    help="profile with the observability layer attached")
    ap.add_argument("--kernel", default="auto",
                    help="simulation kernel to profile (default auto)")
    args = ap.parse_args(argv)

    result, stats = profile_run(
        args.workload, args.policy, args.denom,
        trace=args.trace, kernel=args.kernel,
    )

    accesses = result.machine.l1.accesses
    total = stats.total_tt
    us_per_ref = total / max(1, accesses) * 1e6
    print(
        f"{args.workload}/{args.policy} @1/{args.denom}: "
        f"{accesses:,} memory references, "
        f"{total:.2f}s -> {us_per_ref:.2f} us/reference\n"
    )

    if args.json is not None:
        payload = {
            "schema_version": JSON_SCHEMA_VERSION,
            "workload": args.workload,
            "policy": args.policy,
            "scale_denominator": args.denom,
            "traced": args.trace,
            "kernel": args.kernel,
            "references": accesses,
            "total_seconds": round(total, 6),
            "us_per_reference": round(us_per_ref, 4),
            "total_calls": stats.total_calls,
        }
        with atomic_write(args.json) as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}\n")

    print("== top 15 by cumulative time ==")
    stats.sort_stats("cumulative").print_stats(15)
    print("== top 15 by internal time ==")
    stats.sort_stats("tottime").print_stats(15)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
