#!/usr/bin/env python
"""Scenario-library smoke test for CI.

Three gates, all cheap enough for every push:

1. **Library integrity** — every file under ``scenarios/`` parses,
   validates, compiles to a machine config, and round-trips
   (``parse(to_dict())`` compiles to the identical config, same
   ``config_sha256``).  A curated scenario that drifts out of schema is a
   broken front door, caught here rather than by the first user.
2. **Typed rejection** — the committed malformed fixture
   (``tests/scenario/fixtures/malformed.yaml``) must be rejected with a
   :class:`~repro.scenario.ScenarioError` that names both the offending
   file and the offending field.  Error quality is part of the DSL's
   contract.
3. **Mesh-scale determinism** — one 8x8 scenario (``stress-8x8``) runs
   under both simulation kernels and must produce byte-identical
   ``MachineStats``; the scaled-out geometry gets the same
   kernel-equivalence guarantee the 4x4 golden suite enforces.

Usage: ``PYTHONPATH=src python scripts/scenario_smoke.py``
"""

from __future__ import annotations

import dataclasses
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.api import run_scenario  # noqa: E402
from repro.scenario import (  # noqa: E402
    ScenarioError,
    load_scenario,
    parse_scenario,
    scenario_names,
)
from repro.sim.kernels import numpy_available  # noqa: E402
from repro.snapshot.format import config_sha256  # noqa: E402

MALFORMED = ROOT / "tests" / "scenario" / "fixtures" / "malformed.yaml"
BOTH_KERNELS_SCENARIO = "stress-8x8"


def check_library() -> int:
    names = scenario_names()
    if len(names) < 10:
        print(f"FAIL: curated library has {len(names)} scenarios, want >= 10")
        return 1
    failures = 0
    for name in names:
        try:
            scenario = load_scenario(name)
            sha = config_sha256(scenario.to_config())
            rt = parse_scenario(scenario.to_dict(), source=name)
            rt_sha = config_sha256(rt.to_config())
        except ScenarioError as exc:
            print(f"FAIL {name}: {exc}")
            failures += 1
            continue
        if rt_sha != sha:
            print(f"FAIL {name}: round-trip changed the config fingerprint "
                  f"({sha} -> {rt_sha})")
            failures += 1
            continue
        print(f"ok   {name} ({scenario.kind}, {sha[:12]})")
    return failures


def check_malformed() -> int:
    try:
        load_scenario(str(MALFORMED))
    except ScenarioError as exc:
        message = str(exc)
        missing = [
            part for part in (MALFORMED.name, exc.field or "")
            if not part or part not in message
        ]
        if exc.field is None or missing:
            print(f"FAIL: malformed fixture rejected, but the error does not "
                  f"name file and field: {message!r}")
            return 1
        print(f"ok   malformed fixture rejected: {message}")
        return 0
    print(f"FAIL: {MALFORMED} was accepted; it must raise ScenarioError")
    return 1


def check_both_kernels() -> int:
    scenario = load_scenario(BOTH_KERNELS_SCENARIO)
    stats = {}
    for kernel in ("reference", "vector"):
        result = run_scenario(dataclasses.replace(scenario, kernel=kernel))
        stats[kernel] = json.dumps(
            result.stats_dict(), sort_keys=True, separators=(",", ":")
        )
    if stats["reference"] != stats["vector"]:
        print(f"FAIL: {BOTH_KERNELS_SCENARIO} diverges across kernels")
        return 1
    fallback = "" if numpy_available() else " (vector fell back to reference)"
    print(f"ok   {BOTH_KERNELS_SCENARIO} byte-identical under both "
          f"kernels{fallback}")
    return 0


def main() -> int:
    failures = check_library()
    failures += check_malformed()
    failures += check_both_kernels()
    if failures:
        print(f"\nscenario smoke: {failures} failure(s)")
        return 1
    print("\nscenario smoke: all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
