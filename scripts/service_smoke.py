#!/usr/bin/env python
"""CI chaos smoke for the simulation service.

Drives the real ``repro serve`` process over HTTP and asserts the
resilience contract end-to-end:

1. A duplicate submit is answered from the content-addressed cache —
   zero new simulations, result byte-identical to a direct
   ``repro run --json`` reference.
2. SIGTERM mid-job drains to a spool snapshot and exits 75
   (``EX_TEMPFAIL``); ``kill -9`` mid-job loses nothing the periodic
   checkpointer already wrote.  A restarted server on the same
   cache/spool directories resumes and the final statistics are
   byte-identical to the uninterrupted reference.
3. A bit-flipped cache entry is quarantined to ``<name>.corrupt`` and
   transparently recomputed, not served.

Usage: ``PYTHONPATH=src python scripts/service_smoke.py``
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.service.client import ServiceClient  # noqa: E402

EXIT_DRAINED = 75
SPEC = {"workload": "md5", "policy": "tdnuca", "scale": 2048}
START_TIMEOUT = 30.0
KILL_AFTER = 2.0  # seconds into the SLOW hold: server is mid-attempt


def _env(**overrides: str) -> dict[str, str]:
    env = {**os.environ, **overrides}
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _start_server(tmp: Path, **env_overrides: str) -> tuple[subprocess.Popen, ServiceClient]:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", "1",
            "--cache-dir", str(tmp / "cache"),
            "--spool-dir", str(tmp / "spool"),
            "--checkpoint-every", "40",
            "--drain-grace", "20",
        ],
        env=_env(**env_overrides), cwd=ROOT,
        stdout=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + START_TIMEOUT
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line.startswith("listening on "):
            break
    assert line.startswith("listening on "), f"server never came up: {line!r}"
    host, _, port = line.split()[-1].rpartition(":")
    client = ServiceClient(host, int(port), retries=6, backoff=0.1)
    return proc, client


def _stop(proc: subprocess.Popen) -> int:
    proc.send_signal(signal.SIGTERM)
    rc = proc.wait(timeout=60)
    proc.stdout.close()
    return rc


def _submit_and_wait(client: ServiceClient) -> tuple[dict, dict]:
    job = client.submit_run(**SPEC)
    done = client.wait(job["id"], timeout=120)
    result = client.result(job["id"])["result"]
    return done, result


def main() -> int:
    # Uninterrupted reference through the plain CLI.
    out = subprocess.run(
        [sys.executable, "-m", "repro", "run", "md5", "tdnuca",
         "--scale", "2048", "--json"],
        env=_env(), cwd=ROOT, capture_output=True, text=True, check=True,
    ).stdout
    reference = json.loads(out)

    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)

        # ------------------------------------------------- cache hits
        proc, client = _start_server(tmp)
        try:
            first, result = _submit_and_wait(client)
            assert result == reference, "service result diverges from CLI run"
            assert first["simulated"] == 1, first

            second, dup = _submit_and_wait(client)
            assert dup == reference
            assert second["simulated"] == 0, second
            assert second["cache_hits"] == 1, second
            health = client.health()
            assert health["queue"]["simulations_run"] == 1, (
                "duplicate submit must do zero new simulation work: "
                f"{health['queue']}"
            )
        finally:
            rc = _stop(proc)
        assert rc == EXIT_DRAINED, f"SIGTERM drain should exit 75, got {rc}"

        # -------------------------------- SIGTERM drains to a snapshot
        proc, client = _start_server(tmp, REPRO_SERVICE_SLOW="1.5")
        client.submit_run(workload="lu", policy="tdnuca", scale=512)
        time.sleep(KILL_AFTER)
        rc = _stop(proc)
        assert rc == EXIT_DRAINED, f"drain mid-job should exit 75, got {rc}"
        snaps = list((tmp / "spool").glob("*.snap"))
        assert len(snaps) == 1, f"drain should leave one snapshot: {snaps}"

        # Restart and resubmit: the job resumes from the drain snapshot
        # and lands byte-identical to an uninterrupted CLI run.
        lu_clean = json.loads(subprocess.run(
            [sys.executable, "-m", "repro", "run", "lu", "tdnuca",
             "--scale", "512", "--json"],
            env=_env(), cwd=ROOT, capture_output=True, text=True,
            check=True,
        ).stdout)
        proc, client = _start_server(tmp)
        try:
            rejob = client.submit_run(workload="lu", policy="tdnuca",
                                      scale=512)
            redone = client.wait(rejob["id"], timeout=120)
            assert redone["resumed_from_task"], (
                f"restarted job should resume from the snapshot: {redone}"
            )
            reresult = client.result(rejob["id"])["result"]
            assert reresult == lu_clean, (
                "resumed-after-drain result diverges from a clean run"
            )
            assert not list((tmp / "spool").glob("*.snap")), (
                "snapshot must be consumed after successful resume"
            )
        finally:
            rc = _stop(proc)
        assert rc == EXIT_DRAINED, f"post-resume drain should exit 75, got {rc}"

        # ------------------------- kill -9, restart, resume from spool
        # A fresh cell (scale 128: not cached, no snapshot, ~6 s of work)
        # so the periodic checkpointer — not the drain — is what survives
        # the SIGKILL.
        proc, client = _start_server(tmp, REPRO_SERVICE_SLOW="0.5")
        client.submit_run(workload="lu", policy="tdnuca", scale=128)
        time.sleep(KILL_AFTER)
        proc.kill()  # SIGKILL: no drain, no goodbye
        proc.wait(timeout=30)
        proc.stdout.close()
        assert list((tmp / "spool").glob("*.snap")), (
            "kill -9 mid-job should leave the periodic checkpoint behind"
        )

        proc, client = _start_server(tmp)
        try:
            done, resumed = _submit_and_wait(client)  # md5: still cached
            assert done["cache_hits"] == 1 and resumed == reference

            rejob = client.submit_run(workload="lu", policy="tdnuca",
                                      scale=128)
            redone = client.wait(rejob["id"], timeout=120)
            reresult = client.result(rejob["id"])["result"]
            assert redone["resumed_from_task"], (
                f"job resubmitted after kill -9 should resume: {redone}"
            )
            lu_128 = json.loads(subprocess.run(
                [sys.executable, "-m", "repro", "run", "lu", "tdnuca",
                 "--scale", "128", "--json"],
                env=_env(), cwd=ROOT, capture_output=True, text=True,
                check=True,
            ).stdout)
            assert reresult == lu_128, (
                "resumed-after-kill-9 result diverges from a clean run"
            )
            assert not list((tmp / "spool").glob("*.snap")), (
                "snapshot must be consumed after successful resume"
            )

            # -------------------- corruption: quarantine and recompute
            # Flip one bit in one cache entry, then resubmit both cells.
            # Whichever entry was hit must be recomputed (not served),
            # quarantined to .corrupt, and the result must still match.
            entries = sorted((tmp / "cache").glob("*.rcache"))
            assert entries, "cache should hold entries by now"
            victim = entries[0]
            blob = bytearray(victim.read_bytes())
            blob[len(blob) // 2] ^= 0xFF
            victim.write_bytes(bytes(blob))

            before = client.health()["queue"]["simulations_run"]
            _, healed = _submit_and_wait(client)
            fresh_lu = client.submit_run(workload="lu", policy="tdnuca",
                                         scale=512)
            client.wait(fresh_lu["id"], timeout=120)
            after = client.health()
            assert after["queue"]["simulations_run"] == before + 1, (
                "exactly the corrupted cell must be recomputed"
            )
            assert after["cache"]["corrupt"] >= 1, after["cache"]
            assert list((tmp / "cache").glob("*.corrupt")), (
                "corrupt entry should be quarantined, not deleted"
            )
            assert healed == reference
        finally:
            rc = _stop(proc)
        assert rc == EXIT_DRAINED, f"final drain should exit 75, got {rc}"

    print(
        "service smoke ok: duplicate submit hit the cache, SIGTERM drained "
        "to a snapshot (exit 75), kill -9 resumed byte-identically, corrupt "
        "entry quarantined and recomputed"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
