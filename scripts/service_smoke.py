#!/usr/bin/env python
"""CI chaos smoke for the simulation service.

Drives the real ``repro serve`` process over HTTP and asserts the
resilience contract end-to-end:

1. A duplicate submit is answered from the content-addressed cache —
   zero new simulations, result byte-identical to a direct
   ``repro run --json`` reference.
2. SIGTERM mid-job drains to a spool snapshot and exits 75
   (``EX_TEMPFAIL``); ``kill -9`` mid-job loses nothing the periodic
   checkpointer already wrote.  A restarted server on the same
   cache/spool directories resumes and the final statistics are
   byte-identical to the uninterrupted reference.
3. A bit-flipped cache entry is quarantined to ``<name>.corrupt`` and
   transparently recomputed, not served.
4. Failpoint chaos against the worker pool: ``REPRO_FAILPOINTS`` SIGKILLs
   the worker mid-job and the supervisor requeues it to a byte-identical
   finish; an always-crashing job is quarantined as poison (with a
   diagnostic bundle in ``spool/poison/``) while a concurrent healthy job
   completes and the server keeps serving.
5. ``/v1/health`` exposes the worker-pool gauges and ``repro serve``
   prints the ``drained:`` summary line on shutdown.

Usage: ``PYTHONPATH=src python scripts/service_smoke.py``
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.service.client import ServiceClient  # noqa: E402
from repro.service.envelope import ServiceError  # noqa: E402

EXIT_DRAINED = 75
SPEC = {"workload": "md5", "policy": "tdnuca", "scale": 2048}
START_TIMEOUT = 30.0
KILL_AFTER = 2.0  # seconds into the SLOW hold: server is mid-attempt


def _env(**overrides: str) -> dict[str, str]:
    env = {**os.environ, **overrides}
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _start_server(
    tmp: Path, *extra_args: str, workers: int = 1, **env_overrides: str
) -> tuple[subprocess.Popen, ServiceClient]:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", str(workers),
            "--cache-dir", str(tmp / "cache"),
            "--spool-dir", str(tmp / "spool"),
            "--checkpoint-every", "40",
            "--drain-grace", "20",
            *extra_args,
        ],
        env=_env(**env_overrides), cwd=ROOT,
        stdout=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + START_TIMEOUT
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line.startswith("listening on "):
            break
    assert line.startswith("listening on "), f"server never came up: {line!r}"
    host, _, port = line.split()[-1].rpartition(":")
    client = ServiceClient(host, int(port), retries=6, backoff=0.1)
    return proc, client


def _stop(proc: subprocess.Popen) -> tuple[int, str]:
    """SIGTERM the server; return (exit code, remaining stdout)."""
    proc.send_signal(signal.SIGTERM)
    tail, _ = proc.communicate(timeout=60)
    return proc.returncode, tail or ""


def _wait_for_snapshot(spool: Path, timeout: float = 15.0) -> list[Path]:
    """Poll for a spool snapshot: the spawn-isolated worker outlives a
    SIGKILLed server briefly (PDEATHSIG -> snapshot at the next task
    boundary), so the file can land a moment after the server dies."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        snaps = list(spool.glob("*.snap"))
        if snaps:
            return snaps
        time.sleep(0.1)
    return []


def _submit_and_wait(client: ServiceClient) -> tuple[dict, dict]:
    job = client.submit_run(**SPEC)
    done = client.wait(job["id"], timeout=120)
    result = client.result(job["id"])["result"]
    return done, result


def main() -> int:
    # Uninterrupted reference through the plain CLI.
    out = subprocess.run(
        [sys.executable, "-m", "repro", "run", "md5", "tdnuca",
         "--scale", "2048", "--json"],
        env=_env(), cwd=ROOT, capture_output=True, text=True, check=True,
    ).stdout
    reference = json.loads(out)

    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)

        # ------------------------------------------------- cache hits
        proc, client = _start_server(tmp)
        try:
            first, result = _submit_and_wait(client)
            assert result == reference, "service result diverges from CLI run"
            assert first["simulated"] == 1, first

            second, dup = _submit_and_wait(client)
            assert dup == reference
            assert second["simulated"] == 0, second
            assert second["cache_hits"] == 1, second
            health = client.health()
            assert health["queue"]["simulations_run"] == 1, (
                "duplicate submit must do zero new simulation work: "
                f"{health['queue']}"
            )
            # Worker-pool gauges ride along on /v1/health.
            pool = health["queue"]["pool"]
            assert pool["alive"] == 0 and pool["busy"] == 0, pool
            assert pool["configured"] == 1 and pool["concurrency"] == 1, pool
            assert pool["spawned"] == 1 and pool["completions"] == 1, pool
            assert pool["deaths"] == 0 and pool["restarts"] == 0, pool
            assert health["queue"]["poisoned"] == 0, health["queue"]
        finally:
            rc, tail = _stop(proc)
        assert rc == EXIT_DRAINED, f"SIGTERM drain should exit 75, got {rc}"
        assert "drained:" in tail and "worker_deaths=0" in tail, (
            f"serve should log pool gauges on drain, got: {tail!r}"
        )

        # -------------------------------- SIGTERM drains to a snapshot
        proc, client = _start_server(tmp, REPRO_SERVICE_SLOW="1.5")
        client.submit_run(workload="lu", policy="tdnuca", scale=512)
        time.sleep(KILL_AFTER)
        rc, _ = _stop(proc)
        assert rc == EXIT_DRAINED, f"drain mid-job should exit 75, got {rc}"
        snaps = _wait_for_snapshot(tmp / "spool")
        assert len(snaps) == 1, f"drain should leave one snapshot: {snaps}"

        # Restart and resubmit: the job resumes from the drain snapshot
        # and lands byte-identical to an uninterrupted CLI run.
        lu_clean = json.loads(subprocess.run(
            [sys.executable, "-m", "repro", "run", "lu", "tdnuca",
             "--scale", "512", "--json"],
            env=_env(), cwd=ROOT, capture_output=True, text=True,
            check=True,
        ).stdout)
        proc, client = _start_server(tmp)
        try:
            rejob = client.submit_run(workload="lu", policy="tdnuca",
                                      scale=512)
            redone = client.wait(rejob["id"], timeout=120)
            assert redone["resumed_from_task"], (
                f"restarted job should resume from the snapshot: {redone}"
            )
            reresult = client.result(rejob["id"])["result"]
            assert reresult == lu_clean, (
                "resumed-after-drain result diverges from a clean run"
            )
            assert not list((tmp / "spool").glob("*.snap")), (
                "snapshot must be consumed after successful resume"
            )
        finally:
            rc, _ = _stop(proc)
        assert rc == EXIT_DRAINED, f"post-resume drain should exit 75, got {rc}"

        # ------------------------- kill -9, restart, resume from spool
        # A fresh cell (scale 128: not cached, no snapshot, ~6 s of work)
        # so the periodic checkpointer — not the drain — is what survives
        # the SIGKILL.
        proc, client = _start_server(tmp, REPRO_SERVICE_SLOW="0.5")
        client.submit_run(workload="lu", policy="tdnuca", scale=128)
        time.sleep(KILL_AFTER)
        proc.kill()  # SIGKILL: no drain, no goodbye
        proc.wait(timeout=30)
        proc.stdout.close()
        assert _wait_for_snapshot(tmp / "spool"), (
            "kill -9 mid-job should leave a checkpoint behind (periodic, "
            "or the orphaned worker's PDEATHSIG snapshot)"
        )

        proc, client = _start_server(tmp)
        try:
            done, resumed = _submit_and_wait(client)  # md5: still cached
            assert done["cache_hits"] == 1 and resumed == reference

            rejob = client.submit_run(workload="lu", policy="tdnuca",
                                      scale=128)
            redone = client.wait(rejob["id"], timeout=120)
            reresult = client.result(rejob["id"])["result"]
            assert redone["resumed_from_task"], (
                f"job resubmitted after kill -9 should resume: {redone}"
            )
            lu_128 = json.loads(subprocess.run(
                [sys.executable, "-m", "repro", "run", "lu", "tdnuca",
                 "--scale", "128", "--json"],
                env=_env(), cwd=ROOT, capture_output=True, text=True,
                check=True,
            ).stdout)
            assert reresult == lu_128, (
                "resumed-after-kill-9 result diverges from a clean run"
            )
            assert not list((tmp / "spool").glob("*.snap")), (
                "snapshot must be consumed after successful resume"
            )

            # -------------------- corruption: quarantine and recompute
            # Flip one bit in one cache entry, then resubmit both cells.
            # Whichever entry was hit must be recomputed (not served),
            # quarantined to .corrupt, and the result must still match.
            entries = sorted((tmp / "cache").glob("*.rcache"))
            assert entries, "cache should hold entries by now"
            victim = entries[0]
            blob = bytearray(victim.read_bytes())
            blob[len(blob) // 2] ^= 0xFF
            victim.write_bytes(bytes(blob))

            before = client.health()["queue"]["simulations_run"]
            _, healed = _submit_and_wait(client)
            fresh_lu = client.submit_run(workload="lu", policy="tdnuca",
                                         scale=512)
            client.wait(fresh_lu["id"], timeout=120)
            after = client.health()
            assert after["queue"]["simulations_run"] == before + 1, (
                "exactly the corrupted cell must be recomputed"
            )
            assert after["cache"]["corrupt"] >= 1, after["cache"]
            assert list((tmp / "cache").glob("*.corrupt")), (
                "corrupt entry should be quarantined, not deleted"
            )
            assert healed == reference
        finally:
            rc, _ = _stop(proc)
        assert rc == EXIT_DRAINED, f"final drain should exit 75, got {rc}"

        # ------------- failpoint chaos: worker SIGKILLed mid-job by the
        # registry (not the OS), requeued, byte-identical finish.  Fresh
        # directories so nothing is answered from the earlier cache.
        chaos = tmp / "chaos"
        (chaos / "cache").mkdir(parents=True)
        (chaos / "spool").mkdir(parents=True)
        proc, client = _start_server(
            chaos, "--retries", "1",
            REPRO_FAILPOINTS="worker.crash=*@attempt:1@task_ge:50@job:lu/tdnuca",
        )
        try:
            job = client.submit_run(workload="lu", policy="tdnuca",
                                    scale=512)
            done = client.wait(job["id"], timeout=180)
            result = client.result(job["id"])["result"]
            assert done["resumed_from_task"], (
                f"crashed job should resume from its checkpoint: {done}"
            )
            assert result == lu_clean, (
                "kill -9'd-by-failpoint job diverges from a clean run"
            )
            health = client.health()
            pool = health["queue"]["pool"]
            assert health["queue"]["worker_deaths"] == 1, health["queue"]
            assert pool["deaths"] == 1 and pool["restarts"] == 1, pool
        finally:
            rc, tail = _stop(proc)
        assert rc == EXIT_DRAINED
        assert "worker_deaths=1" in tail and "restarts=1" in tail, tail

        # ------------- poison quarantine: an always-crashing job is
        # benched with a diagnostic bundle while a healthy concurrent job
        # completes and the server keeps serving.
        jacobi_clean = json.loads(subprocess.run(
            [sys.executable, "-m", "repro", "run", "jacobi", "tdnuca",
             "--scale", "512", "--json"],
            env=_env(), cwd=ROOT, capture_output=True, text=True,
            check=True,
        ).stdout)
        poison_dir = tmp / "poison-phase"
        (poison_dir / "cache").mkdir(parents=True)
        (poison_dir / "spool").mkdir(parents=True)
        proc, client = _start_server(
            poison_dir, "--retries", "5", "--poison-after", "3",
            workers=2,
            REPRO_FAILPOINTS="worker.crash=*@job:histo/tdnuca@task_ge:10",
        )
        try:
            doomed = client.submit_run(workload="histo", policy="tdnuca",
                                       scale=512)
            healthy = client.submit_run(workload="jacobi", policy="tdnuca",
                                        scale=512)
            try:
                client.wait(doomed["id"], timeout=180)
                raise AssertionError("3x-crashing job should be poisoned")
            except ServiceError as err:
                assert err.type == "poisoned", err
            bundles = list((poison_dir / "spool" / "poison").glob("*.json"))
            assert bundles, "poison quarantine should write a bundle"
            bundle = json.loads(bundles[0].read_text())
            assert bundle["worker_deaths"] == 3, bundle
            assert bundle["last_death"]["signal"] == 9, bundle

            # Still serving: the healthy job lands byte-identical, and
            # the poisoned spec is rejected on resubmission.
            hdone = client.wait(healthy["id"], timeout=180)
            assert hdone["state"] == "done", hdone
            hresult = client.result(healthy["id"])["result"]
            assert hresult == jacobi_clean, (
                "healthy job diverged while sharing the pool with poison"
            )
            try:
                client.submit_run(workload="histo", policy="tdnuca",
                                  scale=512)
                raise AssertionError("poisoned spec must not be re-admitted")
            except ServiceError as err:
                assert err.type == "poisoned", err
            health = client.health()
            assert health["queue"]["poisoned"] == 1, health["queue"]
            assert health["queue"]["worker_deaths"] == 3, health["queue"]
        finally:
            rc, tail = _stop(proc)
        assert rc == EXIT_DRAINED
        assert "poisoned=1" in tail, tail

    print(
        "service smoke ok: duplicate submit hit the cache, SIGTERM drained "
        "to a snapshot (exit 75), kill -9 resumed byte-identically, corrupt "
        "entry quarantined and recomputed, failpoint-crashed worker requeued "
        "to a byte-identical finish, poison job quarantined with bundle "
        "while the pool kept serving"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
