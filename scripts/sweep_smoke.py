#!/usr/bin/env python
"""CI smoke test for the crash-tolerant sweep harness.

Runs a 2-workload parallel sweep through the real CLI with one injected
worker crash (the ``REPRO_HARNESS_CRASH`` chaos hook), verifies the sweep
degrades gracefully (remaining jobs complete, failure archived in the
manifest and the merged JSON), then resumes it and asserts the merged
output is complete, failure-free, and that already-finished shards were
not re-run.

Usage: ``PYTHONPATH=src python scripts/sweep_smoke.py``
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
CRASH_JOB = "md5/tdnuca"
EXPECTED_RUNS = {"md5/snuca", "md5/tdnuca", "knn/snuca", "knn/tdnuca"}


def repro(args: list[str], **env_overrides: str) -> int:
    env = {**os.environ, **env_overrides}
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.call(
        [sys.executable, "-m", "repro", *args], env=env, cwd=ROOT
    )


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "sweep.json"
        run_dir = Path(tmp) / "sweep.d"
        sweep = [
            "sweep", "--scale", "2048",
            "--workloads", "md5", "knn", "--policies", "snuca", "tdnuca",
            "--jobs", "2", "--retries", "0",
            "--out", str(out), "--run-dir", str(run_dir),
        ]

        rc = repro(sweep, REPRO_HARNESS_CRASH=CRASH_JOB)
        assert rc == 1, f"faulted sweep should exit 1, got {rc}"

        first = json.loads(out.read_text())
        assert set(first["runs"]) == EXPECTED_RUNS - {CRASH_JOB}, first["runs"].keys()
        assert [f["error"] for f in first["failures"]] == ["WorkerCrash"]
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["status"][CRASH_JOB]["status"] == "failed"
        assert manifest["failures"][0]["error"] == "WorkerCrash"

        shard_mtimes = {
            p.name: p.stat().st_mtime_ns
            for p in (run_dir / "shards").glob("*.json")
        }

        rc = repro(["sweep", "--resume", str(run_dir)])
        assert rc == 0, f"resumed sweep should exit 0, got {rc}"

        merged = json.loads(out.read_text())
        assert set(merged["runs"]) == EXPECTED_RUNS, merged["runs"].keys()
        assert merged["failures"] == []
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert all(s["status"] == "ok" for s in manifest["status"].values())

        # the resume must not have re-run (re-written) the finished shards
        for name, mtime in shard_mtimes.items():
            if name != "md5__tdnuca__s0.json":
                now = (run_dir / "shards" / name).stat().st_mtime_ns
                assert now == mtime, f"finished shard {name} was re-run"

    print("sweep smoke ok: crash archived, resume completed the campaign")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
