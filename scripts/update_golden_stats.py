#!/usr/bin/env python
"""Regenerate the golden stats-equivalence snapshots under tests/golden/.

The snapshots pin the exact ``MachineStats`` of every (workload, policy,
fault-spec) case in :data:`repro.experiments.golden.GOLDEN_CASES`; the
test suite replays the cases and demands byte-identical statistics, so
hot-path optimizations cannot silently change what the simulator models.

Only run this when a *semantic* change intentionally moves the numbers
(a modelling fix, a new accounting rule) — never to paper over an
optimization that drifted.  Review the diff of tests/golden/ with the
same care as a code change.

Usage: PYTHONPATH=src python scripts/update_golden_stats.py [case_id ...]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.experiments.golden import GOLDEN_CASES, run_case
from repro.ioutils import atomic_write

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "golden"


def main(argv: list[str]) -> int:
    only = set(argv)
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    unknown = only - {c.case_id for c in GOLDEN_CASES}
    if unknown:
        print(f"unknown case ids: {sorted(unknown)}", file=sys.stderr)
        return 2
    for case in GOLDEN_CASES:
        if only and case.case_id not in only:
            continue
        t0 = time.perf_counter()
        # The reference interpreter *defines* the snapshots; every other
        # kernel is held to them by the golden test suite.
        snapshot = run_case(case, kernel="reference")
        path = GOLDEN_DIR / f"{case.case_id}.json"
        with atomic_write(path) as fh:
            json.dump(snapshot, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"{case.case_id}: {time.perf_counter() - t0:.2f}s -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
