"""Legacy setup shim.

The execution environment is offline and has setuptools without the
``wheel`` package, so PEP-517 editable installs fail; ``pip install -e .
--no-build-isolation --no-use-pep517`` goes through this file instead.
Metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
