"""TD-NUCA reproduction: runtime-driven management of NUCA caches in task
dataflow programming models (Caheny et al., SC 2022).

Public entry points:

* :func:`repro.experiments.runner.run_experiment` — one (workload, policy)
  simulation with full statistics.
* :func:`repro.experiments.runner.run_suite` — the full evaluation sweep.
* :mod:`repro.experiments.figures` — every table/figure of the paper.
* :func:`repro.sim.machine.build_machine` +
  :class:`repro.runtime.Executor` — build your own experiments.
* ``python -m repro`` — the command-line interface.
"""

from repro.config import SystemConfig, paper_config, scaled_config
from repro.deps import DepMode

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "paper_config",
    "scaled_config",
    "DepMode",
    "__version__",
]
