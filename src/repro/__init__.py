"""TD-NUCA reproduction: runtime-driven management of NUCA caches in task
dataflow programming models (Caheny et al., SC 2022).

The front door is :class:`Session` — a configured simulation context that
runs experiments, sweeps, and the full figure suite, with observability
(event tracing, bank/link heatmap timelines, Chrome-trace export) one
keyword away::

    from repro import Session

    session = Session(scale=1 / 64)              # calibrated paper scale
    result = session.run("kmeans", "tdnuca", trace=True)
    print(result.makespan, result.machine.llc_hit_ratio)
    print(result.bank_heatmap())                 # ASCII bank-load timeline
    result.write_chrome_trace("trace.json")      # open in ui.perfetto.dev

:class:`RunResult` delegates every statistic of the classic
:class:`~repro.experiments.runner.ExperimentResult` and adds the trace
accessors, so reporting code accepts either.

Experiments are described declaratively by :class:`Scenario` — one
versioned YAML/JSON document capturing machine geometry, workload mix,
policy, faults, co-runners, kernel and seeds — and the curated library
under ``scenarios/`` is loadable by name::

    from repro import load_scenario, run_scenario

    result = run_scenario("stress-8x8")          # 64 cores, 8x8 mesh
    scenario = load_scenario("multiprog-duo")    # inspect before running
    print(scenario.to_config().num_cores)

Session kwargs, CLI flags, service submissions and scenario files all
compile through :meth:`Scenario.to_config`, so the same logical run is
fingerprint-identical whichever way it is expressed.

Other entry points:

* :meth:`Session.sweep` / :meth:`Session.suite` — the crash-tolerant
  evaluation sweep (parallel workers, checkpoint/resume, per-job traces).
* :mod:`repro.experiments.figures` — every table/figure of the paper.
* :mod:`repro.obs` — the observability layer itself (``Observer``,
  ``EventTrace``, exporters) for custom sinks and sampling periods.
* :func:`repro.sim.machine.build_machine` +
  :class:`repro.runtime.Executor` — build your own experiments.
* ``python -m repro`` — the command-line interface (``run``, ``sweep``,
  ``figures``, ``trace``, ...).

The pre-1.1 functional paths (``run_experiment`` / ``run_suite``) still
work but emit :class:`DeprecationWarning` pointing at :class:`Session`.
"""

from repro.api import RunResult, Session, run_scenario
from repro.config import SystemConfig, paper_config, scaled_config
from repro.deps import DepMode
from repro.scenario import Scenario, ScenarioError, load_scenario, scenario_names

__version__ = "1.5.0"

__all__ = [
    "Session",
    "RunResult",
    "SystemConfig",
    "paper_config",
    "scaled_config",
    "DepMode",
    "Scenario",
    "ScenarioError",
    "load_scenario",
    "run_scenario",
    "scenario_names",
    "__version__",
]
