"""The session facade: one documented entry point for running simulations.

:class:`Session` unifies what used to take three imports
(``run_experiment`` / ``run_suite`` / ``build_machine`` + ``Executor``)
behind one object with keyword-only options::

    from repro import Session

    session = Session(scale=1 / 64)
    result = session.run("kmeans", "tdnuca", trace=True,
                         faults="bank:5@task=100")
    print(result.makespan, result.machine.llc_hit_ratio)
    result.write_chrome_trace("trace.json")   # open in ui.perfetto.dev
    print(result.bank_heatmap())

:class:`RunResult` wraps the classic
:class:`~repro.experiments.runner.ExperimentResult` (to which it delegates
every statistic attribute) together with the run's
:class:`~repro.obs.observer.Observer`, adding trace/timeline accessors and
exporters.  ``Session.sweep`` fronts the crash-tolerant harness the same
way and can write one Chrome trace per job.

The old call paths (``run_experiment``/``run_suite``) keep working as thin
deprecation shims over :func:`_run_one` / :meth:`Session.sweep`.
"""

from __future__ import annotations

import functools
from dataclasses import replace
from pathlib import Path
from typing import Any

from repro.config import SystemConfig, scaled_config
from repro.experiments.runner import (
    ExperimentResult,
    build_runtime,
    default_config,
)
from repro.obs.events import DEFAULT_CAPACITY, EventTrace
from repro.obs.observer import DEFAULT_SAMPLE_EVERY, Observer
from repro.runtime.executor import Executor
from repro.runtime.scheduler import Scheduler
from repro.scenario import Scenario, load_scenario
from repro.sim.machine import POLICIES, build_machine
from repro.workloads.registry import get_workload

__all__ = ["Session", "RunResult", "run_scenario"]

#: policies a suite/sweep runs by default (the paper's three-way comparison).
DEFAULT_POLICIES = ("snuca", "rnuca", "tdnuca")


class RunResult:
    """One simulation's results plus (optionally) its observability data.

    Every attribute of the wrapped
    :class:`~repro.experiments.runner.ExperimentResult` (``machine``,
    ``execution``, ``makespan``, ``runtime``, ``isa``, ...) is reachable
    directly on the ``RunResult``, so existing reporting/figure code works
    on either type.
    """

    def __init__(self, experiment: ExperimentResult,
                 observer: Observer | None = None) -> None:
        self.experiment = experiment
        self.observer = observer

    def __getattr__(self, name: str) -> Any:
        # Only reached for names not set on the RunResult itself.
        return getattr(self.experiment, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        traced = self.observer is not None
        return (
            f"RunResult({self.experiment.workload}/{self.experiment.policy}, "
            f"traced={traced})"
        )

    # --- observability accessors ---------------------------------------

    @property
    def traced(self) -> bool:
        return self.observer is not None

    @property
    def events(self) -> list:
        """Retained trace events, oldest first ([] when untraced)."""
        return self.observer.events() if self.observer is not None else []

    @property
    def timeline(self):
        """The :class:`~repro.obs.timeline.IntervalTimeline` (or ``None``)."""
        return self.observer.timeline if self.observer is not None else None

    def _require_trace(self) -> Observer:
        if self.observer is None:
            raise ValueError(
                "this run was not traced; pass trace=True to Session.run"
            )
        return self.observer

    def write_chrome_trace(self, path) -> None:
        """Write a Chrome/Perfetto trace JSON for this run."""
        from repro.obs.export import write_chrome_trace

        obs = self._require_trace()
        write_chrome_trace(
            path, obs.events(), obs.timeline, meta=self._trace_meta()
        )

    def write_event_log(self, path) -> None:
        """Write the flat JSONL event log for this run."""
        from repro.obs.export import write_event_log

        obs = self._require_trace()
        write_event_log(path, obs.events(), meta=self._trace_meta())

    def bank_heatmap(self, **kwargs) -> str:
        """ASCII per-bank LLC load/hit-rate timeline heatmap."""
        from repro.stats.report import timeline_bank_heatmap

        obs = self._require_trace()
        if obs.timeline is None:
            raise ValueError("this run was traced without a timeline")
        return timeline_bank_heatmap(obs.timeline, **kwargs)

    def link_heatmap(self, **kwargs) -> str:
        """ASCII per-link NoC byte-load heatmap over the mesh floorplan."""
        from repro.stats.report import timeline_link_heatmap

        obs = self._require_trace()
        if obs.timeline is None:
            raise ValueError("this run was traced without a timeline")
        return timeline_link_heatmap(obs.timeline, obs.mesh, **kwargs)

    def _trace_meta(self) -> dict[str, Any]:
        return {
            "workload": self.experiment.workload,
            "policy": self.experiment.policy,
        }

    def to_dict(self) -> dict[str, Any]:
        """Flatten to the schema-3 result dict (with trace/timeline
        sections when the run was traced)."""
        from repro.experiments.serialize import result_to_dict

        obs = self.observer
        trace = None
        if obs is not None and isinstance(obs.sink, EventTrace):
            trace = obs.sink
        timeline = obs.timeline if obs is not None else None
        return result_to_dict(self.experiment, trace=trace, timeline=timeline)

    def stats_dict(self) -> dict[str, Any]:
        """Flatten to the *canonical untraced* result dict.

        Unlike :meth:`to_dict` this never attaches trace/timeline sections
        or resume markers, so the dict for a traced, resumed, or cached run
        is byte-identical (under sorted-key JSON) to a plain fresh run of
        the same configuration — the property the service's
        content-addressed result cache is built on.  Whether this run was
        resumed stays available via ``experiment.extra``.
        """
        from repro.experiments.serialize import result_to_dict

        out = result_to_dict(self.experiment)
        out.pop("resumed_from_task", None)
        return out


class Session:
    """A configured simulation context: build once, run many experiments.

    Exactly one of ``config`` or ``scale`` may be given; with neither, the
    calibrated 1/64 experiment scale is used.  All run options are
    keyword-only.
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        *,
        scale: float | None = None,
        seed: int = 0,
        kernel: str | None = None,
    ) -> None:
        if config is not None and scale is not None:
            raise ValueError("pass config or scale, not both")
        if config is None:
            config = scaled_config(scale) if scale is not None else default_config()
        if kernel is not None:
            # Execution backend only — byte-identical results are enforced
            # by the golden gate, so this never changes what a run returns.
            config = replace(config, kernel=kernel)
        config.validate()
        self.config = config
        self.seed = seed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Session(llc_bank_bytes={self.config.llc_bank_bytes}, seed={self.seed})"

    @classmethod
    def from_scenario(cls, scenario: Scenario | str) -> "Session":
        """A session on the scenario's machine (by value or library name/
        path); the scenario's seed becomes the session seed."""
        if isinstance(scenario, (str, Path)):
            scenario = load_scenario(scenario)
        return cls(scenario.to_config(), seed=scenario.seed)

    def _configured(self, faults: str, strict: bool) -> SystemConfig:
        cfg = self.config
        if faults or strict:
            cfg = replace(
                cfg,
                fault_spec=faults or cfg.fault_spec,
                strict_invariants=strict or cfg.strict_invariants,
            )
            cfg.validate()
        return cfg

    def run(
        self,
        workload: str,
        policy: str,
        *,
        seed: int | None = None,
        trace: bool | Observer = False,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        trace_capacity: int = DEFAULT_CAPACITY,
        faults: str = "",
        strict: bool = False,
        rrt_lookup_cycles: int | None = None,
        scheduler: Scheduler | None = None,
        census: bool = True,
        checkpoint=None,
        resume_from=None,
    ) -> RunResult:
        """Run one (workload, policy) simulation.

        ``trace=True`` attaches a fresh
        :class:`~repro.obs.observer.Observer` (ring-buffered events +
        interval timeline); passing an :class:`Observer` instance uses it
        as-is (custom sink, sampling period, or no timeline).

        ``checkpoint`` (a :class:`~repro.snapshot.Checkpointer`) enables
        task-boundary snapshots; ``resume_from`` continues a snapshotted
        run from its file, byte-identically.

        This method is a thin shim over :class:`~repro.scenario.Scenario`:
        when the session's config is scenario-expressible the kwargs are
        lifted into a scenario and compiled through
        :meth:`Scenario.to_config` (the canonical path shared with the CLI
        and the service — identical ``config_sha256`` by construction);
        hand-tuned configs keep the direct path.
        """
        observer: Observer | None = None
        if trace:
            observer = (
                trace
                if isinstance(trace, Observer)
                else Observer(sample_every=sample_every,
                              capacity=trace_capacity)
            )
        cfg = self._configured(faults, strict)
        scenario = Scenario.from_config(
            cfg, name=f"{workload}-{policy}", workload=workload, policy=policy,
            seed=self.seed if seed is None else seed,
        )
        if scenario is not None:
            cfg = scenario.to_config()
        experiment = _run_one(
            workload,
            policy,
            cfg,
            seed=self.seed if seed is None else seed,
            rrt_lookup_cycles=rrt_lookup_cycles,
            scheduler=scheduler,
            census=census,
            observer=observer,
            checkpoint=checkpoint,
            resume_from=resume_from,
        )
        return RunResult(experiment, observer)

    def sweep(
        self,
        workloads: list[str] | None = None,
        policies: list[str] | None = None,
        *,
        seed: int | None = None,
        plan=None,
        jobs: int = 1,
        timeout: float | None = None,
        retries: int = 0,
        run_dir=None,
        resume: bool = False,
        request: dict[str, Any] | None = None,
        on_event=None,
        faults: str = "",
        strict: bool = False,
        trace_dir=None,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        checkpoint_every: int = 0,
        deadline: float | None = None,
        preempt_after_tasks: int = 0,
    ):
        """Run every (workload, policy) pair through the crash-tolerant
        harness; returns its :class:`~repro.experiments.harness.SweepOutcome`.

        ``plan`` (a list of :class:`~repro.experiments.harness.Job`)
        overrides the ``workloads x policies`` grid — the CLI uses it to
        resume a checkpointed sweep.  With ``trace_dir`` every job runs
        traced and writes ``<dir>/<workload>-<policy>.trace.json``.

        ``checkpoint_every``/``deadline``/``preempt_after_tasks`` pass
        through to the harness's graceful-preemption machinery (see
        :func:`repro.experiments.harness.run_sweep`); SIGTERM/SIGINT make
        in-flight jobs snapshot at their next task boundary, and a
        ``resume=True`` sweep continues them byte-identically.
        """
        from repro.experiments import harness
        from repro.workloads.registry import workload_names

        cfg = self._configured(faults, strict)
        if plan is None:
            workloads = workloads if workloads is not None else workload_names()
            policies = (
                list(policies) if policies is not None else list(DEFAULT_POLICIES)
            )
            job_seed = self.seed if seed is None else seed
            plan = [
                harness.Job(wl, pol, job_seed)
                for wl in workloads
                for pol in policies
            ]
        runner = None
        if trace_dir is not None:
            Path(trace_dir).mkdir(parents=True, exist_ok=True)
            runner = functools.partial(
                _traced_sweep_runner,
                trace_dir=str(trace_dir),
                sample_every=sample_every,
            )
        return harness.run_sweep(
            plan,
            cfg,
            workers=jobs,
            timeout=timeout,
            retries=retries,
            run_dir=run_dir,
            resume=resume,
            request=request,
            on_event=on_event,
            runner=runner,
            checkpoint_every=checkpoint_every,
            deadline=deadline,
            preempt_after_tasks=preempt_after_tasks,
        )

    def suite(
        self,
        workloads: list[str] | None = None,
        policies: list[str] | None = None,
        *,
        seed: int | None = None,
        jobs: int = 1,
        timeout: float | None = None,
        retries: int = 0,
        run_dir=None,
    ) -> dict[tuple[str, str], ExperimentResult]:
        """Like :meth:`sweep` but all-or-nothing: raises
        :class:`~repro.experiments.harness.SweepFailure` if any job failed
        and returns results keyed ``(workload, policy)`` in grid order
        (what the figure builders consume)."""
        from repro.experiments.harness import SweepFailure
        from repro.workloads.registry import workload_names

        workloads = workloads if workloads is not None else workload_names()
        policies = (
            list(policies) if policies is not None else list(DEFAULT_POLICIES)
        )
        outcome = self.sweep(
            workloads,
            policies,
            seed=seed,
            jobs=jobs,
            timeout=timeout,
            retries=retries,
            run_dir=run_dir,
        )
        if outcome.failures:
            raise SweepFailure(outcome.failures)
        results = outcome.results()
        return {
            (wl, pol): results[(wl, pol)]
            for wl in workloads
            for pol in policies
        }


def run_scenario(
    scenario: Scenario | str,
    *,
    jobs: int = 1,
    run_dir=None,
    resume: bool = False,
):
    """Execute a scenario (by value, library name, or file path).

    Dispatch follows :attr:`Scenario.kind`:

    * ``run`` — one simulation; returns a :class:`RunResult` (traced when
      the scenario says so, Chrome trace written to ``trace.out`` if set).
    * ``multiprog`` — co-scheduled processes through
      :func:`repro.scenario.run_multiprog`; returns a :class:`RunResult`.
    * ``sweep`` — the grid through the crash-tolerant harness (``jobs``
      workers, resumable in ``run_dir``); returns its
      :class:`~repro.experiments.harness.SweepOutcome`.
    """
    from repro.scenario import run_multiprog

    if isinstance(scenario, (str, Path)):
        scenario = load_scenario(scenario)
    session = Session(scenario.to_config(), seed=scenario.seed)
    if scenario.kind == "sweep":
        return session.sweep(
            list(scenario.workloads),
            list(scenario.policies),
            jobs=jobs,
            run_dir=run_dir,
            resume=resume,
            checkpoint_every=scenario.checkpoint.every,
            deadline=scenario.checkpoint.deadline,
        )
    observer: Observer | None = None
    if scenario.trace.enabled:
        observer = Observer(sample_every=scenario.trace.sample_every)
    if scenario.kind == "multiprog":
        experiment = run_multiprog(
            scenario, session.config, observer=observer
        )
        result = RunResult(experiment, observer)
    else:
        result = session.run(
            scenario.workload,
            scenario.policy,
            trace=observer if observer is not None else False,
        )
    if scenario.trace.out and result.traced:
        result.write_chrome_trace(scenario.trace.out)
    return result


def _run_one(
    workload: str,
    policy: str,
    cfg: SystemConfig | None = None,
    *,
    seed: int = 0,
    rrt_lookup_cycles: int | None = None,
    scheduler: Scheduler | None = None,
    census: bool = True,
    observer: Observer | None = None,
    checkpoint=None,
    resume_from=None,
) -> ExperimentResult:
    """Build the machine, run the benchmark, snapshot the statistics.

    The functional core behind :meth:`Session.run` and the deprecated
    ``run_experiment`` shim.  ``observer`` (when given) is attached to the
    machine and stamped with dispatch times by the executor.

    ``checkpoint`` (a :class:`~repro.snapshot.Checkpointer`) enables
    periodic / signal-triggered snapshots; a triggered preemption
    propagates as :class:`~repro.snapshot.PreemptedError` after the
    snapshot is on disk.  ``resume_from`` (a snapshot file path) restores
    a preempted run and continues it — the final statistics are
    byte-identical to the uninterrupted run.
    """
    from repro.runtime.extensions import TdNucaRuntime

    if policy not in POLICIES:
        raise ValueError(
            f"unknown policy {policy!r}; valid policies: {', '.join(POLICIES)}"
        )
    cfg = cfg if cfg is not None else default_config()
    cfg.validate()  # fail early, with a clear message, on nonsense configs

    resume_payload = None
    if resume_from is not None:
        from repro.snapshot import load_snapshot, verify_meta

        resume_payload = load_snapshot(resume_from)
        verify_meta(
            resume_payload, workload=workload, policy=policy, seed=seed, cfg=cfg
        )

    wl = get_workload(workload)
    program = wl.build(cfg, seed)
    machine = build_machine(
        cfg, policy, rrt_lookup_cycles=rrt_lookup_cycles, seed=seed, census=census
    )
    if observer is not None:
        observer.attach(machine)
    extension = build_runtime(machine, policy)
    executor = Executor(
        machine,
        scheduler=scheduler,
        extension=extension,
        overlap_mode=wl.tdg_overlap,
        observer=observer,
    )
    if checkpoint is not None:
        from repro.snapshot import config_sha256

        checkpoint.meta = {
            "workload": wl.name,
            "policy": policy,
            "seed": seed,
            "config_sha256": config_sha256(cfg),
        }
        executor.checkpointer = checkpoint

    segment = resume_payload["meta"]["segment"] if resume_payload else None
    if program.warmup_phases:
        # Initialization phases: run, then reset counters — the paper
        # measures the post-initialisation parallel execution only.  The
        # observer's trace and timeline restart with the counters
        # (machine.reset_stats drives Observer.on_stats_reset).
        from repro.runtime.task import Program as _Program

        warmup = _Program(program.name, program.phases[: program.warmup_phases])
        main = _Program(program.name, program.phases[program.warmup_phases :])
        if segment == "main":
            # The snapshot postdates the warmup (and its stats reset):
            # restoring it stands in for running the warmup at all.
            if checkpoint is not None:
                checkpoint.segment = "main"
            exec_stats = executor.resume(main, resume_payload)
        else:
            if checkpoint is not None:
                checkpoint.segment = "warmup"
            if segment == "warmup":
                executor.resume(warmup, resume_payload)
            else:
                executor.run(warmup)
            machine.reset_stats()
            if isinstance(extension, TdNucaRuntime):
                extension.reset_stats()
            if checkpoint is not None:
                checkpoint.segment = "main"
            exec_stats = executor.run(main)
    else:
        if segment == "warmup":
            raise ValueError(
                "snapshot was taken during warmup but this workload has no "
                "warmup phases"
            )
        if checkpoint is not None:
            checkpoint.segment = "main"
        if resume_payload is not None:
            exec_stats = executor.resume(program, resume_payload)
        else:
            exec_stats = executor.run(program)

    result = ExperimentResult(
        workload=wl.name,
        policy=policy,
        machine=machine.collect_stats(),
        execution=exec_stats,
    )
    if resume_payload is not None:
        result.extra["resumed_from_task"] = resume_payload["meta"]["tasks_completed"]
    if machine.census is not None:
        result.rnuca_census = machine.census.rnuca_census()
        result.unique_blocks = machine.census.unique_blocks
    if isinstance(extension, TdNucaRuntime):
        result.runtime = extension.stats
        result.isa = machine.isa.stats if machine.isa is not None else None
        result.dependency_categories = extension.dependency_categories()
        # Unique-block counts per Fig.-3 category (priority: a block touched
        # by several dependencies takes the "most reused" category so that
        # NotReused truly means every covering dependency was always
        # bypassed).
        amap = machine.amap
        raw: dict[str, set[int]] = {}
        for cat, regions in result.dependency_categories.items():
            blocks: set[int] = set()
            for region in regions:
                blocks.update(region.blocks(amap))
            raw[cat] = blocks
        both = raw["both"] | (raw["in"] & raw["out"])
        in_only = raw["in"] - both
        out_only = raw["out"] - both
        reused = both | raw["in"] | raw["out"]
        not_reused = raw["not_reused"] - reused
        result.extra["dep_category_blocks"] = {
            "both": len(both),
            "in": len(in_only),
            "out": len(out_only),
            "not_reused": len(not_reused),
        }
        result.extra["dep_blocks_total"] = len(reused | not_reused)
    return result


def _traced_sweep_runner(
    job, cfg, *, trace_dir: str, sample_every: int,
    checkpoint=None, resume_from=None,
):
    """Harness runner for traced sweeps (module-level: spawn-picklable).

    Writes the job's Chrome trace inside the worker and returns the
    flattened dict (with trace/timeline sections) so nothing heavyweight
    crosses the process boundary.  Accepts the harness's ``checkpoint``/
    ``resume_from`` kwargs so traced sweeps are preemptible too.
    """
    observer = Observer(sample_every=sample_every)
    experiment = _run_one(
        job.workload, job.policy, cfg, seed=job.seed, observer=observer,
        checkpoint=checkpoint, resume_from=resume_from,
    )
    result = RunResult(experiment, observer)
    path = Path(trace_dir) / f"{job.workload}-{job.policy}.trace.json"
    result.write_chrome_trace(path)
    return result.to_dict()
