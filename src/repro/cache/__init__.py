"""Cache substrate: set-associative banks, private L1s, the banked NUCA
LLC, and a MESI-style coherence directory.

These modules stand in for gem5's Ruby memory system.  The modelled events
(hits, misses, evictions, writebacks, invalidations, flushes) are the ones
the paper's evaluation consumes; transient protocol states are unnecessary
because the task-dataflow runtime already orders conflicting accesses.
"""

from repro.cache.bank import AccessResult, CacheBank
from repro.cache.directory import CoherenceDirectory
from repro.cache.l1 import L1Cache
from repro.cache.llc import NucaLLC
from repro.cache.replacement import LRUState, TreePLRUState, make_replacement

__all__ = [
    "CacheBank",
    "AccessResult",
    "L1Cache",
    "NucaLLC",
    "CoherenceDirectory",
    "TreePLRUState",
    "LRUState",
    "make_replacement",
]
