"""Generic set-associative cache bank.

Used both for the private L1 caches and for each LLC bank.  Operates on
*physical block numbers* (already shifted by the block size); set selection
uses the low bits of the block number, as in a physically indexed cache.

The per-access path (:meth:`CacheBank.access`) is the hottest loop of the
whole simulator, so it is written flat: dict probe, way arrays, integer
PLRU state, no allocation on hits.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.cache.replacement import make_replacement

__all__ = ["CacheBank", "AccessResult", "BankStats"]


@dataclass
class BankStats:
    hits: int = 0
    misses: int = 0
    read_hits: int = 0
    write_hits: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations: int = 0
    flushed_blocks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def merge(self, other: "BankStats") -> None:
        for f in (
            "hits",
            "misses",
            "read_hits",
            "write_hits",
            "evictions",
            "dirty_evictions",
            "invalidations",
            "flushed_blocks",
        ):
            setattr(self, f, getattr(self, f) + getattr(other, f))


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one block access.

    ``evicted`` is the block number displaced by the fill on a miss (or
    ``None``); ``evicted_dirty`` tells the caller whether a writeback of the
    victim is required.
    """

    hit: bool
    evicted: int | None = None
    evicted_dirty: bool = False


class CacheBank:
    """One set-associative bank holding block numbers with dirty bits."""

    def __init__(
        self,
        size_bytes: int,
        assoc: int,
        block_bytes: int,
        replacement: str = "plru",
        name: str = "",
    ) -> None:
        if size_bytes <= 0 or size_bytes % (assoc * block_bytes):
            raise ValueError("size must be a positive multiple of assoc * block")
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.block_bytes = block_bytes
        self.name = name
        self.num_sets = size_bytes // (assoc * block_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")
        self._set_mask = self.num_sets - 1
        # Per-set state; dense lists indexed by set.
        self._map: list[dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._ways: list[list[int | None]] = [
            [None] * assoc for _ in range(self.num_sets)
        ]
        self._dirty: list[list[bool]] = [[False] * assoc for _ in range(self.num_sets)]
        self._repl = [make_replacement(replacement, assoc) for _ in range(self.num_sets)]
        # Tree-PLRU with a materialized victim table supports fully inlined
        # touch/victim on the hot path; LRU (and very wide PLRU trees, which
        # have no table) keep the method-call protocol.
        self._plru_fast = getattr(self._repl[0], "_victim", None) is not None
        # Maintained valid-block counter; audited against the per-set maps
        # by the runtime invariant checker (occupancy-counter balance).
        self._occupancy = 0
        self.stats = BankStats()

    # --- queries (no state change) ---

    def set_index(self, block: int) -> int:
        return block & self._set_mask

    def contains(self, block: int) -> bool:
        return block in self._map[block & self._set_mask]

    def is_dirty(self, block: int) -> bool:
        s = block & self._set_mask
        way = self._map[s].get(block)
        return way is not None and self._dirty[s][way]

    @property
    def occupancy(self) -> int:
        """Number of valid blocks currently resident (O(1) counter)."""
        return self._occupancy

    def resident_blocks(self) -> list[int]:
        """All resident block numbers (test/diagnostic helper)."""
        out: list[int] = []
        for m in self._map:
            out.extend(m)
        return out

    def resident_items(self) -> list[tuple[int, bool]]:
        """``(block, dirty)`` for every resident block (invariant checks)."""
        out: list[tuple[int, bool]] = []
        for s, smap in enumerate(self._map):
            dirty = self._dirty[s]
            out.extend((block, dirty[way]) for block, way in smap.items())
        return out

    def audit(self) -> list[str]:
        """Internal-consistency check; returns human-readable anomalies.

        Verifies, per set, that the block->way map and the way array agree,
        and that the maintained occupancy counter balances against the maps.
        An empty list means the bank is structurally sound.
        """
        issues: list[str] = []
        total = 0
        for s in range(self.num_sets):
            smap, ways = self._map[s], self._ways[s]
            total += len(smap)
            valid_ways = sum(1 for w in ways if w is not None)
            if valid_ways != len(smap):
                issues.append(
                    f"{self.name or 'bank'} set {s}: {valid_ways} valid ways "
                    f"vs {len(smap)} mapped blocks"
                )
            for block, way in smap.items():
                if not 0 <= way < self.assoc or ways[way] != block:
                    issues.append(
                        f"{self.name or 'bank'} set {s}: block {block} maps "
                        f"to way {way} holding {ways[way] if 0 <= way < self.assoc else '?'}"
                    )
        if total != self._occupancy:
            issues.append(
                f"{self.name or 'bank'}: occupancy counter {self._occupancy} "
                f"!= {total} resident blocks"
            )
        return issues

    # --- the hot path ---

    def probe(self, block: int, write: bool) -> bool:
        """Hit fast path: on a hit, update stats/dirty/PLRU and return
        ``True``; on a miss return ``False`` *without* filling (and without
        counting the miss — pair with :meth:`fill_demand`)."""
        s = block & self._set_mask
        way = self._map[s].get(block)
        if way is None:
            return False
        st = self.stats
        st.hits += 1
        if write:
            st.write_hits += 1
            self._dirty[s][way] = True
        else:
            st.read_hits += 1
        repl = self._repl[s]
        if self._plru_fast:
            repl._bits = (repl._bits | repl._or[way]) & repl._and[way]
        else:
            repl.touch(way)
        return True

    def _insert(self, block: int, dirty: bool) -> tuple[int, bool]:
        """Place a non-resident ``block``; returns ``(evicted, dirty)``
        with ``evicted == -1`` when no victim was displaced.  The caller
        must have established that ``block`` is absent."""
        s = block & self._set_mask
        smap = self._map[s]
        ways = self._ways[s]
        repl = self._repl[s]
        fast = self._plru_fast
        if len(smap) < self.assoc:
            way = ways.index(None)
            self._occupancy += 1
            evicted = -1
            evicted_dirty = False
        else:
            way = repl._victim[repl._bits] if fast else repl.victim()
            evicted = ways[way]
            evicted_dirty = self._dirty[s][way]
            del smap[evicted]
            st = self.stats
            st.evictions += 1
            if evicted_dirty:
                st.dirty_evictions += 1
        ways[way] = block
        smap[block] = way
        self._dirty[s][way] = dirty
        if fast:
            repl._bits = (repl._bits | repl._or[way]) & repl._and[way]
        else:
            repl.touch(way)
        return evicted, evicted_dirty

    def fill_demand(self, block: int, write: bool) -> tuple[int, bool]:
        """Miss slow path: count a demand miss and insert ``block``;
        returns ``(evicted, evicted_dirty)`` with ``evicted == -1`` when
        nothing was displaced.  Only call after :meth:`probe` missed."""
        self.stats.misses += 1
        return self._insert(block, write)

    def access(self, block: int, write: bool) -> AccessResult:
        """Access ``block``; on miss, fill it, evicting a victim if needed."""
        if self.probe(block, write):
            return _HIT
        self.stats.misses += 1
        evicted, evicted_dirty = self._insert(block, write)
        if evicted < 0:
            return _MISS_NO_EVICT
        return AccessResult(False, evicted, evicted_dirty)

    def fill(self, block: int, dirty: bool = False) -> AccessResult:
        """Insert ``block`` without counting a demand access (used by
        victim-fill style operations); returns eviction info.

        Evictions it causes *are* counted (the displaced victim really
        leaves the cache); only the demand-side hit/miss counters stay
        untouched.
        """
        s = block & self._set_mask
        way = self._map[s].get(block)
        if way is not None:
            if dirty:
                self._dirty[s][way] = True
            self._repl[s].touch(way)
            return _HIT
        evicted, evicted_dirty = self._insert(block, dirty)
        if evicted < 0:
            return _MISS_NO_EVICT
        return AccessResult(False, evicted, evicted_dirty)

    # --- invalidation / flushing ---

    def make_clean(self, block: int) -> bool:
        """Clear the dirty bit of ``block`` (coherence downgrade M->S);
        returns whether the block was present."""
        s = block & self._set_mask
        way = self._map[s].get(block)
        if way is None:
            return False
        self._dirty[s][way] = False
        return True

    def invalidate(self, block: int) -> tuple[bool, bool]:
        """Remove ``block`` if present; returns ``(present, was_dirty)``."""
        s = block & self._set_mask
        way = self._map[s].pop(block, None)
        if way is None:
            return False, False
        dirty = self._dirty[s][way]
        self._ways[s][way] = None
        self._dirty[s][way] = False
        self._occupancy -= 1
        self.stats.invalidations += 1
        return True, dirty

    def flush_blocks_collect(self, blocks) -> list[tuple[int, bool]]:
        """Invalidate every block in ``blocks`` that is resident and count
        them in ``flushed_blocks``; returns the removed ``(block, dirty)``
        pairs so the caller can perform the dirty writebacks."""
        removed: list[tuple[int, bool]] = []
        append = removed.append
        smaps = self._map
        ways = self._ways
        dirties = self._dirty
        mask = self._set_mask
        # invalidate() inlined: flushes sweep whole regions, so this loop
        # runs tens of thousands of times per ISA flush-heavy workload.
        for block in blocks:
            s = block & mask
            way = smaps[s].pop(block, None)
            if way is None:
                continue
            drow = dirties[s]
            append((block, drow[way]))
            ways[s][way] = None
            drow[way] = False
        n = len(removed)
        self._occupancy -= n
        st = self.stats
        st.invalidations += n
        # invalidate() counted these in invalidations too; keep both views.
        st.flushed_blocks += n
        return removed

    def flush_blocks(self, blocks) -> tuple[int, int]:
        """Invalidate every block in ``blocks`` that is resident.

        Returns ``(flushed, dirty_flushed)`` — the dirty count is the number
        of writebacks the flush transaction must perform.
        """
        removed = self.flush_blocks_collect(blocks)
        return len(removed), sum(1 for _, dirty in removed if dirty)

    def clear(self) -> None:
        """Drop all contents and reset replacement state (not stats)."""
        for s in range(self.num_sets):
            self._map[s].clear()
            self._ways[s] = [None] * self.assoc
            self._dirty[s] = [False] * self.assoc
            self._repl[s].reset()
        self._occupancy = 0

    # --- checkpoint/restore ---

    def state_dict(self) -> dict:
        """Full mutable state (tags, dirty bits, replacement trees, stats)
        as nested primitives; geometry is excluded — it is rebuilt from the
        configuration and validated on load."""
        return {
            "ways": [
                [-1 if b is None else b for b in ways] for ways in self._ways
            ],
            "dirty": [list(row) for row in self._dirty],
            "repl": [r.state_dict() for r in self._repl],
            "stats": asdict(self.stats),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this (same-geometry) bank."""
        ways = state["ways"]
        dirty = state["dirty"]
        if len(ways) != self.num_sets or len(dirty) != self.num_sets:
            raise ValueError(
                f"{self.name or 'bank'}: snapshot has {len(ways)} sets, "
                f"bank has {self.num_sets}"
            )
        occupancy = 0
        for s in range(self.num_sets):
            row = ways[s]
            if len(row) != self.assoc:
                raise ValueError(
                    f"{self.name or 'bank'} set {s}: snapshot has "
                    f"{len(row)} ways, bank has {self.assoc}"
                )
            self._ways[s] = [None if b < 0 else b for b in row]
            self._dirty[s] = [bool(d) for d in dirty[s]]
            smap = {block: way for way, block in enumerate(row) if block >= 0}
            self._map[s] = smap
            occupancy += len(smap)
            self._repl[s].load_state_dict(state["repl"][s])
        self._occupancy = occupancy
        self.stats = BankStats(**state["stats"])


_HIT = AccessResult(True)
_MISS_NO_EVICT = AccessResult(False)
