"""MESI-style coherence directory.

Tracks, per physical block, which cores' L1s hold a copy (a sharer bitmask)
and which core, if any, holds it modified (the owner).  This is the
directory abstraction of Ruby's MESI protocol reduced to its steady states:

* no sharers            — Invalid everywhere
* one sharer, owner     — Modified (or Exclusive) in that L1
* >=1 sharers, no owner — Shared

Transient/blocking states are unnecessary because the task-dataflow runtime
orders conflicting accesses (paper Section III-C2), and silent evictions
are modelled exactly as in Table I: clean L1 evictions do not notify the
directory, so stale presence bits are lazily corrected.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CoherenceDirectory", "DirectoryStats", "CoherenceActions"]


@dataclass
class DirectoryStats:
    invalidations_sent: int = 0
    downgrades_sent: int = 0
    entries_peak: int = 0

    def merge(self, other: "DirectoryStats") -> None:
        self.invalidations_sent += other.invalidations_sent
        self.downgrades_sent += other.downgrades_sent
        self.entries_peak = max(self.entries_peak, other.entries_peak)


@dataclass(frozen=True)
class CoherenceActions:
    """Coherence work triggered by one L1 fill.

    ``invalidate`` cores must drop their L1 copy; ``writeback_from`` (if
    any) held the block dirty and must supply the data (dirty writeback /
    owner-to-owner transfer).
    """

    invalidate: tuple[int, ...] = ()
    writeback_from: int | None = None


_NO_ACTIONS = CoherenceActions()


class CoherenceDirectory:
    """Full-map directory over L1 copies of physical blocks."""

    def __init__(self, num_cores: int) -> None:
        if num_cores <= 0:
            raise ValueError("num_cores must be positive")
        self.num_cores = num_cores
        self._sharers: dict[int, int] = {}  # block -> bitmask of cores
        self._owner: dict[int, int] = {}  # block -> core holding it dirty
        self.stats = DirectoryStats()

    # --- queries ---

    def sharers(self, block: int) -> list[int]:
        mask = self._sharers.get(block, 0)
        return [c for c in range(self.num_cores) if mask >> c & 1]

    def sharer_mask(self, block: int) -> int:
        return self._sharers.get(block, 0)

    def owner(self, block: int) -> int | None:
        return self._owner.get(block)

    def is_tracked(self, block: int) -> bool:
        return block in self._sharers

    @property
    def entries(self) -> int:
        return len(self._sharers)

    def tracked_items(self) -> list[tuple[int, int]]:
        """Snapshot of ``(block, sharer mask)`` pairs (invariant checks)."""
        return list(self._sharers.items())

    def owner_items(self) -> list[tuple[int, int]]:
        """Snapshot of ``(block, owner core)`` pairs (invariant checks)."""
        return list(self._owner.items())

    def audit(self) -> list[str]:
        """Internal-consistency check; returns human-readable anomalies.

        A tracked block must have a non-empty, in-range sharer mask; an
        owner must be an in-range core whose presence bit is set.  Stale
        presence bits (silent clean L1 evictions) are legal and not flagged.
        """
        issues: list[str] = []
        full = (1 << self.num_cores) - 1
        for block, mask in self._sharers.items():
            if mask == 0:
                issues.append(f"directory: block {block} tracked with empty mask")
            elif mask & ~full:
                issues.append(
                    f"directory: block {block} mask {mask:#x} names cores "
                    f">= {self.num_cores}"
                )
        for block, owner in self._owner.items():
            if not 0 <= owner < self.num_cores:
                issues.append(f"directory: block {block} owned by bad core {owner}")
            elif not (self._sharers.get(block, 0) >> owner) & 1:
                issues.append(
                    f"directory: block {block} owner {owner} lacks presence bit"
                )
        return issues

    # --- checkpoint/restore ---

    def state_dict(self) -> dict:
        return {
            "sharers": list(self._sharers.items()),
            "owner": list(self._owner.items()),
            "stats": {
                "invalidations_sent": self.stats.invalidations_sent,
                "downgrades_sent": self.stats.downgrades_sent,
                "entries_peak": self.stats.entries_peak,
            },
        }

    def load_state_dict(self, state: dict) -> None:
        self._sharers = {int(b): int(m) for b, m in state["sharers"]}
        self._owner = {int(b): int(c) for b, c in state["owner"]}
        self.stats = DirectoryStats(**state["stats"])

    # --- protocol events ---

    def on_l1_fill(self, core: int, block: int, write: bool) -> CoherenceActions:
        """Core ``core`` is filling (or upgrading) ``block``; returns the
        invalidations/downgrade the directory must perform first."""
        mask = self._sharers.get(block, 0)
        bit = 1 << core
        owner = self._owner.get(block)
        actions = _NO_ACTIONS
        if write:
            others = mask & ~bit
            if others:
                invalidate = tuple(
                    c for c in range(self.num_cores) if others >> c & 1
                )
                self.stats.invalidations_sent += len(invalidate)
                wb = owner if owner is not None and owner != core else None
                actions = CoherenceActions(invalidate, wb)
            self._sharers[block] = bit
            self._owner[block] = core
        else:
            if owner is not None and owner != core:
                # Downgrade the modified copy; owner keeps a shared copy.
                self.stats.downgrades_sent += 1
                actions = CoherenceActions((), owner)
                del self._owner[block]
            self._sharers[block] = mask | bit
        if len(self._sharers) > self.stats.entries_peak:
            self.stats.entries_peak = len(self._sharers)
        return actions

    def on_l1_evict(self, core: int, block: int, dirty: bool) -> None:
        """Core evicted ``block`` from its L1 (writeback if dirty; clean
        evictions are silent in Table I but we correct presence eagerly
        when the caller does tell us)."""
        mask = self._sharers.get(block, 0)
        mask &= ~(1 << core)
        if mask:
            self._sharers[block] = mask
        else:
            self._sharers.pop(block, None)
        if self._owner.get(block) == core:
            del self._owner[block]

    def drop_block(self, block: int) -> list[int]:
        """Remove all tracking for ``block`` (LLC eviction back-invalidation
        or flush); returns cores whose L1s must be invalidated."""
        mask = self._sharers.pop(block, 0)
        self._owner.pop(block, None)
        cores = [c for c in range(self.num_cores) if mask >> c & 1]
        self.stats.invalidations_sent += len(cores)
        return cores
