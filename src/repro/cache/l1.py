"""Private per-core L1 data cache.

A thin wrapper over :class:`~repro.cache.bank.CacheBank` that remembers its
core and exposes the flush operation used by ``tdnuca_flush`` with
``cache_level = L1``.
"""

from __future__ import annotations

from repro.cache.bank import AccessResult, CacheBank

__all__ = ["L1Cache"]


class L1Cache(CacheBank):
    """L1D of one core (32 KB, 8-way, 64 B lines, 2-cycle in Table I)."""

    def __init__(
        self,
        core: int,
        size_bytes: int,
        assoc: int,
        block_bytes: int,
        replacement: str = "plru",
    ) -> None:
        super().__init__(size_bytes, assoc, block_bytes, replacement, f"l1.{core}")
        self.core = core

    def read(self, block: int) -> AccessResult:
        return self.access(block, write=False)

    def write(self, block: int) -> AccessResult:
        return self.access(block, write=True)
