"""Banked NUCA last-level cache.

One :class:`~repro.cache.bank.CacheBank` per tile (paper: 2 MB/core,
16-way, inclusive).  Which bank serves a given access is decided *outside*
this class by the active NUCA policy (S-NUCA interleaving, R-NUCA
classification, or TD-NUCA's RRT); the LLC itself only owns per-bank state
and aggregate statistics.

Replication is naturally expressed here: the same physical block may be
resident in several banks at once (TD-NUCA cluster replicas, R-NUCA
rotational-interleaving replicas).  Coherence for replicas is enforced by
the runtime/OS flush operations, mirroring the paper.
"""

from __future__ import annotations

from repro.cache.bank import AccessResult, BankStats, CacheBank

__all__ = ["NucaLLC"]


class NucaLLC:
    """Array of per-tile LLC banks."""

    def __init__(
        self,
        num_banks: int,
        bank_bytes: int,
        assoc: int,
        block_bytes: int,
        replacement: str = "plru",
    ) -> None:
        if num_banks <= 0:
            raise ValueError("need at least one bank")
        self.block_bytes = block_bytes
        self.banks = [
            CacheBank(bank_bytes, assoc, block_bytes, replacement, f"llc.{b}")
            for b in range(num_banks)
        ]
        self._dead: set[int] = set()

    @property
    def num_banks(self) -> int:
        return len(self.banks)

    @property
    def dead_banks(self) -> frozenset[int]:
        """Banks disabled by fault injection (empty and unreachable)."""
        return frozenset(self._dead)

    def kill_bank(self, bank: int) -> None:
        """Fault injection: drop the bank's contents and mark it dead.

        The caller (the machine) is responsible for the coherence fallout —
        back-invalidating orphaned L1 lines and remapping the policy; after
        this call any demand access reaching the bank is a simulator bug and
        raises.
        """
        if not 0 <= bank < len(self.banks):
            raise ValueError(f"bank {bank} out of range")
        if bank in self._dead:
            raise ValueError(f"bank {bank} is already dead")
        if len(self._dead) + 1 >= len(self.banks):
            raise ValueError("cannot disable the last alive LLC bank")
        self.banks[bank].clear()
        self._dead.add(bank)

    def access(self, bank: int, block: int, write: bool) -> AccessResult:
        """Demand access to ``block`` in ``bank``."""
        if self._dead and bank in self._dead:
            raise RuntimeError(
                f"access routed to dead LLC bank {bank}; policy remap failed"
            )
        return self.banks[bank].access(block, write)

    def contains(self, bank: int, block: int) -> bool:
        return self.banks[bank].contains(block)

    def banks_holding(self, block: int) -> list[int]:
        """All banks where ``block`` is currently resident (replicas)."""
        return [i for i, b in enumerate(self.banks) if b.contains(block)]

    def any_bank_holds(self, block: int) -> bool:
        """Whether any bank holds ``block`` — the inclusion check on the
        eviction path; stops at the first replica instead of building the
        full :meth:`banks_holding` list."""
        for b in self.banks:
            if block in b._map[block & b._set_mask]:
                return True
        return False

    def invalidate_everywhere(self, block: int) -> tuple[int, int]:
        """Remove ``block`` from every bank; returns (copies, dirty_copies)."""
        copies = dirty = 0
        for b in self.banks:
            present, was_dirty = b.invalidate(block)
            if present:
                copies += 1
                if was_dirty:
                    dirty += 1
        return copies, dirty

    def flush_blocks(self, bank: int, blocks) -> tuple[int, int]:
        """Flush ``blocks`` from one bank; returns (flushed, dirty)."""
        return self.banks[bank].flush_blocks(blocks)

    def aggregate_stats(self) -> BankStats:
        total = BankStats()
        for b in self.banks:
            total.merge(b.stats)
        return total

    @property
    def occupancy(self) -> int:
        return sum(b.occupancy for b in self.banks)

    def clear(self) -> None:
        for b in self.banks:
            b.clear()

    # --- checkpoint/restore ---

    def state_dict(self) -> dict:
        return {
            "banks": [b.state_dict() for b in self.banks],
            "dead": sorted(self._dead),
        }

    def load_state_dict(self, state: dict) -> None:
        banks = state["banks"]
        if len(banks) != len(self.banks):
            raise ValueError(
                f"snapshot has {len(banks)} LLC banks, machine has "
                f"{len(self.banks)}"
            )
        for bank, bstate in zip(self.banks, banks):
            bank.load_state_dict(bstate)
        self._dead = {int(b) for b in state["dead"]}
