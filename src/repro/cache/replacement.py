"""Replacement policies for set-associative caches.

Two per-set policies are provided:

* :class:`TreePLRUState` — the tree pseudo-LRU used by the paper's L1 and
  LLC (Table I).  The tree is packed into a single integer of
  ``assoc - 1`` bits; node ``i`` has children ``2i+1`` / ``2i+2`` and a set
  bit means "the LRU side is the right subtree".
* :class:`LRUState` — true LRU, used in tests as a reference and available
  for ablation.

Both expose the same three operations on way indices: ``touch`` (on hit or
fill), ``victim`` (choose the way to evict) and ``reset``.
"""

from __future__ import annotations

__all__ = ["TreePLRUState", "LRUState", "make_replacement"]


def _check_assoc(assoc: int) -> None:
    if assoc <= 0 or assoc & (assoc - 1):
        raise ValueError("associativity must be a positive power of two")


class TreePLRUState:
    """Tree pseudo-LRU over ``assoc`` ways (power of two)."""

    __slots__ = ("assoc", "_levels", "_bits")

    def __init__(self, assoc: int) -> None:
        _check_assoc(assoc)
        self.assoc = assoc
        self._levels = assoc.bit_length() - 1
        self._bits = 0

    def touch(self, way: int) -> None:
        """Mark ``way`` most-recently used: point every tree node on its
        path *away* from it."""
        node = 0
        half = self.assoc >> 1
        lo = 0
        for _ in range(self._levels):
            if way < lo + half:
                self._bits |= 1 << node  # LRU side is right
                node = 2 * node + 1
            else:
                self._bits &= ~(1 << node)  # LRU side is left
                node = 2 * node + 2
                lo += half
            half >>= 1

    def victim(self) -> int:
        """Way index the tree currently designates least-recently used."""
        node = 0
        way = 0
        half = self.assoc >> 1
        for _ in range(self._levels):
            if self._bits >> node & 1:  # go right
                node = 2 * node + 2
                way += half
            else:
                node = 2 * node + 1
            half >>= 1
        return way

    def reset(self) -> None:
        self._bits = 0


class LRUState:
    """Exact LRU over ``assoc`` ways (reference implementation)."""

    __slots__ = ("assoc", "_order")

    def __init__(self, assoc: int) -> None:
        _check_assoc(assoc)
        self.assoc = assoc
        self._order: list[int] = list(range(assoc))  # front = LRU

    def touch(self, way: int) -> None:
        if not 0 <= way < self.assoc:
            raise ValueError("way out of range")
        self._order.remove(way)
        self._order.append(way)

    def victim(self) -> int:
        return self._order[0]

    def reset(self) -> None:
        self._order = list(range(self.assoc))


def make_replacement(kind: str, assoc: int):
    """Factory: ``"plru"`` or ``"lru"``."""
    if kind == "plru":
        return TreePLRUState(assoc)
    if kind == "lru":
        return LRUState(assoc)
    raise ValueError(f"unknown replacement policy {kind!r}")
