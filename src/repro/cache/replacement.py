"""Replacement policies for set-associative caches.

Two per-set policies are provided:

* :class:`TreePLRUState` — the tree pseudo-LRU used by the paper's L1 and
  LLC (Table I).  The tree is packed into a single integer of
  ``assoc - 1`` bits; node ``i`` has children ``2i+1`` / ``2i+2`` and a set
  bit means "the LRU side is the right subtree".
* :class:`LRUState` — true LRU, used in tests as a reference and available
  for ablation.

Both expose the same three operations on way indices: ``touch`` (on hit or
fill), ``victim`` (choose the way to evict) and ``reset``.
"""

from __future__ import annotations

__all__ = ["TreePLRUState", "LRUState", "make_replacement"]


def _check_assoc(assoc: int) -> None:
    if assoc <= 0 or assoc & (assoc - 1):
        raise ValueError("associativity must be a positive power of two")


def _touch_masks(assoc: int, way: int) -> tuple[int, int]:
    """(or_mask, and_mask) equivalent to walking ``way``'s tree path.

    The node sequence and directions a ``touch`` takes depend only on the
    way index, so the whole walk collapses to one OR (bits set toward the
    right subtree) and one AND (bits cleared toward the left subtree).
    """
    or_mask = 0
    and_mask = -1  # all ones
    node = 0
    half = assoc >> 1
    lo = 0
    levels = assoc.bit_length() - 1
    for _ in range(levels):
        if way < lo + half:
            or_mask |= 1 << node  # LRU side is right
            node = 2 * node + 1
        else:
            and_mask &= ~(1 << node)  # LRU side is left
            node = 2 * node + 2
            lo += half
        half >>= 1
    return or_mask, and_mask


def _victim_for_bits(assoc: int, bits: int) -> int:
    """Reference tree walk: LRU way designated by ``bits``."""
    node = 0
    way = 0
    half = assoc >> 1
    levels = assoc.bit_length() - 1
    for _ in range(levels):
        if bits >> node & 1:  # go right
            node = 2 * node + 2
            way += half
        else:
            node = 2 * node + 1
        half >>= 1
    return way


#: per-assoc (or_masks, and_masks, victim_table), built once and shared by
#: every set of every bank — the tables make touch/victim O(1) table hits
#: on the per-reference hot path.
_PLRU_TABLES: dict[int, tuple[list[int], list[int], list[int] | None]] = {}


#: largest associativity whose victim table (2^(assoc-1) entries) is
#: worth materializing; wider trees fall back to the explicit walk.
_VICTIM_TABLE_MAX_ASSOC = 16


def _plru_tables(assoc: int) -> tuple[list[int], list[int], list[int] | None]:
    tables = _PLRU_TABLES.get(assoc)
    if tables is None:
        masks = [_touch_masks(assoc, way) for way in range(assoc)]
        or_masks = [m[0] for m in masks]
        and_masks = [m[1] for m in masks]
        victim_table = None
        if assoc <= _VICTIM_TABLE_MAX_ASSOC:
            # Inline walk (same as _victim_for_bits): building the 2^(a-1)
            # entries must not cost 2^(a-1) profiled function calls.
            levels = assoc.bit_length() - 1
            victim_table = []
            append = victim_table.append
            for bits in range(1 << max(0, assoc - 1)):
                node = 0
                way = 0
                half = assoc >> 1
                for _ in range(levels):
                    if bits >> node & 1:
                        node = 2 * node + 2
                        way += half
                    else:
                        node = 2 * node + 1
                    half >>= 1
                append(way)
        tables = (or_masks, and_masks, victim_table)
        _PLRU_TABLES[assoc] = tables
    return tables


class TreePLRUState:
    """Tree pseudo-LRU over ``assoc`` ways (power of two).

    The tree is packed into ``assoc - 1`` bits, but the walks are
    precomputed: ``touch`` applies a per-way OR/AND mask pair and
    ``victim`` is a direct table lookup over the packed bits.  Both are
    bit-for-bit equivalent to the explicit tree walk (see
    ``tests/cache/test_replacement.py``).
    """

    __slots__ = ("assoc", "_bits", "_or", "_and", "_victim")

    def __init__(self, assoc: int) -> None:
        _check_assoc(assoc)
        self.assoc = assoc
        self._or, self._and, self._victim = _plru_tables(assoc)
        self._bits = 0

    def touch(self, way: int) -> None:
        """Mark ``way`` most-recently used: point every tree node on its
        path *away* from it."""
        self._bits = (self._bits | self._or[way]) & self._and[way]

    def victim(self) -> int:
        """Way index the tree currently designates least-recently used."""
        table = self._victim
        if table is not None:
            return table[self._bits]
        return _victim_for_bits(self.assoc, self._bits)

    def reset(self) -> None:
        self._bits = 0

    def state_dict(self) -> int:
        return self._bits

    def load_state_dict(self, state: int) -> None:
        self._bits = int(state)


class LRUState:
    """Exact LRU over ``assoc`` ways (reference implementation)."""

    __slots__ = ("assoc", "_order")

    def __init__(self, assoc: int) -> None:
        _check_assoc(assoc)
        self.assoc = assoc
        self._order: list[int] = list(range(assoc))  # front = LRU

    def touch(self, way: int) -> None:
        if not 0 <= way < self.assoc:
            raise ValueError("way out of range")
        self._order.remove(way)
        self._order.append(way)

    def victim(self) -> int:
        return self._order[0]

    def reset(self) -> None:
        self._order = list(range(self.assoc))

    def state_dict(self) -> list[int]:
        return list(self._order)

    def load_state_dict(self, state: list[int]) -> None:
        if sorted(state) != list(range(self.assoc)):
            raise ValueError("LRU order must be a permutation of the ways")
        self._order = [int(w) for w in state]


def make_replacement(kind: str, assoc: int):
    """Factory: ``"plru"`` or ``"lru"``."""
    if kind == "plru":
        return TreePLRUState(assoc)
    if kind == "lru":
        return LRUState(assoc)
    raise ValueError(f"unknown replacement policy {kind!r}")
