"""Command-line interface.

    python -m repro list                      # benchmarks and policies
    python -m repro config [--scale N]        # print the machine (Table I)
    python -m repro run lu tdnuca [...]       # one experiment, full stats
    python -m repro run stress-8x8            # run a curated scenario
    python -m repro run my-scenario.yaml      # ... or a scenario file
    python -m repro scenario list             # the curated library
    python -m repro scenario validate *.yaml  # schema-check scenario files
    python -m repro trace lu tdnuca --out t.json  # traced run + heatmaps
    python -m repro figures [...]             # the paper's figures 3, 8-14
    python -m repro sweep --out results.json  # archive a suite as JSON
    python -m repro sweep --resume DIR        # finish an interrupted sweep
    python -m repro serve --port 8642         # simulation-as-a-service
    python -m repro submit lu tdnuca          # run via the server (cached)
    python -m repro submit gridlock-16x16     # submit a scenario

Scale is given as ``--scale N`` meaning capacities at 1/N of Table I
(default 64, the calibrated experiment scale); ``--mesh WxH`` /
``--cluster WxH`` scale the machine out (8x8 and 16x16 meshes pick their
calibrated latency tables).  Every simulation command is a thin shell
over :class:`repro.api.Session`, and every way of describing a run —
flags, scenario file, library name, service submission — compiles
through :class:`repro.scenario.Scenario`, so fingerprints agree.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.api import Session, run_scenario
from repro.experiments import figures
from repro.obs.observer import DEFAULT_SAMPLE_EVERY
from repro.scenario import ScenarioError, load_scenario, scenario_names
from repro.scenario.model import MachineSpec, Scenario, _parse_geometry
from repro.sim.machine import POLICIES
from repro.stats.report import fault_report_rows, format_table
from repro.workloads.registry import get_workload, workload_names

__all__ = ["main", "build_parser"]

FIGURE_BUILDERS = {
    "fig3": figures.fig3_classification,
    "fig8": figures.fig8_speedup,
    "fig9": figures.fig9_llc_accesses,
    "fig10": figures.fig10_hit_ratio,
    "fig11": figures.fig11_nuca_distance,
    "fig12": figures.fig12_data_movement,
    "fig13": figures.fig13_llc_energy,
    "fig14": figures.fig14_noc_energy,
    "fig15": figures.fig15_bypass_only,
}


def build_parser() -> argparse.ArgumentParser:
    import repro

    parser = argparse.ArgumentParser(
        prog="repro",
        description="TD-NUCA (SC'22) reproduction: runtime-driven NUCA management.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {repro.__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and policies")

    p_config = sub.add_parser("config", help="print the machine configuration")
    _add_scale(p_config)

    p_run = sub.add_parser(
        "run",
        help="run one (workload, policy) experiment, or a scenario by "
        "library name / file path",
    )
    p_run.add_argument(
        "workload", type=_workload_or_scenario,
        help="benchmark name, curated scenario name, or scenario file",
    )
    p_run.add_argument(
        "policy", type=_policy_name, nargs="?", default=None,
        help="NUCA policy (omit when running a scenario)",
    )
    _add_scale(p_run)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--json", action="store_true", help="emit JSON stats")
    p_run.add_argument(
        "--faults",
        default="",
        metavar="SPEC",
        help="fault schedule, e.g. "
        "'bank:5@task=100,link:3-7@task=250,dram:transient:p=1e-4'",
    )
    p_run.add_argument(
        "--strict",
        action="store_true",
        help="check machine invariants after every task (graceful-"
        "degradation proof; aborts on the first violation)",
    )
    p_run.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record an event trace and write Chrome/Perfetto JSON to FILE",
    )
    p_run.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="write a resumable snapshot every N completed tasks",
    )
    p_run.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="checkpoint and stop (exit 75) after this much wall time",
    )
    p_run.add_argument(
        "--checkpoint-to", default=None, metavar="FILE",
        help="snapshot path (default <workload>__<policy>__s<seed>.snap); "
        "also makes SIGTERM/SIGINT checkpoint-then-exit-75",
    )
    p_run.add_argument(
        "--resume-from", default=None, metavar="FILE",
        help="restore the run from a snapshot and continue byte-identically",
    )

    p_trace = sub.add_parser(
        "trace",
        help="run one experiment with tracing on; write a Chrome/Perfetto "
        "trace and print bank/link heatmaps",
    )
    p_trace.add_argument("workload", choices=workload_names())
    p_trace.add_argument("policy", choices=list(POLICIES))
    _add_scale(p_trace)
    p_trace.add_argument(
        "--out", required=True, metavar="FILE",
        help="Chrome/Perfetto trace JSON path (open at ui.perfetto.dev)",
    )
    p_trace.add_argument(
        "--events", default=None, metavar="FILE",
        help="also write the flat JSONL event log to FILE",
    )
    p_trace.add_argument(
        "--sample-every", type=int, default=DEFAULT_SAMPLE_EVERY, metavar="N",
        help="timeline sampling period in completed tasks (default "
        "%(default)s)",
    )
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument(
        "--faults", default="", metavar="SPEC",
        help="fault schedule (see 'repro run --faults')",
    )
    p_trace.add_argument(
        "--strict", action="store_true",
        help="check machine invariants after every task",
    )

    p_fig = sub.add_parser("figures", help="run the suite and print figures")
    _add_scale(p_fig)
    p_fig.add_argument(
        "--only",
        choices=sorted(FIGURE_BUILDERS),
        nargs="*",
        help="subset of figures (default: all)",
    )
    p_fig.add_argument(
        "--workloads", nargs="*", choices=workload_names(), help="subset"
    )
    p_fig.add_argument("--chart", action="store_true", help="ASCII bar charts")
    p_fig.add_argument("--seed", type=int, default=0)

    p_sweep = sub.add_parser("sweep", help="run the suite, write JSON results")
    _add_scale(p_sweep)
    p_sweep.add_argument(
        "--out", default=None, help="output JSON path (required unless --resume)"
    )
    p_sweep.add_argument(
        "--policies", nargs="*", choices=list(POLICIES), default=None
    )
    p_sweep.add_argument(
        "--workloads", nargs="*", choices=workload_names(), default=None,
        help="subset of benchmarks (default: all)",
    )
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument(
        "--faults", default="", metavar="SPEC",
        help="fault schedule applied to every run (see 'repro run --faults')",
    )
    p_sweep.add_argument(
        "--strict", action="store_true",
        help="check machine invariants after every task in every run",
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parallel worker processes (N>1 isolates each run; default 1)",
    )
    p_sweep.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock limit (implies process isolation)",
    )
    p_sweep.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="retries per job for transient failures (default 1)",
    )
    p_sweep.add_argument(
        "--run-dir", default=None, metavar="DIR",
        help="checkpoint directory (default: <out>.d) — one JSON shard per "
        "finished job plus a manifest, enabling --resume",
    )
    p_sweep.add_argument(
        "--resume", default=None, metavar="DIR",
        help="resume the sweep checkpointed in DIR: skip finished shards, "
        "re-run only failed/missing jobs, then merge",
    )
    p_sweep.add_argument(
        "--trace", default=None, metavar="DIR",
        help="trace every job and write one Chrome trace JSON per "
        "(workload, policy) into DIR",
    )
    p_sweep.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="periodic per-job snapshots every N completed tasks",
    )
    p_sweep.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="sweep wall-clock budget: in-flight jobs checkpoint and the "
        "sweep exits 75, resumable with --resume",
    )

    p_cmp = sub.add_parser(
        "compare", help="diff two sweep JSON files (regression check)"
    )
    p_cmp.add_argument("old", help="baseline sweep JSON")
    p_cmp.add_argument("new", help="candidate sweep JSON")
    p_cmp.add_argument("--tolerance", type=float, default=0.02)

    p_serve = sub.add_parser(
        "serve", help="run the simulation job server (asyncio, stdlib-only)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8642,
        help="listening port; 0 picks a free one (default %(default)s)",
    )
    p_serve.add_argument(
        "--cache-dir", default="service-cache", metavar="DIR",
        help="content-addressed result cache (default %(default)s)",
    )
    p_serve.add_argument(
        "--spool-dir", default="service-spool", metavar="DIR",
        help="checkpoint spool for preempted/evicted jobs "
        "(default %(default)s)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent simulation workers (default %(default)s)",
    )
    p_serve.add_argument(
        "--max-pending", type=int, default=32, metavar="N",
        help="queue depth at which the breaker sheds load with 503 "
        "(default %(default)s)",
    )
    p_serve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget (jobs past it fail with a typed "
        "timeout; their checkpoint survives for resubmission)",
    )
    p_serve.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="retries per job for transient failures (default %(default)s)",
    )
    p_serve.add_argument(
        "--evict-after", type=float, default=None, metavar="SECONDS",
        help="time-slice: preempt a running job at its next task boundary "
        "after this long and requeue it behind waiting work",
    )
    p_serve.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="also snapshot running jobs every N completed tasks, so even "
        "kill -9 resumes from the last snapshot",
    )
    p_serve.add_argument(
        "--drain-grace", type=float, default=10.0, metavar="SECONDS",
        help="SIGTERM: wait this long for in-flight jobs to checkpoint "
        "before exiting 75 (default %(default)s)",
    )
    p_serve.add_argument(
        "--worker-mem-mb", type=int, default=None, metavar="MB",
        help="RLIMIT_AS for each worker process; a leaking simulation "
        "gets MemoryError instead of OOM-killing the host",
    )
    p_serve.add_argument(
        "--lease-timeout", type=float, default=30.0, metavar="SECONDS",
        help="kill a worker whose heartbeat goes silent this long and "
        "requeue its job (default %(default)s)",
    )
    p_serve.add_argument(
        "--poison-after", type=int, default=3, metavar="N",
        help="quarantine a job after it kills N worker processes "
        "(default %(default)s)",
    )
    p_serve.add_argument(
        "--fleet-dir", default=None, metavar="DIR",
        help="join the fleet coordinated through this shared directory: "
        "N servers over one fleet dir act as one logical service "
        "(shared result store, lease-fenced job ownership, work "
        "stealing, reclamation of dead hosts' jobs)",
    )
    p_serve.add_argument(
        "--host-id", default=None, metavar="ID",
        help="this host's fleet identity (default <hostname>-<pid>)",
    )
    p_serve.add_argument(
        "--host-lease-timeout", type=float, default=15.0, metavar="SECONDS",
        help="peers treat this host as suspect after this much observed "
        "heartbeat silence, and reclaim its jobs after twice it "
        "(default %(default)s)",
    )

    p_fleet = sub.add_parser(
        "fleet", help="inspect a fleet directory from the filesystem alone"
    )
    fleet_sub = p_fleet.add_subparsers(dest="fleet_cmd", required=True)
    p_fleet_status = fleet_sub.add_parser(
        "status",
        help="print the host table, claims, queue shards and store stats "
        "— works on a dead fleet, no server needed",
    )
    p_fleet_status.add_argument("fleet_dir", metavar="DIR")
    p_fleet_status.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    p_scen = sub.add_parser(
        "scenario", help="list, show and validate declarative scenarios"
    )
    scen_sub = p_scen.add_subparsers(dest="scenario_cmd", required=True)
    scen_sub.add_parser("list", help="list the curated scenario library")
    p_scen_show = scen_sub.add_parser(
        "show", help="print a scenario (resolved) and its compiled machine"
    )
    p_scen_show.add_argument("name", help="library name or file path")
    p_scen_val = scen_sub.add_parser(
        "validate", help="schema-check scenario files; exit 1 on any error"
    )
    p_scen_val.add_argument("files", nargs="+", metavar="FILE",
                            help="scenario files (or library names)")

    p_sub = sub.add_parser(
        "submit",
        help="submit a run (or a scenario) to a 'repro serve' server and wait",
    )
    p_sub.add_argument(
        "workload", type=_workload_or_scenario,
        help="benchmark name, curated scenario name, or scenario file",
    )
    p_sub.add_argument(
        "policy", type=_policy_name, nargs="?", default=None,
        help="NUCA policy (omit when submitting a scenario)",
    )
    _add_scale(p_sub)
    p_sub.add_argument("--seed", type=int, default=0)
    p_sub.add_argument(
        "--faults", default="", metavar="SPEC",
        help="fault schedule (see 'repro run --faults')",
    )
    p_sub.add_argument("--strict", action="store_true")
    p_sub.add_argument("--host", default="127.0.0.1")
    p_sub.add_argument("--port", type=int, default=8642)
    p_sub.add_argument("--json", action="store_true", help="emit JSON stats")
    p_sub.add_argument(
        "--follow", action="store_true",
        help="stream the job's progress events (NDJSON) to stderr",
    )
    p_sub.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and return without waiting for the result",
    )
    p_sub.add_argument(
        "--wait-timeout", type=float, default=600.0, metavar="SECONDS",
        help="give up waiting after this long (default %(default)s)",
    )

    p_tdg = sub.add_parser(
        "tdg", help="export a workload's task dependency graph as DOT"
    )
    p_tdg.add_argument("workload", choices=workload_names(include_extra=True))
    _add_scale(p_tdg)
    p_tdg.add_argument("--out", required=True, help="output .dot path")
    p_tdg.add_argument("--max-tasks", type=int, default=200)
    return parser


def _workload_or_scenario(value: str) -> str:
    """Argparse type for positionals accepting a workload OR a scenario.

    Unknown names fail at parse time (SystemExit 2) with both registries
    listed — a typo never reaches the simulation layer.
    """
    if value in workload_names(include_extra=True):
        return value
    if value.endswith((".yaml", ".yml", ".json")) or "/" in value:
        return value  # scenario file; existence is checked by the command
    known = scenario_names()
    if value in known:
        return value
    raise argparse.ArgumentTypeError(
        f"{value!r} is neither a workload ({', '.join(workload_names())}) "
        f"nor a scenario file/name"
        + (f" ({', '.join(known)})" if known else "")
    )


def _policy_name(value: str) -> str:
    if value in POLICIES:
        return value
    raise argparse.ArgumentTypeError(
        f"unknown policy {value!r}; valid policies: {', '.join(POLICIES)}"
    )


def _geometry(value: str):
    try:
        return _parse_geometry(value, "geometry")
    except ScenarioError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _add_scale(parser: argparse.ArgumentParser) -> None:
    from repro.sim.kernels import KERNEL_NAMES

    parser.add_argument(
        "--scale",
        type=int,
        default=64,
        metavar="N",
        help="capacities at 1/N of Table I (default 64)",
    )
    parser.add_argument(
        "--kernel",
        choices=list(KERNEL_NAMES),
        default="auto",
        help="simulation backend (results are byte-identical across "
        "kernels; REPRO_KERNEL overrides; default %(default)s)",
    )
    parser.add_argument(
        "--mesh", type=_geometry, default=None, metavar="WxH",
        help="mesh geometry, e.g. 8x8 or 16x16 (default 4x4; larger "
        "meshes use their calibrated latency tables)",
    )
    parser.add_argument(
        "--cluster", type=_geometry, default=None, metavar="WxH",
        help="replication-cluster geometry (default 2x2)",
    )


def _machine_spec(args) -> MachineSpec:
    mesh = getattr(args, "mesh", None) or (4, 4)
    cluster = getattr(args, "cluster", None) or (2, 2)
    return MachineSpec(
        scale=args.scale,
        mesh_width=mesh[0],
        mesh_height=mesh[1],
        cluster_width=cluster[0],
        cluster_height=cluster[1],
    )


def _cfg(args):
    # Flags compile through the same Scenario path as YAML files and
    # service specs — one canonical run description, identical sha256.
    scenario = Scenario(
        name="cli",
        machine=_machine_spec(args),
        kernel=getattr(args, "kernel", "auto"),
    )
    return scenario.to_config()


def cmd_list(args) -> int:
    print("benchmarks (Table II):")
    for name in workload_names():
        paper = get_workload(name).paper
        print(f"  {name:10s} {paper.problem}")
    print("extra workloads:")
    for name in workload_names(include_extra=True):
        if name not in workload_names():
            print(f"  {name:10s} {get_workload(name).paper.problem}")
    print("\npolicies:")
    for pol in POLICIES:
        print(f"  {pol}")
    return 0


def cmd_config(args) -> int:
    rows = figures.table1_rows(_cfg(args))
    print(format_table(["parameter", "value"], rows, "machine configuration"))
    return 0


def _run_result_rows(result) -> list[list[str]]:
    m = result.machine
    rows = [
        ["makespan (cycles)", f"{result.makespan:,}"],
        ["tasks executed", f"{result.execution.tasks_executed:,}"],
        ["LLC accesses", f"{m.llc_accesses:,}"],
        ["LLC hit ratio", f"{m.llc_hit_ratio:.2%}"],
        ["NUCA distance (hops)", f"{m.mean_nuca_distance:.2f}"],
        ["NoC router-bytes", f"{m.router_bytes:,}"],
        ["DRAM reads / writes", f"{m.dram_reads:,} / {m.dram_writes:,}"],
        ["LLC dynamic energy (pJ)", f"{m.energy.llc:,.0f}"],
        ["NoC dynamic energy (pJ)", f"{m.energy.noc:,.0f}"],
    ]
    if m.faults is not None:
        rows += fault_report_rows(m.faults)
    if "invariants" in m.extra:
        inv = m.extra["invariants"]
        rows.append(
            [
                "invariant checks (violations)",
                f"{inv['checks_run']:,} (+{inv['full_sweeps']} full sweeps, "
                f"{inv['violations']} violations)",
            ]
        )
    if result.runtime is not None:
        rows += [
            ["bypass / local / replicate",
             f"{result.runtime.bypass_decisions} / "
             f"{result.runtime.local_decisions} / "
             f"{result.runtime.replicate_decisions}"],
            ["RRT occupancy mean / max",
             f"{result.runtime.mean_rrt_occupancy:.1f} / "
             f"{result.runtime.occupancy_max}"],
        ]
    if "context_switches" in result.extra:
        rows.append(
            ["RRT context switches", f"{result.extra['context_switches']:,}"]
        )
    return rows


def _cmd_run_scenario(args) -> int:
    """``repro run <scenario>``: execute a scenario file or library name."""
    import dataclasses
    import json

    from repro.stats.report import sweep_summary_rows

    if args.policy is not None:
        print(
            "error: a scenario carries its own policy; "
            "'repro run SCENARIO' takes no policy argument",
            file=sys.stderr,
        )
        return 2
    # A scenario is self-contained: machine geometry, faults, seed and
    # trace/checkpoint options all come from the document.  Flags that
    # would silently lose to the scenario are rejected, not ignored —
    # --kernel (an execution detail, never part of the fingerprint) and
    # --json are the only overrides.
    overridden = [
        flag
        for flag, active in (
            ("--scale", args.scale != 64),
            ("--mesh", getattr(args, "mesh", None) is not None),
            ("--cluster", getattr(args, "cluster", None) is not None),
            ("--seed", args.seed != 0),
            ("--faults", bool(args.faults)),
            ("--strict", args.strict),
            ("--trace", args.trace is not None),
            ("--checkpoint-every", bool(args.checkpoint_every)),
            ("--deadline", args.deadline is not None),
            ("--checkpoint-to", args.checkpoint_to is not None),
            ("--resume-from", args.resume_from is not None),
        )
        if active
    ]
    if overridden:
        print(
            f"error: {', '.join(overridden)} cannot override a scenario; "
            "edit the scenario document instead "
            f"(see 'repro scenario show {args.workload}')",
            file=sys.stderr,
        )
        return 2
    try:
        scenario = load_scenario(args.workload)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    kernel = getattr(args, "kernel", "auto")
    if kernel != "auto":
        scenario = dataclasses.replace(scenario, kernel=kernel)
    t0 = time.time()
    outcome = run_scenario(scenario)
    elapsed = time.time() - t0
    if scenario.kind == "sweep":
        print(format_table(["metric", "value"], sweep_summary_rows(outcome),
                           f"scenario {scenario.name} (sweep)"))
        return 1 if outcome.failures else 0
    if args.json:
        print(json.dumps(outcome.to_dict(), indent=2, sort_keys=True))
        return 0
    print(
        format_table(
            ["metric", "value"], _run_result_rows(outcome),
            f"scenario {scenario.name}: {outcome.workload} under "
            f"{outcome.policy}",
        )
    )
    if scenario.trace.out and outcome.traced:
        print(f"\nwrote {scenario.trace.out} — open at https://ui.perfetto.dev")
    print(f"\nsimulated in {elapsed:.1f}s wall time")
    return 0


def cmd_run(args) -> int:
    import signal

    from repro.snapshot import Checkpointer, EXIT_PREEMPTED, PreemptedError

    if args.workload not in workload_names(include_extra=True):
        return _cmd_run_scenario(args)
    if args.policy is None:
        print(
            f"error: 'repro run {args.workload}' needs a policy "
            f"({', '.join(POLICIES)})",
            file=sys.stderr,
        )
        return 2

    checkpointing = bool(
        args.checkpoint_every or args.deadline is not None
        or args.checkpoint_to or args.resume_from
    )
    ck = None
    old_handlers = {}
    if checkpointing:
        snap_path = args.checkpoint_to or args.resume_from or (
            f"{args.workload}__{args.policy}__s{args.seed}.snap"
        )
        deadline = (
            time.monotonic() + args.deadline
            if args.deadline is not None else None
        )
        ck = Checkpointer(
            snap_path, every=args.checkpoint_every, deadline=deadline
        )
        # SIGTERM/SIGINT mean "snapshot at the next task boundary, then
        # exit 75" — the watchdog contract a job scheduler relies on.
        try:
            for signum in (signal.SIGTERM, signal.SIGINT):
                old_handlers[signum] = signal.signal(
                    signum, lambda s, f: ck.request_preempt()
                )
        except ValueError:  # pragma: no cover - non-main-thread embedding
            pass

    session = Session(_cfg(args), seed=args.seed)
    t0 = time.time()
    try:
        result = session.run(
            args.workload,
            args.policy,
            trace=bool(args.trace),
            faults=args.faults,
            strict=args.strict,
            checkpoint=ck,
            resume_from=args.resume_from,
        )
    except PreemptedError as exc:
        print(
            f"preempted after {exc.tasks_completed} tasks; resume with:\n"
            f"  repro run {args.workload} {args.policy} --scale {args.scale} "
            f"--seed {args.seed} --resume-from {exc.path}",
            file=sys.stderr,
        )
        return EXIT_PREEMPTED
    finally:
        for signum, handler in old_handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, TypeError):  # pragma: no cover
                pass
    elapsed = time.time() - t0
    if args.trace:
        result.write_chrome_trace(args.trace)
    if args.json:
        import json

        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    print(
        format_table(
            ["metric", "value"], _run_result_rows(result),
            f"{args.workload} under {args.policy}",
        )
    )
    if args.trace:
        print(f"\nwrote {args.trace} — open at https://ui.perfetto.dev")
    print(f"\nsimulated in {elapsed:.1f}s wall time")
    return 0


def cmd_trace(args) -> int:
    from repro.obs.events import EventTrace

    session = Session(_cfg(args), seed=args.seed)
    t0 = time.time()
    result = session.run(
        args.workload,
        args.policy,
        trace=True,
        sample_every=args.sample_every,
        faults=args.faults,
        strict=args.strict,
    )
    elapsed = time.time() - t0
    result.write_chrome_trace(args.out)
    if args.events:
        result.write_event_log(args.events)
    sink = result.observer.sink
    recorded = sink.total if isinstance(sink, EventTrace) else len(result.events)
    dropped = sink.dropped if isinstance(sink, EventTrace) else 0
    rows = [
        ["makespan (cycles)", f"{result.makespan:,}"],
        ["tasks executed", f"{result.execution.tasks_executed:,}"],
        ["LLC hit ratio", f"{result.machine.llc_hit_ratio:.2%}"],
        ["events recorded", f"{recorded:,}"],
        ["events dropped (ring full)", f"{dropped:,}"],
        ["timeline samples", f"{result.timeline.num_samples:,}"],
    ]
    print(
        format_table(
            ["metric", "value"], rows,
            f"traced {args.workload} under {args.policy}",
        )
    )
    print()
    print(result.bank_heatmap())
    print()
    print(result.link_heatmap())
    print(f"\nwrote {args.out} — open at https://ui.perfetto.dev "
          "or chrome://tracing")
    if args.events:
        print(f"wrote {args.events} (JSONL event log)")
    print(f"simulated in {elapsed:.1f}s wall time")
    return 0


def cmd_figures(args) -> int:
    wanted = args.only or sorted(FIGURE_BUILDERS)
    policies = ["snuca", "rnuca", "tdnuca"]
    if "fig15" in wanted:
        policies.append("tdnuca-bypass-only")
    print(f"running the suite at scale 1/{args.scale} ...", file=sys.stderr)
    results = Session(_cfg(args), seed=args.seed).suite(
        workloads=args.workloads, policies=policies,
    )
    for key in wanted:
        fig = FIGURE_BUILDERS[key](results)
        print(fig.to_chart() if args.chart else fig.to_text())
        print()
    return 0


def cmd_sweep(args) -> int:
    from repro.experiments import harness
    from repro.experiments.serialize import sweep_to_json
    from repro.ioutils import atomic_write
    from repro.stats.report import sweep_summary_rows

    if args.resume:
        run_dir = args.resume
        manifest = harness.load_manifest(run_dir)
        req = manifest.get("request", {})
        scale = req.get("scale", args.scale)
        mesh = tuple(req.get("mesh") or (4, 4))
        cluster = tuple(req.get("cluster") or (2, 2))
        # Rebuild through Scenario so a resumed sweep compiles the exact
        # config (geometry, latency table, faults) the original one did.
        # The kernel is an execution strategy, not part of the sweep's
        # identity — the current invocation's choice applies on resume.
        cfg = Scenario(
            name="sweep-resume",
            machine=MachineSpec(
                scale=scale,
                mesh_width=mesh[0], mesh_height=mesh[1],
                cluster_width=cluster[0], cluster_height=cluster[1],
            ),
            faults=req.get("faults", ""),
            strict=bool(req.get("strict")),
            kernel=getattr(args, "kernel", "auto"),
        ).to_config()
        jobs = [harness.Job(wl, pol, seed) for wl, pol, seed in manifest["jobs"]]
        out = args.out or req.get("out")
        if not out:
            print("error: the manifest records no output path; pass --out")
            return 2
        seed = req.get("seed", 0)
        request = req
    else:
        if not args.out:
            print("error: --out is required unless resuming with --resume DIR")
            return 2
        cfg = Scenario(
            name="sweep",
            machine=_machine_spec(args),
            faults=args.faults,
            strict=args.strict,
            kernel=getattr(args, "kernel", "auto"),
        ).to_config()
        workloads = args.workloads or workload_names()
        policies = args.policies or ["snuca", "rnuca", "tdnuca"]
        jobs = [
            harness.Job(wl, pol, args.seed)
            for wl in workloads
            for pol in policies
        ]
        out = args.out
        run_dir = args.run_dir or out + ".d"
        seed = args.seed
        request = {
            "scale": args.scale,
            "workloads": workloads,
            "policies": policies,
            "seed": args.seed,
            "faults": args.faults,
            "strict": args.strict,
            "out": out,
        }
        if args.mesh:
            request["mesh"] = list(args.mesh)
        if args.cluster:
            request["cluster"] = list(args.cluster)

    total = len(jobs)
    progress = {"done": 0}

    def on_event(kind: str, job: harness.Job, detail: str) -> None:
        if kind in ("ok", "failed", "timeout", "skipped", "preempted",
                    "interrupted"):
            progress["done"] += 1
            print(
                f"[{progress['done']}/{total}] {kind:8s} {job.label}  {detail}",
                file=sys.stderr,
            )
        elif kind in ("retry", "resumed"):
            print(f"          {kind:8s} {job.label}  {detail}", file=sys.stderr)

    session = Session(cfg)
    outcome = session.sweep(
        plan=jobs,
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        run_dir=run_dir,
        resume=bool(args.resume),
        request=request,
        on_event=on_event,
        trace_dir=args.trace,
        checkpoint_every=args.checkpoint_every,
        deadline=args.deadline,
    )
    meta = {
        "config_sha256": harness.config_fingerprint(cfg),
        "seed": seed,
        "scale": request.get("scale"),
        "wall_time_s": round(outcome.wall_time, 3),
    }
    with atomic_write(out) as fh:
        fh.write(
            sweep_to_json(
                outcome.result_dicts(),
                [f.to_dict() for f in outcome.failures],
                meta,
            )
        )
    print(format_table(["metric", "value"], sweep_summary_rows(outcome),
                       "sweep summary"))
    print(f"wrote {outcome.ok} results to {out} (checkpoints in {run_dir})")
    if outcome.failures:
        print(f"{outcome.failed} job(s) failed — fix or re-run with "
              f"'repro sweep --resume {run_dir}'")
    if outcome.interrupted or outcome.preempted:
        from repro.snapshot import EXIT_PREEMPTED

        print(
            f"sweep preempted with {len(outcome.preempted)} job(s) "
            f"checkpointed — continue with 'repro sweep --resume {run_dir}'"
        )
        return EXIT_PREEMPTED
    return 1 if outcome.failures else 0


def cmd_compare(args) -> int:
    from repro.experiments.compare import compare_result_sets
    from repro.experiments.serialize import SchemaVersionError, load_sweep

    docs = {}
    for label, path in (("old", args.old), ("new", args.new)):
        with open(path) as fh:
            text = fh.read()
        try:
            docs[label] = load_sweep(text, path=path)
        except SchemaVersionError as exc:
            print(
                f"{path}: schema version mismatch — the file was written "
                f"under schema {exc.found!r}, this tool reads {exc.expected}"
            )
            return 2
        except ValueError as exc:
            print(f"{path}: {exc}")
            return 2
    for label in ("old", "new"):
        if docs[label].failures:
            print(
                f"note: the {label} sweep records "
                f"{len(docs[label].failures)} failed run(s)"
            )
    old, new = docs["old"].runs, docs["new"].runs
    deltas = compare_result_sets(old, new, tolerance=args.tolerance)
    if not deltas:
        print(f"no deviations beyond {args.tolerance:.1%} across {len(new)} runs")
        return 0
    for d in deltas:
        print(d)
    print(f"\n{len(deltas)} deviation(s) beyond {args.tolerance:.1%}")
    return 1


def cmd_serve(args) -> int:
    import asyncio
    from pathlib import Path

    from repro.service.server import ServiceServer

    spool_dir = args.spool_dir
    if args.fleet_dir is not None and spool_dir == "service-spool":
        # Fleet mode defaults the spool INTO the fleet dir: snapshots are
        # request_key-addressed, so a survivor resumes a dead peer's job
        # from the shared spool with zero extra plumbing.  An explicit
        # --spool-dir opts out (private snapshots, no cross-host resume).
        spool_dir = str(Path(args.fleet_dir) / "spool")
    server = ServiceServer(
        args.host,
        args.port,
        cache_dir=args.cache_dir,
        spool_dir=spool_dir,
        workers=args.workers,
        max_pending=args.max_pending,
        timeout=args.timeout,
        retries=args.retries,
        evict_after=args.evict_after,
        checkpoint_every=args.checkpoint_every,
        drain_grace=args.drain_grace,
        worker_mem_mb=args.worker_mem_mb,
        lease_timeout=args.lease_timeout,
        poison_after=args.poison_after,
        fleet_dir=args.fleet_dir,
        host_id=args.host_id,
        host_lease_timeout=args.host_lease_timeout,
    )

    async def run() -> int:
        await server.start()
        print(f"listening on {server.host}:{server.port}", flush=True)
        code = await server.serve_forever()
        stats = server.queue.stats()
        pool = stats.get("pool") or {}
        fleet_bits = ""
        if server.fleet is not None:
            fs = server.fleet.status()
            fleet_bits = (
                f" reclaims={fs['reclaims']} steals={fs['steals']} "
                f"fenced={fs['fenced_writes']} "
                f"adopted={stats.get('adopted', 0)}"
            )
        print(
            "drained: "
            f"completed={stats['completed']} failed={stats['failed']} "
            f"preempted={stats['preempted']} "
            f"worker_deaths={stats['worker_deaths']} "
            f"restarts={pool.get('restarts', 0)} "
            f"lease_expired={pool.get('lease_expired', 0)} "
            f"workers_alive={pool.get('alive', 0)} "
            f"concurrency={pool.get('concurrency', 0)} "
            f"poisoned={stats['poisoned']}"
            f"{fleet_bits}",
            flush=True,
        )
        return code

    return asyncio.run(run())


def cmd_fleet(args) -> int:
    import json

    from repro.service.fleet import fleet_status

    try:
        status = fleet_status(args.fleet_dir)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    print(f"fleet: {status['fleet_dir']}")
    hosts = status["hosts"]
    print(f"\nhosts ({len(hosts)}):")
    if hosts:
        print(
            f"  {'HOST':<28} {'PID':>7} {'ADDR':<21} {'SEQ':>6} "
            f"{'LEASE':>6} {'STAMPED':>9}"
        )
        for h in hosts:
            print(
                f"  {str(h['host_id']):<28} {str(h['pid'] or '?'):>7} "
                f"{str(h['addr'] or '-'):<21} {str(h['seq']):>6} "
                f"{str(h['lease_timeout'] or '-'):>6} "
                f"{h['stamped_age_s']:>8.1f}s"
            )
        print(
            "  (stamped ages are wall-clock diagnostics; live liveness "
            "uses heartbeat observation)"
        )
    claims = status["claims"]
    print(f"\nclaims in flight ({len(claims)}):")
    for c in claims:
        owner = c["owner"] or "(released)"
        print(
            f"  {c['key']}  {c['label']:<24} owner={owner} "
            f"epoch={c['epoch']} host_deaths={c['host_deaths']}"
        )
    queued = status["queued"]
    depth = sum(queued.values())
    print(f"\nqueued jobs ({depth}):")
    for host_name in sorted(queued):
        if queued[host_name]:
            print(f"  {host_name}: {queued[host_name]}")
    print(
        f"\nshared store: {status['results']} result(s), "
        f"{status['snapshots']} spool snapshot(s)"
    )
    if status["poison"]:
        print(f"poisoned keys ({len(status['poison'])}):")
        for key in status["poison"]:
            print(f"  {key}")
    return 0


def cmd_submit(args) -> int:
    import json
    import threading

    from repro.service.client import ServiceClient
    from repro.service.envelope import ServiceError
    from repro.snapshot import EXIT_PREEMPTED

    scenario = None
    if args.workload not in workload_names(include_extra=True):
        import dataclasses

        if args.policy is not None:
            print(
                "error: a scenario carries its own policy; "
                "'repro submit SCENARIO' takes no policy argument",
                file=sys.stderr,
            )
            return 2
        overridden = [
            flag
            for flag, active in (
                ("--scale", args.scale != 64),
                ("--mesh", getattr(args, "mesh", None) is not None),
                ("--cluster", getattr(args, "cluster", None) is not None),
                ("--seed", args.seed != 0),
                ("--faults", bool(args.faults)),
                ("--strict", args.strict),
            )
            if active
        ]
        if overridden:
            print(
                f"error: {', '.join(overridden)} cannot override a "
                "scenario; edit the scenario document instead "
                f"(see 'repro scenario show {args.workload}')",
                file=sys.stderr,
            )
            return 2
        try:
            scenario = load_scenario(args.workload)
        except ScenarioError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if scenario.kind == "multiprog":
            print(
                f"error: scenario {scenario.name!r} is multiprogrammed; "
                "the service caches per-(workload, policy) cells, so run "
                f"it locally: repro run {args.workload}",
                file=sys.stderr,
            )
            return 2
        kernel = getattr(args, "kernel", "auto")
        if kernel != "auto":
            scenario = dataclasses.replace(scenario, kernel=kernel)
    elif args.policy is None:
        print(
            f"error: 'repro submit {args.workload}' needs a policy "
            f"({', '.join(POLICIES)})",
            file=sys.stderr,
        )
        return 2

    client = ServiceClient(args.host, args.port)
    try:
        if scenario is not None:
            job = client.submit_scenario(scenario)
        else:
            job = client.submit_run(
                workload=args.workload,
                policy=args.policy,
                seed=args.seed,
                scale=args.scale,
                faults=args.faults,
                strict=args.strict,
                kernel=getattr(args, "kernel", "auto"),
            )
        if args.no_wait:
            print(job["id"])
            return 0
        follower = None
        if args.follow:
            def _follow() -> None:
                try:
                    for event in client.iter_events(job["id"]):
                        print(json.dumps(event, sort_keys=True),
                              file=sys.stderr, flush=True)
                except (ServiceError, OSError):  # server drained mid-stream
                    pass

            follower = threading.Thread(target=_follow, daemon=True)
            follower.start()
        final = client.wait(job["id"], timeout=args.wait_timeout)
        data = client.result(job["id"])
        if follower is not None:
            follower.join(timeout=5.0)
    except ServiceError as exc:
        print(f"error [{exc.type}]: {exc.message}", file=sys.stderr)
        return EXIT_PREEMPTED if exc.retryable else 1
    if args.json:
        print(json.dumps(data["result"], indent=2, sort_keys=True))
        return 0
    hit = "cache hit" if final.get("simulated", 0) == 0 else "simulated"
    label = (
        f"scenario {scenario.name}" if scenario is not None
        else f"{args.workload}/{args.policy}"
    )
    status = (
        f"{label}: {final['state']} ({hit}, {final['attempts']} attempt(s), "
        f"{final['evictions']} eviction(s))"
    )
    if "runs" in data["result"]:  # sweep: one line per finished cell
        print(f"{status} — {len(data['result']['runs'])} cell(s)")
        for cell, run in sorted(data["result"]["runs"].items()):
            print(f"  {cell}: makespan {run['makespan_cycles']:,} cycles")
    else:
        print(f"{status} — makespan "
              f"{data['result']['makespan_cycles']:,} cycles")
    return 0


def cmd_scenario(args) -> int:
    from repro.scenario.loader import dump_scenario
    from repro.snapshot.format import config_sha256

    if args.scenario_cmd == "list":
        rows = []
        for name in scenario_names():
            try:
                sc = load_scenario(name)
            except ScenarioError as exc:
                rows.append([name, "-", f"INVALID: {exc}"])
                continue
            rows.append([name, sc.kind, sc.description or ""])
        if not rows:
            print("no curated scenarios found (scenarios/ is empty)")
            return 0
        print(format_table(["name", "kind", "description"], rows,
                           "curated scenario library"))
        return 0

    if args.scenario_cmd == "show":
        try:
            sc = load_scenario(args.name)
        except ScenarioError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(dump_scenario(sc), end="")
        cfg = sc.to_config()
        print(f"# kind: {sc.kind}")
        print(f"# machine: {cfg.num_cores} cores, "
              f"{cfg.mesh_width}x{cfg.mesh_height} mesh, "
              f"{cfg.llc_total_bytes / (1024 * 1024):g} MB LLC, "
              f"{cfg.rrt_entries}-entry RRT")
        print(f"# config_sha256: {config_sha256(cfg)}")
        return 0

    # validate: schema-check every file; exit 1 if any fails.
    failures = 0
    for path in args.files:
        try:
            sc = load_scenario(path)
        except ScenarioError as exc:
            failures += 1
            print(f"FAIL {path}: {exc}")
            continue
        print(f"ok   {path} ({sc.kind}: {sc.name})")
    if failures:
        print(f"\n{failures} of {len(args.files)} scenario(s) invalid")
    return 1 if failures else 0


def cmd_tdg(args) -> int:
    from repro.ioutils import atomic_write
    from repro.runtime.tdgviz import program_to_dot

    program = get_workload(args.workload).build(_cfg(args))
    dot = program_to_dot(program, max_tasks=args.max_tasks)
    with atomic_write(args.out) as fh:
        fh.write(dot)
    nodes = dot.count("label=")
    print(f"wrote {args.out} ({nodes} tasks; render with: dot -Tpdf {args.out})")
    return 0


_COMMANDS = {
    "list": cmd_list,
    "config": cmd_config,
    "run": cmd_run,
    "trace": cmd_trace,
    "figures": cmd_figures,
    "sweep": cmd_sweep,
    "compare": cmd_compare,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "fleet": cmd_fleet,
    "scenario": cmd_scenario,
    "tdg": cmd_tdg,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Downstream reader (e.g. `| head`) closed the pipe; exit quietly
        # with the conventional SIGPIPE status instead of a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
