"""System configuration for the TD-NUCA reproduction.

The defaults mirror Table I of the paper (16 out-of-order cores on a 4x4
mesh, 32 KB L1s, a 32 MB LLC banked 2 MB/core, MESI coherence, 64-entry
RRTs).  Because the reproduction is a trace-driven simulator rather than
gem5, full-paper capacities make single runs slow in pure Python; the
:func:`scaled_config` preset shrinks capacities and workload footprints by a
common factor while preserving the ratios that drive the paper's phenomena
(input-set size vs. LLC capacity, task size vs. bank size).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

__all__ = [
    "LatencyConfig",
    "EnergyConfig",
    "SystemConfig",
    "paper_config",
    "scaled_config",
]


@dataclass(frozen=True)
class LatencyConfig:
    """Access latencies in core cycles (Table I)."""

    l1_hit: int = 2
    llc_hit: int = 15
    #: cycles to detect an LLC miss (tag probe only; the full llc_hit
    #: latency includes the data array read that a miss never performs).
    llc_miss_probe: int = 5
    #: DRAM access on a row-buffer miss (activate + read).
    dram: int = 120
    #: DRAM access hitting the open row — bulk sequential sweeps (cache
    #: fills of streamed data, flush-then-refetch of whole dependencies)
    #: mostly pay this.
    dram_row_hit: int = 45
    #: DRAM row size in cache blocks (2 KB rows / 64 B blocks).
    dram_row_blocks: int = 32
    #: base backoff (cycles) before the first retry of a transient DRAM
    #: error; doubles per consecutive retry (fault injection only).
    dram_retry_backoff: int = 16
    noc_link: int = 1
    noc_router: int = 1
    #: average queueing cycles added per hop.  The paper's Garnet NoC
    #: simulates contention dynamically; a trace-driven model cannot, so a
    #: static load term stands in (calibrated so that distance costs match
    #: a moderately loaded mesh).  Set to 0 for unloaded-latency studies.
    noc_contention: int = 2
    rrt_lookup: int = 1
    tlb_lookup: int = 1
    #: cycles of non-memory work charged per memory reference (an IPC proxy
    #: for the 4-wide OoO core; keeps memory time dominant but not total).
    compute_per_access: int = 4

    def noc_per_hop(self) -> int:
        """Cycles per hop: link + router + average queueing."""
        return self.noc_link + self.noc_router + self.noc_contention


@dataclass(frozen=True)
class EnergyConfig:
    """Per-event dynamic energies in picojoules.

    Constants are CACTI-6.0-flavoured magnitudes at 22 nm; figures 13/14 are
    reported *normalized to S-NUCA*, so only the relative weighting between
    event classes matters for the reproduction.
    """

    llc_read: float = 250.0
    llc_write: float = 270.0
    llc_tag_probe: float = 40.0
    l1_access: float = 15.0
    noc_per_flit_hop: float = 12.0
    dram_access: float = 2400.0
    #: SRAM lookup energy; multiplied by :attr:`rrt_tcam_factor` to
    #: approximate a real TCAM implementation (paper Section V-E).
    rrt_sram_lookup: float = 1.0
    rrt_tcam_factor: float = 30.0
    flit_bytes: int = 16

    def rrt_lookup_energy(self) -> float:
        return self.rrt_sram_lookup * self.rrt_tcam_factor


@dataclass(frozen=True)
class SystemConfig:
    """Full machine description.

    The mesh is ``mesh_width`` x ``mesh_height`` tiles, one core + one L1 +
    one LLC bank per tile.  Clusters are the quadrants used by TD-NUCA's
    LLC Cluster Replication scheme and by R-NUCA's rotational interleaving.
    """

    # --- topology ---
    mesh_width: int = 4
    mesh_height: int = 4
    cluster_width: int = 2
    cluster_height: int = 2

    # --- memory geometry ---
    block_bytes: int = 64
    page_bytes: int = 4096
    physical_address_bits: int = 42

    # --- caches ---
    l1_bytes: int = 32 * 1024
    l1_assoc: int = 8
    llc_bank_bytes: int = 2 * 1024 * 1024
    llc_assoc: int = 16

    # --- TLB / RRT ---
    tlb_entries: int = 64
    rrt_entries: int = 64

    #: non-dependency traffic: cache blocks of runtime/stack data each task
    #: touches (read + write sweep).  Not covered by task dependencies, so
    #: every policy address-interleaves it; gives Fig. 3 its ~4% non-dep
    #: block fraction and keeps a FLOOR under TD-NUCA's LLC access counts.
    nondep_blocks_per_task: int = 28

    # --- timing and energy ---
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)

    #: scale factor applied by :func:`scaled_config`; 1.0 for paper sizes.
    capacity_scale: float = 1.0

    # --- fault injection and runtime checking ---
    #: fault schedule spec (see :mod:`repro.faults.schedule`); "" = no faults.
    fault_spec: str = ""
    #: run the invariant checker during execution (graceful-degradation
    #: proofs; small overhead).
    strict_invariants: bool = False
    #: tasks between full invariant sweeps in strict mode (cheap checks run
    #: every task; 1 = full sweep after every task).
    strict_check_interval: int = 16

    # --- execution backend ---
    #: simulation kernel selector (see :mod:`repro.sim.kernels`):
    #: ``auto`` | ``reference`` | ``vector`` | ``verify``.  Never changes
    #: results (byte-identical MachineStats is enforced), so it is excluded
    #: from config fingerprints and result-cache keys.
    kernel: str = "auto"

    # ----- derived quantities -----

    @property
    def num_cores(self) -> int:
        return self.mesh_width * self.mesh_height

    @property
    def num_banks(self) -> int:
        return self.num_cores

    @property
    def num_clusters(self) -> int:
        return (self.mesh_width // self.cluster_width) * (
            self.mesh_height // self.cluster_height
        )

    @property
    def cluster_size(self) -> int:
        return self.cluster_width * self.cluster_height

    @property
    def llc_total_bytes(self) -> int:
        return self.llc_bank_bytes * self.num_banks

    @property
    def blocks_per_page(self) -> int:
        return self.page_bytes // self.block_bytes

    def validate(self) -> None:
        """Raise ``ValueError`` on any nonsensical configuration — called by
        :func:`repro.sim.machine.build_machine` and
        :func:`repro.experiments.runner.run_experiment` so bad configs fail
        with a clear message instead of a deep crash inside the machine."""
        if self.mesh_width <= 0 or self.mesh_height <= 0:
            raise ValueError(
                "mesh dimensions must be positive (a machine needs at least "
                "one core and one LLC bank)"
            )
        cores = self.num_cores
        if cores & (cores - 1):
            raise ValueError(
                f"total tile count must be a power of two for address "
                f"interleaving, got {self.mesh_width}x{self.mesh_height} = "
                f"{cores} tiles (use e.g. 4x4, 8x8, 8x16, 16x16)"
            )
        if cores > 1024:
            raise ValueError(
                f"mesh {self.mesh_width}x{self.mesh_height} has {cores} tiles; "
                "meshes beyond 1024 tiles are not calibrated (latency tables "
                "stop at the 256-core band and the trace-driven model has no "
                "validation data past that scale)"
            )
        if self.cluster_width <= 0 or self.cluster_height <= 0:
            raise ValueError("cluster dimensions must be positive")
        if self.mesh_width % self.cluster_width:
            raise ValueError(
                f"mesh_width ({self.mesh_width}) must be a multiple of "
                f"cluster_width ({self.cluster_width}); clusters must tile "
                "the mesh exactly"
            )
        if self.mesh_height % self.cluster_height:
            raise ValueError(
                f"mesh_height ({self.mesh_height}) must be a multiple of "
                f"cluster_height ({self.cluster_height}); clusters must tile "
                "the mesh exactly"
            )
        if self.cluster_size & (self.cluster_size - 1):
            raise ValueError(
                f"cluster size must be a power of two for rotational "
                f"interleaving, got {self.cluster_width}x{self.cluster_height}"
                f" = {self.cluster_size} tiles"
            )
        for name in ("block_bytes", "page_bytes", "l1_bytes", "llc_bank_bytes"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two")
        if self.page_bytes % self.block_bytes:
            raise ValueError("page_bytes must be a multiple of block_bytes")
        if self.l1_assoc <= 0 or self.llc_assoc <= 0:
            raise ValueError("cache associativities must be positive")
        if self.l1_bytes < self.l1_assoc * self.block_bytes:
            raise ValueError(
                f"L1 ({self.l1_bytes} B) smaller than one set "
                f"({self.l1_assoc}-way x {self.block_bytes} B blocks)"
            )
        if self.llc_bank_bytes < self.llc_assoc * self.block_bytes:
            raise ValueError(
                f"LLC bank ({self.llc_bank_bytes} B) smaller than one set "
                f"({self.llc_assoc}-way x {self.block_bytes} B blocks)"
            )
        if self.rrt_entries <= 0 or self.tlb_entries <= 0:
            raise ValueError("rrt_entries and tlb_entries must be positive")
        if self.nondep_blocks_per_task < 0:
            raise ValueError("nondep_blocks_per_task must be non-negative")
        if self.physical_address_bits <= 0:
            raise ValueError("physical_address_bits must be positive")
        if self.strict_check_interval <= 0:
            raise ValueError("strict_check_interval must be positive")
        from repro.sim.kernels import KERNEL_NAMES

        if self.kernel not in KERNEL_NAMES:
            raise ValueError(
                f"unknown simulation kernel {self.kernel!r}; expected one of "
                f"{KERNEL_NAMES}"
            )
        if self.fault_spec:
            from repro.faults.schedule import parse_fault_spec

            schedule = parse_fault_spec(self.fault_spec)  # raises on bad spec
            schedule.validate_against(self.num_banks, self.num_cores)


def paper_config() -> SystemConfig:
    """The exact Table-I configuration."""
    cfg = SystemConfig()
    cfg.validate()
    return cfg


def _pow2_at_most(value: float, minimum: int) -> int:
    """Largest power of two <= value, floored at ``minimum`` (a power of 2)."""
    if value <= minimum:
        return minimum
    return 1 << int(math.floor(math.log2(value)))


def scaled_config(factor: float = 1.0 / 64.0) -> SystemConfig:
    """Table-I configuration with cache capacities scaled by ``factor``.

    Blocks stay 64 B.  Pages scale by ``sqrt(factor)`` (floored at 512 B):
    page-granularity effects — OS reclassification flushes, first/last-page
    misclassification — must shrink with the data or they are inflated by
    ``1/factor`` relative to the paper.  The L1 is floored at 2 KB so it
    still has multiple sets; associativities are unchanged.  Workload
    generators consume :attr:`SystemConfig.capacity_scale` to shrink their
    footprints by ``factor``, preserving Table-II ratios.
    """
    if not 0 < factor <= 1:
        raise ValueError("scale factor must be in (0, 1]")
    base = SystemConfig()
    cfg = replace(
        base,
        l1_bytes=_pow2_at_most(base.l1_bytes * factor, 2048),
        llc_bank_bytes=_pow2_at_most(base.llc_bank_bytes * factor, 16 * 1024),
        page_bytes=_pow2_at_most(base.page_bytes * math.sqrt(factor), 512),
        capacity_scale=factor,
    )
    cfg.validate()
    return cfg
