"""TD-NUCA — the paper's primary contribution.

Hardware side (Section III-B): a per-core :class:`~repro.core.rrt.RRT`
(Runtime Region Table) mapping physical address ranges of task dependencies
to LLC ``BankMask``\\ s, plus the three ISA instructions
(:mod:`repro.core.isa`) the runtime uses to manage it.

Software side (Section III-C): the :class:`~repro.core.rtdirectory.RTCacheDirectory`
tracking per-dependency use counts and mappings, and the Fig.-7 placement
decision (:mod:`repro.core.policy`).

:class:`~repro.core.tdnuca.TdNucaPolicy` plugs the RRT lookup into the
memory access path as a :class:`~repro.nuca.base.NucaPolicy`.
"""

from repro.core.isa import FlushCompletionRegister, TdNucaISA
from repro.core.policy import Placement, PlacementKind, decide_placement
from repro.core.rrt import RRT, decode_bank_mask
from repro.core.rtdirectory import DependencyEntry, RTCacheDirectory
from repro.core.tdnuca import TdNucaPolicy

__all__ = [
    "RRT",
    "decode_bank_mask",
    "TdNucaISA",
    "FlushCompletionRegister",
    "RTCacheDirectory",
    "DependencyEntry",
    "Placement",
    "PlacementKind",
    "decide_placement",
    "TdNucaPolicy",
]
