"""The three TD-NUCA ISA instructions and the flush-completion register.

``tdnuca_register(initial_address, size, BankMask)`` — Section III-A/B2:
walks the virtual pages of a dependency through the executing core's TLB
(Fig. 5), collapses physically contiguous pages into ranges, and registers
each range in the core's RRT.  Ranges that do not fit are dropped (S-NUCA
fallback).  Partially covered first/last cache blocks are excluded
(Section III-D).

``tdnuca_invalidate(initial_address, size, CoreMask)`` — removes the
dependency's entries from the RRTs of the cores in ``CoreMask`` after the
same translation walk.

``tdnuca_flush(initial_address, size, cache_level, CoreMask)`` — flushes
the dependency's cache blocks from the private caches or LLC banks of the
masked tiles.  Completion is signalled through a memory-mapped register
with one bit per core on which the runtime polls.

All instruction latencies are modelled in cycles and surfaced in
:class:`ISAStats` for the Section V-E overhead studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.config import LatencyConfig
from repro.core.rrt import RRT
from repro.mem.address import AddressMap
from repro.mem.region import Region
from repro.mem.tlb import TLB

__all__ = ["TdNucaISA", "ISAStats", "FlushCompletionRegister", "FlushOutcome"]


class FlushCompletionRegister:
    """Memory-mapped register with 1 bit per core (Section III-B4).

    A core's bit is set while a flush it issued is in flight and cleared on
    completion; the runtime polls the register.  The simulator executes
    flushes synchronously, but the register is still driven through the
    same set/clear protocol so the API (and its tests) match the paper.
    """

    def __init__(self, num_cores: int) -> None:
        self.num_cores = num_cores
        self._bits = 0
        self.polls = 0

    def start(self, core: int) -> None:
        self._check(core)
        self._bits |= 1 << core

    def complete(self, core: int) -> None:
        self._check(core)
        self._bits &= ~(1 << core)

    def poll(self) -> int:
        """Read the register (runtime polling loop); returns the bitmask of
        cores with flushes still in flight."""
        self.polls += 1
        return self._bits

    def is_pending(self, core: int) -> bool:
        self._check(core)
        return bool(self._bits >> core & 1)

    def _check(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise ValueError("core out of range")

    def state_dict(self) -> dict:
        return {"bits": self._bits, "polls": self.polls}

    def load_state_dict(self, state: dict) -> None:
        self._bits = int(state["bits"])
        self.polls = int(state["polls"])


@dataclass
class ISAStats:
    registers_executed: int = 0
    invalidates_executed: int = 0
    flushes_executed: int = 0
    translation_tlb_accesses: int = 0
    register_cycles: int = 0
    invalidate_cycles: int = 0
    flush_cycles: int = 0
    blocks_flushed: int = 0
    dirty_blocks_flushed: int = 0

    @property
    def total_cycles(self) -> int:
        return self.register_cycles + self.invalidate_cycles + self.flush_cycles


@dataclass(frozen=True)
class FlushOutcome:
    cycles: int
    flushed: int
    dirty: int


#: callback the machine installs to actually remove blocks from caches and
#: account writeback traffic: (blocks, level, tiles) -> (flushed, dirty).
FlushExecutor = Callable[[list[int], str, tuple[int, ...]], tuple[int, int]]


class TdNucaISA:
    """Executes the TD-NUCA instructions against the per-core TLBs/RRTs."""

    #: cycles charged per block invalidated by a flush transaction.
    FLUSH_CYCLES_PER_BLOCK = 1
    #: fixed issue cost of each instruction.
    ISSUE_CYCLES = 4

    def __init__(
        self,
        amap: AddressMap,
        tlbs: list[TLB],
        rrts: list[RRT],
        latency: LatencyConfig,
    ) -> None:
        if len(tlbs) != len(rrts):
            raise ValueError("need one TLB and one RRT per core")
        self.amap = amap
        self.tlbs = tlbs
        self.rrts = rrts
        self.latency = latency
        self.completion = FlushCompletionRegister(len(rrts))
        self.stats = ISAStats()
        self.flush_executor: FlushExecutor | None = None
        # Observability hook (repro.obs.Observer.attach plants it): RRT
        # install/drop/evict events are emitted here, where the per-range
        # outcome is known, instead of inside the RRT itself.
        self.obs = None

    # --- checkpoint/restore ---

    def state_dict(self) -> dict:
        """Instruction counters and the completion register.  The TLBs and
        RRTs the ISA drives are owned (and serialized) by the machine."""
        from dataclasses import asdict

        return {
            "stats": asdict(self.stats),
            "completion": self.completion.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        self.stats = ISAStats(**state["stats"])
        self.completion.load_state_dict(state["completion"])

    # --- shared translation walk (Fig. 5) ---

    def _trim(self, region: Region) -> Region | None:
        """Clip to fully-contained cache blocks (Section III-D)."""
        lo = self.amap.align_up_block(region.start)
        hi = self.amap.align_down_block(region.end)
        if hi <= lo:
            return None
        return Region(lo, hi - lo, region.name)

    def _translate_ranges(self, core: int, region: Region) -> tuple[list[tuple[int, int]], int]:
        """Iteratively translate ``region`` via ``core``'s TLB, collapsing
        contiguous physical pages; returns (ranges, cycles)."""
        tlb = self.tlbs[core]
        amap = self.amap
        ranges: list[tuple[int, int]] = []
        run_start = run_end = None
        pages = 0
        # TLB lookup and page-table walk inlined: register/invalidate/flush
        # instructions sweep every page of a dependency, so this loop runs
        # tens of thousands of times per workload.  Hit/miss stats are
        # batched; LRU order and eviction behave exactly as
        # :meth:`TLB.lookup_page`.
        page_shift = amap.page_shift
        page_mask = amap.page_bytes - 1
        r_start = region.start
        r_end = region.end
        tcache = tlb._cache
        tcache_get = tcache.get
        tlb_entries = tlb.entries
        pt = tlb.pagetable
        pt_map = pt._map
        t_hits = 0
        t_misses = 0
        for vpage in region.pages(amap):
            frame = tcache_get(vpage)
            if frame is not None:
                t_hits += 1
                tcache.move_to_end(vpage)
            else:
                t_misses += 1
                frame = pt_map.get(vpage)
                if frame is None:
                    frame = pt._allocate_frame()
                    pt_map[vpage] = frame
                tcache[vpage] = frame
                if len(tcache) > tlb_entries:
                    tcache.popitem(last=False)
            pages += 1
            pstart = frame << page_shift
            lo = vpage << page_shift
            if lo < r_start:
                lo = r_start
            hi = (vpage + 1) << page_shift
            if hi > r_end:
                hi = r_end
            plo = pstart + (lo & page_mask)
            phi = pstart + ((hi - 1) & page_mask) + 1
            if run_end is not None and plo == run_end:
                run_end = phi
            else:
                if run_start is not None:
                    ranges.append((run_start, run_end))
                run_start, run_end = plo, phi
        if run_start is not None:
            ranges.append((run_start, run_end))
        tst = tlb.stats
        tst.hits += t_hits
        tst.misses += t_misses
        self.stats.translation_tlb_accesses += pages
        return ranges, self.ISSUE_CYCLES + pages * self.latency.tlb_lookup

    @staticmethod
    def _blocks_of_ranges(amap: AddressMap, ranges: list[tuple[int, int]]) -> list[int]:
        blocks: list[int] = []
        for start, end in ranges:
            blocks.extend(range(start >> amap.block_shift, ((end - 1) >> amap.block_shift) + 1))
        return blocks

    # --- the instructions ---

    def tdnuca_register(self, core: int, region: Region, bank_mask: int) -> int:
        """Register a dependency in ``core``'s RRT; returns cycles spent."""
        self.stats.registers_executed += 1
        trimmed = self._trim(region)
        if trimmed is None:
            self.stats.register_cycles += self.ISSUE_CYCLES
            return self.ISSUE_CYCLES
        ranges, cycles = self._translate_ranges(core, trimmed)
        rrt = self.rrts[core]
        obs = self.obs
        for start, end in ranges:
            installed = rrt.register(start, end, bank_mask)
            cycles += 1
            if obs is not None:
                if installed:
                    obs.rrt_install(core, start, end, bank_mask)
                else:
                    obs.rrt_drop(core, start, end, bank_mask)
        self.stats.register_cycles += cycles
        return cycles

    def tdnuca_invalidate(self, core: int, region: Region, core_mask: int) -> int:
        """Remove the dependency's RRT entries from the masked cores;
        ``core`` executes the instruction (its TLB does the walk)."""
        self.stats.invalidates_executed += 1
        trimmed = self._trim(region)
        if trimmed is None:
            self.stats.invalidate_cycles += self.ISSUE_CYCLES
            return self.ISSUE_CYCLES
        ranges, cycles = self._translate_ranges(core, trimmed)
        obs = self.obs
        for target in range(len(self.rrts)):
            if core_mask >> target & 1:
                rrt = self.rrts[target]
                removed = 0
                for start, end in ranges:
                    removed += rrt.invalidate(start, end)
                    cycles += 1
                if obs is not None and removed:
                    obs.rrt_evict(target, removed)
        self.stats.invalidate_cycles += cycles
        return cycles

    def tdnuca_flush(
        self, core: int, region: Region, cache_level: str, core_mask: int
    ) -> FlushOutcome:
        """Flush the dependency's blocks from the masked tiles' caches.

        ``cache_level`` is ``"l1"`` (private caches) or ``"llc"`` (LLC
        banks), as in the instruction's ``cache_level`` operand.
        """
        if cache_level not in ("l1", "llc"):
            raise ValueError("cache_level must be 'l1' or 'llc'")
        if self.flush_executor is None:
            raise RuntimeError("no flush executor installed")
        self.stats.flushes_executed += 1
        trimmed = self._trim(region)
        if trimmed is None:
            self.stats.flush_cycles += self.ISSUE_CYCLES
            return FlushOutcome(self.ISSUE_CYCLES, 0, 0)
        ranges, cycles = self._translate_ranges(core, trimmed)
        tiles = tuple(t for t in range(len(self.rrts)) if core_mask >> t & 1)
        blocks = self._blocks_of_ranges(self.amap, ranges)
        self.completion.start(core)
        flushed, dirty = self.flush_executor(blocks, cache_level, tiles)
        # The runtime polls until the flush transaction drains; charge the
        # per-block invalidation walk to the instruction.
        cycles += flushed * self.FLUSH_CYCLES_PER_BLOCK
        self.completion.poll()
        self.completion.complete(core)
        self.stats.flush_cycles += cycles
        self.stats.blocks_flushed += flushed
        self.stats.dirty_blocks_flushed += dirty
        return FlushOutcome(cycles, flushed, dirty)
