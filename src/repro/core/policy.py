"""The TD-NUCA placement decision — the flowchart of Fig. 7.

Called by the runtime after a task is scheduled to a core but before it
starts executing, once per dependency (its ``UseDesc`` already decremented
for the starting task):

1. ``UseDesc == 0``  → **LLC Bypass**: no outstanding task in the TDG uses
   the dependency again, so its blocks skip the LLC (BankMask = 0).
2. mode is OUT/INOUT → **Local LLC Bank Mapping**: the dependency is private
   to the task; map it to the executing core's local bank.
3. otherwise (IN, reused) → **Cluster Replicated Mapping**: replicate in the
   executing core's local cluster (BankMask = the 4 cluster banks).

The *Bypass-Only* variant of Section V-D applies only rule 1 and leaves
everything else untracked (falls back to S-NUCA interleaving).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.rtdirectory import DependencyEntry
from repro.deps import DepMode
from repro.noc.topology import Mesh

__all__ = ["PlacementKind", "Placement", "decide_placement", "bank_mask_of"]


class PlacementKind(Enum):
    BYPASS = "bypass"
    LOCAL_BANK = "local_bank"
    CLUSTER_REPLICATE = "cluster_replicate"
    UNTRACKED = "untracked"  # bypass-only variant: dep left to S-NUCA


@dataclass(frozen=True)
class Placement:
    """Outcome of the Fig.-7 decision for one dependency of one task."""

    kind: PlacementKind
    #: BankMask communicated via ``tdnuca_register`` (0 for bypass).
    bank_mask: int
    #: banks set in the mask, ascending (empty for bypass/untracked).
    banks: tuple[int, ...] = ()


def bank_mask_of(banks) -> int:
    """Build a BankMask bitvector from bank indices."""
    mask = 0
    for b in banks:
        if b < 0:
            raise ValueError("bank index must be non-negative")
        mask |= 1 << b
    return mask


def decide_placement(
    entry: DependencyEntry,
    mode: DepMode,
    core: int,
    mesh: Mesh,
    bypass_only: bool = False,
) -> Placement:
    """Apply the Fig.-7 flowchart for ``entry`` accessed as ``mode`` by a
    task about to execute on ``core``."""
    if entry.use_desc < 0:
        raise ValueError("UseDesc must be non-negative at decision time")
    if entry.use_desc == 0:
        return Placement(PlacementKind.BYPASS, 0)
    if bypass_only:
        return Placement(PlacementKind.UNTRACKED, 0)
    if mode.writes:
        return Placement(PlacementKind.LOCAL_BANK, 1 << core, (core,))
    banks = mesh.local_cluster_tiles(core)
    return Placement(PlacementKind.CLUSTER_REPLICATE, bank_mask_of(banks), banks)
