"""Runtime Region Table (RRT) — Section III-B.

One RRT per core.  Each entry holds the start and end *physical* address of
a memory region and the ``BankMask`` naming the LLC banks the region is
mapped to (0 bits = bypass, 1 bit = single bank, k bits = spread across a
cluster).  The table performs TCAM-style range lookups; we model it as a
sorted-array binary search, which is exact because the runtime keeps
registered ranges non-overlapping.

Capacity behaviour follows the paper precisely: **no replacement policy** —
when the table is full, further registrations are dropped and those ranges
simply fall back to S-NUCA interleaving (functionality is preserved, only
optimization opportunity is lost).

The multiprogramming extension of Section III-D (process-ID tagging) is
implemented: entries are tagged with a PID and lookups only match entries
of the active process.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from functools import lru_cache

__all__ = ["RRT", "RRTEntry", "RRTStats", "decode_bank_mask"]


@lru_cache(maxsize=4096)
def decode_bank_mask(mask: int) -> tuple[int, ...]:
    """Bank indices set in ``mask``, ascending.  Cached: masks repeat."""
    if mask < 0:
        raise ValueError("bank mask must be non-negative")
    out = []
    bank = 0
    m = mask
    while m:
        if m & 1:
            out.append(bank)
        m >>= 1
        bank += 1
    return tuple(out)


@dataclass(frozen=True)
class RRTEntry:
    """One registered physical range ``[start, end)`` with its BankMask."""

    start: int
    end: int
    bank_mask: int
    pid: int = 0


@dataclass
class RRTStats:
    lookups: int = 0
    hits: int = 0
    registrations: int = 0
    drops_full: int = 0
    invalidations: int = 0
    peak_occupancy: int = 0


@dataclass
class _PidTable:
    starts: list[int] = field(default_factory=list)
    ends: list[int] = field(default_factory=list)
    masks: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.starts)


class RRT:
    """Per-core Runtime Region Table."""

    def __init__(self, core: int, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("RRT capacity must be positive")
        self.core = core
        self.capacity = capacity
        self._tables: dict[int, _PidTable] = {}
        self._active_pid = 0
        self.stats = RRTStats()

    # --- process management (Section III-D extension) ---

    @property
    def active_pid(self) -> int:
        return self._active_pid

    def set_active_pid(self, pid: int) -> None:
        self._active_pid = pid

    def drop_pid(self, pid: int) -> int:
        """Remove all entries of a terminated process; returns count."""
        table = self._tables.pop(pid, None)
        return len(table) if table else 0

    # --- occupancy ---

    @property
    def occupancy(self) -> int:
        """Total valid entries across all processes (shared capacity)."""
        return sum(len(t) for t in self._tables.values())

    def entries(self, pid: int | None = None) -> list[RRTEntry]:
        """Snapshot of entries (active PID by default)."""
        pid = self._active_pid if pid is None else pid
        table = self._tables.get(pid)
        if not table:
            return []
        return [
            RRTEntry(s, e, m, pid)
            for s, e, m in zip(table.starts, table.ends, table.masks)
        ]

    # --- registration / invalidation ---

    def register(self, start: int, end: int, bank_mask: int) -> bool:
        """Register ``[start, end)`` -> ``bank_mask`` for the active PID.

        Returns False when the table is full (the range is dropped and will
        fall back to S-NUCA).  Re-registering an identical range with the
        same mask is idempotent; an overlapping registration replaces the
        overlapped entries (the runtime invalidates before remapping, so
        this is a robustness fallback, counted as invalidations).
        """
        if end <= start:
            raise ValueError("empty or inverted range")
        if bank_mask < 0:
            raise ValueError("bank mask must be non-negative")
        table = self._tables.setdefault(self._active_pid, _PidTable())
        # Idempotent fast path.
        i = bisect_right(table.starts, start) - 1
        if (
            i >= 0
            and table.starts[i] == start
            and table.ends[i] == end
            and table.masks[i] == bank_mask
        ):
            self.stats.registrations += 1
            return True
        self._remove_overlaps(table, start, end)
        if self.occupancy >= self.capacity:
            self.stats.drops_full += 1
            return False
        j = bisect_right(table.starts, start)
        table.starts.insert(j, start)
        table.ends.insert(j, end)
        table.masks.insert(j, bank_mask)
        self.stats.registrations += 1
        occ = self.occupancy
        if occ > self.stats.peak_occupancy:
            self.stats.peak_occupancy = occ
        return True

    def _remove_overlaps(self, table: _PidTable, start: int, end: int) -> None:
        # bisect_left so an adjacent entry starting exactly at ``end`` is
        # excluded (it does not overlap) rather than terminating the scan.
        i = bisect_left(table.starts, end) - 1
        while i >= 0 and table.ends[i] > start:
            del table.starts[i], table.ends[i], table.masks[i]
            self.stats.invalidations += 1
            i -= 1

    def drop_bank_entries(self, bank: int) -> int:
        """Fault injection: de-register every entry (all PIDs) whose
        BankMask names ``bank`` — the bank died, so those mappings are
        stale.  The affected regions fall back to S-NUCA interleaving
        (which the policy remaps around the dead bank).  Bypass entries
        (mask 0) are untouched.  Returns the number of entries dropped.
        """
        if bank < 0:
            raise ValueError("bank must be non-negative")
        bit = 1 << bank
        dropped = 0
        for table in self._tables.values():
            for i in range(len(table.starts) - 1, -1, -1):
                if table.masks[i] & bit:
                    del table.starts[i], table.ends[i], table.masks[i]
                    dropped += 1
        self.stats.invalidations += dropped
        return dropped

    def invalidate(self, start: int, end: int) -> int:
        """De-register entries overlapping ``[start, end)`` (active PID).

        Returns the number of entries removed.
        """
        if end <= start:
            return 0
        table = self._tables.get(self._active_pid)
        if not table:
            return 0
        before = self.stats.invalidations
        self._remove_overlaps(table, start, end)
        return self.stats.invalidations - before

    def migrate_to(self, other: "RRT", pid: int | None = None) -> int:
        """Thread-migration support (Section III-D): move this core's
        entries for ``pid`` into ``other``; returns entries moved (entries
        that do not fit in the destination are dropped)."""
        pid = self._active_pid if pid is None else pid
        table = self._tables.pop(pid, None)
        if not table:
            return 0
        moved = 0
        saved_pid = other._active_pid
        other._active_pid = pid
        try:
            for s, e, m in zip(table.starts, table.ends, table.masks):
                if other.register(s, e, m):
                    moved += 1
        finally:
            other._active_pid = saved_pid
        return moved

    # --- checkpoint/restore ---

    def state_dict(self) -> dict:
        return {
            "tables": [
                (pid, list(t.starts), list(t.ends), list(t.masks))
                for pid, t in self._tables.items()
            ],
            "active_pid": self._active_pid,
            "stats": {
                "lookups": self.stats.lookups,
                "hits": self.stats.hits,
                "registrations": self.stats.registrations,
                "drops_full": self.stats.drops_full,
                "invalidations": self.stats.invalidations,
                "peak_occupancy": self.stats.peak_occupancy,
            },
        }

    def load_state_dict(self, state: dict) -> None:
        self._tables = {
            int(pid): _PidTable(
                [int(s) for s in starts],
                [int(e) for e in ends],
                [int(m) for m in masks],
            )
            for pid, starts, ends, masks in state["tables"]
        }
        self._active_pid = int(state["active_pid"])
        self.stats = RRTStats(**state["stats"])

    # --- the hot-path lookup ---

    def lookup(self, paddr: int) -> int | None:
        """BankMask of the entry containing ``paddr``, else None."""
        st = self.stats
        st.lookups += 1
        table = self._tables.get(self._active_pid)
        if table is None:
            return None
        starts = table.starts
        if not starts:
            return None
        i = bisect_right(starts, paddr) - 1
        if i >= 0 and paddr < table.ends[i]:
            st.hits += 1
            return table.masks[i]
        return None
