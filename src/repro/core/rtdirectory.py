"""RTCacheDirectory — the runtime-side dependency tracker (Section III-C1).

One entry per task dependency with four fields straight from the paper:
start address, size, ``MapMask`` (which LLC banks the dependency is
currently mapped to, a bitvector) and the *use descriptor* ``UseDesc``
counting how many created-but-not-yet-executing tasks will use the
dependency.  ``UseDesc`` is incremented at task creation and decremented
when a task using the dependency starts to execute.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.region import Region

__all__ = ["DependencyEntry", "RTCacheDirectory"]


@dataclass
class DependencyEntry:
    """Runtime bookkeeping for one task dependency region."""

    start: int
    size: int
    map_mask: int = 0
    use_desc: int = 0
    #: whether the dependency has ever been written by a task (drives the
    #: lazy read-only -> written invalidation of Section III-C2).
    ever_written: bool = False
    #: True while the current MapMask denotes cluster replication.
    replicated: bool = False

    @property
    def region(self) -> Region:
        return Region(self.start, self.size)


class RTCacheDirectory:
    """Dependency directory keyed by (start, size)."""

    def __init__(self) -> None:
        self._entries: dict[tuple[int, int], DependencyEntry] = {}

    def entry(self, region: Region) -> DependencyEntry:
        """Entry for ``region``, created on first use."""
        key = (region.start, region.size)
        e = self._entries.get(key)
        if e is None:
            e = DependencyEntry(region.start, region.size)
            self._entries[key] = e
        return e

    def get(self, region: Region) -> DependencyEntry | None:
        return self._entries.get((region.start, region.size))

    def inc_use(self, region: Region) -> DependencyEntry:
        """Task creation: one more future use of ``region``."""
        e = self.entry(region)
        e.use_desc += 1
        return e

    def dec_use(self, region: Region) -> DependencyEntry:
        """Task start: the executing task no longer counts as a future use."""
        e = self.entry(region)
        if e.use_desc <= 0:
            raise RuntimeError(
                f"UseDesc underflow for region {region!r}: dec without inc"
            )
        e.use_desc -= 1
        return e

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries.values())

    def total_outstanding_uses(self) -> int:
        """Sum of UseDesc over all entries (0 when the TDG has drained)."""
        return sum(e.use_desc for e in self._entries.values())

    # --- checkpoint/restore ---

    def state_dict(self) -> dict:
        return {
            "entries": [
                (e.start, e.size, e.map_mask, e.use_desc, e.ever_written, e.replicated)
                for e in self._entries.values()
            ]
        }

    def load_state_dict(self, state: dict) -> None:
        self._entries = {
            (int(start), int(size)): DependencyEntry(
                int(start),
                int(size),
                int(map_mask),
                int(use_desc),
                bool(ever_written),
                bool(replicated),
            )
            for start, size, map_mask, use_desc, ever_written, replicated in state["entries"]
        }
