"""TD-NUCA as a NUCA mapping policy (Section III-B3).

On every L1 miss (and before every L1 writeback), the requesting core's
RRT is consulted:

* address not in the RRT           → S-NUCA interleaving (untracked data);
* BankMask all zeros               → bypass the LLC, go straight to memory;
* exactly one bit set              → that LLC bank serves the access;
* k bits set (a cluster)           → the block is address-interleaved among
  the masked banks, selected by the low bits of the block number.

The RRT lookup adds :attr:`lookup_cycles` to each private-cache miss
(Table I: 1 cycle; Section V-E sweeps 0-4).
"""

from __future__ import annotations

from bisect import bisect_right

from repro.core.rrt import RRT, decode_bank_mask
from repro.mem.address import AddressMap
from repro.noc.topology import Mesh
from repro.nuca.base import BYPASS, NucaPolicy

__all__ = ["TdNucaPolicy"]


class TdNucaPolicy(NucaPolicy):
    """RRT-driven bank resolution, falling back to static interleaving."""

    name = "TD-NUCA"

    def __init__(
        self,
        mesh: Mesh,
        amap: AddressMap,
        rrts: list[RRT],
        lookup_cycles: int = 1,
    ) -> None:
        super().__init__()
        if len(rrts) != mesh.num_tiles:
            raise ValueError("one RRT per tile required")
        if mesh.num_tiles & (mesh.num_tiles - 1):
            raise ValueError("interleaving fallback needs power-of-two banks")
        self.mesh = mesh
        self.amap = amap
        self.rrts = rrts
        self.lookup_cycles = lookup_cycles
        self.total_banks = mesh.num_tiles
        self._bank_mask = mesh.num_tiles - 1
        self._block_shift = amap.block_shift

    def bank_for(self, core: int, block: int, write: bool) -> int:
        # Fused RRT lookup + stats counting: this runs on every private-
        # cache miss, so the :meth:`RRT.lookup` and
        # :meth:`NucaPolicy._count` bodies are inlined (bit-identical
        # counter updates, no per-miss call chain).
        rrt = self.rrts[core]
        rst = rrt.stats
        rst.lookups += 1
        mask = None
        table = rrt._tables.get(rrt._active_pid)
        if table is not None:
            starts = table.starts
            if starts:
                paddr = block << self._block_shift
                i = bisect_right(starts, paddr) - 1
                if i >= 0 and paddr < table.ends[i]:
                    rst.hits += 1
                    mask = table.masks[i]
        st = self.stats
        st.resolutions += 1
        if mask is None:
            bank = block & self._bank_mask
        elif mask == 0:
            st.bypasses += 1
            return BYPASS
        else:
            banks = decode_bank_mask(mask)
            n = len(banks)
            bank = banks[0] if n == 1 else banks[block % n]
        if self._dead_banks and bank in self._dead_banks:
            alive = self._alive_banks
            bank = alive[block % len(alive)]
            st.dead_bank_redirects += 1
        if bank == core:
            st.local_bank_hits += 1
        return bank
