"""TD-NUCA as a NUCA mapping policy (Section III-B3).

On every L1 miss (and before every L1 writeback), the requesting core's
RRT is consulted:

* address not in the RRT           → S-NUCA interleaving (untracked data);
* BankMask all zeros               → bypass the LLC, go straight to memory;
* exactly one bit set              → that LLC bank serves the access;
* k bits set (a cluster)           → the block is address-interleaved among
  the masked banks, selected by the low bits of the block number.

The RRT lookup adds :attr:`lookup_cycles` to each private-cache miss
(Table I: 1 cycle; Section V-E sweeps 0-4).
"""

from __future__ import annotations

from repro.core.rrt import RRT, decode_bank_mask
from repro.mem.address import AddressMap
from repro.noc.topology import Mesh
from repro.nuca.base import BYPASS, NucaPolicy

__all__ = ["TdNucaPolicy"]


class TdNucaPolicy(NucaPolicy):
    """RRT-driven bank resolution, falling back to static interleaving."""

    name = "TD-NUCA"

    def __init__(
        self,
        mesh: Mesh,
        amap: AddressMap,
        rrts: list[RRT],
        lookup_cycles: int = 1,
    ) -> None:
        super().__init__()
        if len(rrts) != mesh.num_tiles:
            raise ValueError("one RRT per tile required")
        if mesh.num_tiles & (mesh.num_tiles - 1):
            raise ValueError("interleaving fallback needs power-of-two banks")
        self.mesh = mesh
        self.amap = amap
        self.rrts = rrts
        self.lookup_cycles = lookup_cycles
        self.total_banks = mesh.num_tiles
        self._bank_mask = mesh.num_tiles - 1
        self._block_shift = amap.block_shift

    def bank_for(self, core: int, block: int, write: bool) -> int:
        mask = self.rrts[core].lookup(block << self._block_shift)
        if mask is None:
            return self._count(core, block & self._bank_mask, block)
        if mask == 0:
            return self._count(core, BYPASS)
        banks = decode_bank_mask(mask)
        if len(banks) == 1:
            return self._count(core, banks[0], block)
        return self._count(core, banks[block % len(banks)], block)
