"""Dependency access modes shared by the runtime and TD-NUCA layers.

OpenMP 4.0 ``depend`` clauses label each task dependency as ``in`` (read),
``out`` (write) or ``inout`` (read-write); both the TDG builder and the
TD-NUCA placement decision key off these modes.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["DepMode"]


class DepMode(Enum):
    IN = "in"
    OUT = "out"
    INOUT = "inout"

    @property
    def reads(self) -> bool:
        return self in (DepMode.IN, DepMode.INOUT)

    @property
    def writes(self) -> bool:
        return self in (DepMode.OUT, DepMode.INOUT)
