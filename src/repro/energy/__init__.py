"""Dynamic energy accounting (the McPAT/CACTI stand-in)."""

from repro.energy.model import EnergyBreakdown, EnergyTally

__all__ = ["EnergyTally", "EnergyBreakdown"]
