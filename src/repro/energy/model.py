"""Per-event dynamic-energy accounting.

The paper evaluates dynamic energy with McPAT (22 nm) and models the RRTs
in CACTI, multiplying their SRAM energy by 30x to approximate a TCAM
(Section V-E).  Figures 13/14 report LLC and NoC dynamic energy
*normalized to S-NUCA*, so what must be right here is (a) which events are
counted for each structure and (b) the relative per-event weights — both
taken from CACTI-flavoured constants in :class:`repro.config.EnergyConfig`.

The machine increments event counters; energies are derived on demand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import EnergyConfig

__all__ = ["EnergyTally", "EnergyBreakdown"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Dynamic energy per structure, in picojoules."""

    llc: float
    noc: float
    dram: float
    l1: float
    rrt: float

    @property
    def total(self) -> float:
        return self.llc + self.noc + self.dram + self.l1 + self.rrt


@dataclass
class EnergyTally:
    """Event counters feeding the dynamic-energy model."""

    llc_data_reads: int = 0
    llc_data_writes: int = 0
    llc_tag_probes: int = 0
    l1_accesses: int = 0
    dram_accesses: int = 0
    rrt_lookups: int = 0

    # --- event recording (kept trivial: these sit on the hot path) ---

    def llc_hit_read(self) -> None:
        self.llc_tag_probes += 1
        self.llc_data_reads += 1

    def llc_hit_write(self) -> None:
        self.llc_tag_probes += 1
        self.llc_data_writes += 1

    def llc_miss_fill(self) -> None:
        self.llc_tag_probes += 1
        self.llc_data_writes += 1  # the fill writes the data array

    def llc_probe(self, count: int = 1) -> None:
        self.llc_tag_probes += count

    def llc_victim_read(self) -> None:
        self.llc_data_reads += 1  # dirty victim read out for writeback

    def breakdown(self, cfg: EnergyConfig, flit_hops: int) -> EnergyBreakdown:
        """Total dynamic energy given the NoC flit-hop count."""
        llc = (
            self.llc_data_reads * cfg.llc_read
            + self.llc_data_writes * cfg.llc_write
            + self.llc_tag_probes * cfg.llc_tag_probe
        )
        return EnergyBreakdown(
            llc=llc,
            noc=flit_hops * cfg.noc_per_flit_hop,
            dram=self.dram_accesses * cfg.dram_access,
            l1=self.l1_accesses * cfg.l1_access,
            rrt=self.rrt_lookups * cfg.rrt_lookup_energy(),
        )

    def merge(self, other: "EnergyTally") -> None:
        self.llc_data_reads += other.llc_data_reads
        self.llc_data_writes += other.llc_data_writes
        self.llc_tag_probes += other.llc_tag_probes
        self.l1_accesses += other.l1_accesses
        self.dram_accesses += other.dram_accesses
        self.rrt_lookups += other.rrt_lookups
