"""Experiment harness: run (workload x policy) sweeps and assemble every
table and figure of the paper's evaluation section."""

from repro.experiments.runner import ExperimentResult, run_experiment, run_suite
from repro.experiments import figures, harness, paper

__all__ = [
    "ExperimentResult",
    "run_experiment",
    "run_suite",
    "figures",
    "harness",
    "paper",
]
