"""Ablation studies for the design choices DESIGN.md calls out.

Each function sweeps one design axis with everything else fixed and
returns ``{setting: ExperimentResult}``:

* :func:`sweep_rrt_capacity` — RRT entries (paper fixes 64; Section V-E
  argues they always suffice).
* :func:`sweep_rrt_latency` — RRT lookup cycles 0-4 (Section V-E).
* :func:`sweep_cluster_size` — LLC Cluster Replication geometry: 1x1
  clusters give 16 replicas chip-wide (maximal replication), 2x2 is the
  paper's quadrant scheme, 4x4 degenerates to a single chip-wide copy
  (no replication, pure interleave of read-only data).
* :func:`sweep_scheduler` — program-order vs FIFO vs random dispatch; the
  dynamic-scheduler sensitivity that motivates runtime-level (rather than
  OS-level) classification.
* :func:`sweep_page_size` — OS page size; larger pages reduce RRT
  pressure (Section V-E's closing remark) but coarsen R-NUCA.
"""

from __future__ import annotations

from dataclasses import replace

from repro.api import _run_one
from repro.config import SystemConfig
from repro.experiments.runner import ExperimentResult
from repro.runtime.scheduler import (
    FifoScheduler,
    OrderedScheduler,
    RandomScheduler,
)

__all__ = [
    "sweep_rrt_capacity",
    "sweep_rrt_latency",
    "sweep_cluster_size",
    "sweep_scheduler",
    "sweep_page_size",
]


def sweep_rrt_capacity(
    workload: str,
    cfg: SystemConfig,
    capacities=(8, 16, 32, 64),
    policy: str = "tdnuca",
) -> dict[int, ExperimentResult]:
    return {
        n: _run_one(workload, policy, replace(cfg, rrt_entries=n))
        for n in capacities
    }


def sweep_rrt_latency(
    workload: str,
    cfg: SystemConfig,
    latencies=(0, 1, 2, 3, 4),
) -> dict[int, ExperimentResult]:
    return {
        c: _run_one(workload, "tdnuca", cfg, rrt_lookup_cycles=c)
        for c in latencies
    }


def sweep_cluster_size(
    workload: str,
    cfg: SystemConfig,
    geometries=((1, 1), (2, 2), (4, 4)),
    policy: str = "tdnuca",
) -> dict[tuple[int, int], ExperimentResult]:
    out = {}
    for w, h in geometries:
        c = replace(cfg, cluster_width=w, cluster_height=h)
        out[(w, h)] = _run_one(workload, policy, c)
    return out


def sweep_scheduler(
    workload: str,
    cfg: SystemConfig,
    policy: str = "rnuca",
) -> dict[str, ExperimentResult]:
    """R-NUCA by default: it is the policy whose classification quality
    depends on where the scheduler places repeated computations."""
    makers = {
        "ordered": OrderedScheduler,
        "fifo": FifoScheduler,
        "random": lambda: RandomScheduler(seed=1),
    }
    return {
        name: _run_one(workload, policy, cfg, scheduler=maker())
        for name, maker in makers.items()
    }


def sweep_page_size(
    workload: str,
    cfg: SystemConfig,
    page_sizes=(512, 1024, 4096),
    policy: str = "tdnuca",
) -> dict[int, ExperimentResult]:
    return {
        p: _run_one(workload, policy, replace(cfg, page_bytes=p))
        for p in page_sizes
    }
