"""Regression comparison between archived result sets.

``python -m repro sweep --out baseline.json`` archives a suite; after a
simulator change, a second sweep can be diffed against it to catch
unintended behaviour drift::

    from repro.experiments.compare import compare_result_sets
    report = compare_result_sets(old, new, tolerance=0.02)

Metrics are compared as relative deviations; anything beyond the
tolerance is reported with both values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["MetricDelta", "compare_result_sets", "COMPARED_METRICS"]

#: dotted paths of the metrics that define behavioural equivalence.
COMPARED_METRICS = (
    "makespan_cycles",
    "tasks_executed",
    "llc.accesses",
    "llc.hits",
    "l1.accesses",
    "noc.router_bytes",
    "noc.mean_nuca_distance",
    "dram.reads",
    "dram.writes",
    "energy_pj.llc",
    "energy_pj.noc",
    "bypassed_accesses",
)


@dataclass(frozen=True)
class MetricDelta:
    """One metric that moved beyond tolerance."""

    run: str  # "workload/policy"
    metric: str
    old: float
    new: float

    @property
    def relative(self) -> float:
        if self.old == 0:
            return float("inf") if self.new else 0.0
        return (self.new - self.old) / self.old

    def __str__(self) -> str:
        return (
            f"{self.run}: {self.metric} {self.old:g} -> {self.new:g} "
            f"({self.relative:+.2%})"
        )


def _dig(payload: dict[str, Any], path: str) -> float | None:
    node: Any = payload
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def compare_result_sets(
    old: dict[tuple[str, str], dict[str, Any]],
    new: dict[tuple[str, str], dict[str, Any]],
    tolerance: float = 0.02,
    metrics=COMPARED_METRICS,
) -> list[MetricDelta]:
    """Deltas beyond ``tolerance`` for every run present in both sets.

    Runs present in only one set are reported as a delta on the synthetic
    metric ``"<missing>"`` so they cannot pass silently.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    deltas: list[MetricDelta] = []
    for key in sorted(set(old) | set(new)):
        run = f"{key[0]}/{key[1]}"
        if key not in old or key not in new:
            deltas.append(
                MetricDelta(run, "<missing>", float(key in old), float(key in new))
            )
            continue
        for metric in metrics:
            a, b = _dig(old[key], metric), _dig(new[key], metric)
            if a is None or b is None:
                continue
            if a == b == 0:
                continue
            base = abs(a) if a else abs(b)
            if abs(b - a) / base > tolerance:
                deltas.append(MetricDelta(run, metric, a, b))
    return deltas
