"""Assembly of every figure/table of the paper's evaluation section from a
suite of :class:`~repro.experiments.runner.ExperimentResult`\\ s.

Each ``figNN_*`` function consumes the results dict produced by
:func:`repro.experiments.runner.run_suite` (keyed ``(workload, policy)``)
and returns a :class:`Figure` with one value series per policy plus the
paper's reference numbers, ready to print side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.experiments import paper
from repro.experiments.runner import ExperimentResult
from repro.stats.report import format_table
from repro.workloads.registry import BENCHMARKS, workload_names

__all__ = [
    "Figure",
    "FigureSeries",
    "fig3_classification",
    "fig8_speedup",
    "fig9_llc_accesses",
    "fig10_hit_ratio",
    "fig11_nuca_distance",
    "fig12_data_movement",
    "fig13_llc_energy",
    "fig14_noc_energy",
    "fig15_bypass_only",
    "table1_rows",
    "table2_rows",
    "rrt_occupancy_report",
    "flush_overhead_report",
    "runtime_overhead_report",
]

Results = dict[tuple[str, str], ExperimentResult]


@dataclass
class FigureSeries:
    label: str
    values: dict[str, float]

    @property
    def average(self) -> float:
        vals = list(self.values.values())
        return sum(vals) / len(vals) if vals else 0.0


@dataclass
class Figure:
    fig_id: str
    title: str
    series: list[FigureSeries]
    paper_averages: dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def to_text(self) -> str:
        benches = list(self.series[0].values) if self.series else []
        headers = ["bench"] + [s.label for s in self.series]
        rows = [
            [b] + [f"{s.values[b]:.3f}" for s in self.series] for b in benches
        ]
        avg_row = ["AVG"] + [f"{s.average:.3f}" for s in self.series]
        rows.append(avg_row)
        if self.paper_averages:
            rows.append(
                ["paper AVG"]
                + [
                    (
                        f"{self.paper_averages[s.label]:.3f}"
                        if s.label in self.paper_averages
                        else "-"
                    )
                    for s in self.series
                ]
            )
        text = format_table(headers, rows, f"{self.fig_id}: {self.title}")
        if self.notes:
            text += f"\n{self.notes}"
        return text

    def to_chart(self, width: int = 36) -> str:
        """ASCII grouped-bar rendering (the shape of the paper's plots)."""
        from repro.stats.charts import grouped_bar_chart

        benches = list(self.series[0].values) if self.series else []
        groups = {
            b: {s.label: s.values[b] for s in self.series} for b in benches
        }
        groups["AVG"] = {s.label: s.average for s in self.series}
        return grouped_bar_chart(groups, f"{self.fig_id}: {self.title}", width)


def _benches(results: Results) -> list[str]:
    present = {wl for wl, _ in results}
    return [b for b in workload_names() if b in present]


def _norm_series(
    results: Results, policies: list[str], metric, label_of=None
) -> list[FigureSeries]:
    """Series of ``metric(result) / metric(snuca result)`` per policy."""
    benches = _benches(results)
    series = []
    for pol in policies:
        values = {}
        for b in benches:
            base = metric(results[(b, "snuca")])
            values[b] = metric(results[(b, pol)]) / base if base else 0.0
        series.append(FigureSeries(label_of(pol) if label_of else pol, values))
    return series


# ---------------------------------------------------------------------------
# Fig. 3 — classification of access and reuse patterns
# ---------------------------------------------------------------------------


def fig3_classification(results: Results) -> Figure:
    """Left bars from the S-NUCA run's block census (what an OS-level
    classifier could identify); right bars from the TD-NUCA runtime's
    dependency usage records."""
    benches = _benches(results)
    rn_priv, rn_ro, td_dep, td_nr = {}, {}, {}, {}
    for b in benches:
        census = results[(b, "snuca")].rnuca_census
        total = census.total or 1
        rn_priv[b] = census.private / total
        rn_ro[b] = census.shared_read_only / total
        td = results[(b, "tdnuca")]
        cats = td.extra.get("dep_category_blocks", {})
        dep_total = sum(cats.values())
        unique = td.unique_blocks or 1
        td_dep[b] = min(1.0, dep_total / unique)
        td_nr[b] = min(1.0, cats.get("not_reused", 0) / unique)
    return Figure(
        "Fig.3",
        "unique-block classification (fractions)",
        [
            FigureSeries("rnuca_private", rn_priv),
            FigureSeries("rnuca_shared_ro", rn_ro),
            FigureSeries("td_dep_blocks", td_dep),
            FigureSeries("td_not_reused", td_nr),
        ],
        {
            "rnuca_private": paper.FIG3_RNUCA_OPTIMIZABLE_AVG,
            "td_dep_blocks": paper.FIG3_DEP_BLOCK_FRACTION_AVG,
            "td_not_reused": paper.FIG3_NOT_REUSED_AVG,
        },
        notes=(
            "paper: R-NUCA private+shared-RO avg 0.36; dependency blocks "
            "avg 0.96; NotReused avg 0.72"
        ),
    )


# ---------------------------------------------------------------------------
# Figs. 8-15
# ---------------------------------------------------------------------------


def fig8_speedup(results: Results) -> Figure:
    benches = _benches(results)
    series = []
    for pol in ("rnuca", "tdnuca"):
        values = {
            b: results[(b, "snuca")].makespan / results[(b, pol)].makespan
            for b in benches
        }
        series.append(FigureSeries(pol, values))
    return Figure(
        "Fig.8",
        "speedup over S-NUCA",
        series,
        {"rnuca": paper.FIG8_RNUCA_AVG, "tdnuca": paper.FIG8_TDNUCA_AVG},
    )


def fig9_llc_accesses(results: Results) -> Figure:
    return Figure(
        "Fig.9",
        "LLC accesses normalized to S-NUCA",
        _norm_series(results, ["rnuca", "tdnuca"], lambda r: r.machine.llc_accesses),
        {"rnuca": paper.FIG9_RNUCA_AVG, "tdnuca": paper.FIG9_TDNUCA_AVG},
    )


def fig10_hit_ratio(results: Results) -> Figure:
    benches = _benches(results)
    series = [
        FigureSeries(
            pol, {b: results[(b, pol)].machine.llc_hit_ratio for b in benches}
        )
        for pol in ("snuca", "rnuca", "tdnuca")
    ]
    return Figure("Fig.10", "LLC hit ratio", series, dict(paper.FIG10_AVG))


def fig11_nuca_distance(results: Results) -> Figure:
    benches = _benches(results)
    series = [
        FigureSeries(
            pol, {b: results[(b, pol)].machine.mean_nuca_distance for b in benches}
        )
        for pol in ("snuca", "rnuca", "tdnuca")
    ]
    return Figure(
        "Fig.11",
        "average NUCA distance (hops; bypasses excluded)",
        series,
        dict(paper.FIG11_AVG),
    )


def fig12_data_movement(results: Results) -> Figure:
    return Figure(
        "Fig.12",
        "NoC data movement (router-bytes) normalized to S-NUCA",
        _norm_series(results, ["rnuca", "tdnuca"], lambda r: r.machine.router_bytes),
        {"rnuca": paper.FIG12_RNUCA_AVG, "tdnuca": paper.FIG12_TDNUCA_AVG},
    )


def fig13_llc_energy(results: Results) -> Figure:
    return Figure(
        "Fig.13",
        "LLC dynamic energy normalized to S-NUCA",
        _norm_series(results, ["rnuca", "tdnuca"], lambda r: r.machine.energy.llc),
        {"rnuca": paper.FIG13_RNUCA_AVG, "tdnuca": paper.FIG13_TDNUCA_AVG},
    )


def fig14_noc_energy(results: Results) -> Figure:
    return Figure(
        "Fig.14",
        "NoC dynamic energy normalized to S-NUCA",
        _norm_series(results, ["rnuca", "tdnuca"], lambda r: r.machine.energy.noc),
        {"rnuca": paper.FIG14_RNUCA_AVG, "tdnuca": paper.FIG14_TDNUCA_AVG},
    )


def fig15_bypass_only(results: Results) -> Figure:
    """Needs 'tdnuca-bypass-only' runs in the suite."""
    benches = _benches(results)
    series = []
    for pol, label in (
        ("tdnuca-bypass-only", "bypass_only"),
        ("tdnuca", "full_tdnuca"),
    ):
        values = {
            b: results[(b, "snuca")].makespan / results[(b, pol)].makespan
            for b in benches
        }
        series.append(FigureSeries(label, values))
    return Figure(
        "Fig.15",
        "speedup over S-NUCA: bypass-only vs full TD-NUCA",
        series,
        {
            "bypass_only": paper.FIG15_BYPASS_ONLY_AVG,
            "full_tdnuca": paper.FIG8_TDNUCA_AVG,
        },
    )


# ---------------------------------------------------------------------------
# Tables and Section V-E studies
# ---------------------------------------------------------------------------


def table1_rows(cfg: SystemConfig) -> list[list[str]]:
    """Table I: simulator configuration (current config vs paper values)."""
    lat = cfg.latency
    return [
        ["cores", f"{cfg.num_cores} cores, {cfg.mesh_width}x{cfg.mesh_height} mesh"],
        ["L1D", f"{cfg.l1_bytes // 1024}KB, {cfg.l1_assoc}-way, "
                f"{cfg.block_bytes}B/line, {lat.l1_hit} cycles"],
        ["LLC", f"{cfg.llc_total_bytes // 1024}KB total, banked "
                f"{cfg.llc_bank_bytes // 1024}KB/core, {cfg.llc_assoc}-way, "
                f"{lat.llc_hit} cycles, pseudoLRU"],
        ["TLB", f"{cfg.tlb_entries} entries, {lat.tlb_lookup} cycle"],
        ["NoC", f"{cfg.mesh_width}x{cfg.mesh_height} mesh, link "
                f"{lat.noc_link} cycle, router {lat.noc_router} cycle"],
        ["RRT", f"{cfg.rrt_entries} entries/core, {lat.rrt_lookup} cycle"],
        ["scale", f"{cfg.capacity_scale:g} of Table I capacities"],
    ]


def table2_rows(cfg: SystemConfig) -> list[list[str]]:
    """Table II: benchmarks with paper and scaled footprints."""
    rows = []
    for name, cls in BENCHMARKS.items():
        wl = cls()
        program = wl.build(cfg)
        footprint = program.total_footprint_bytes()
        # Count the measured (post-initialisation) tasks, as Table II does.
        main = [t for ph in program.phases[program.warmup_phases :] for t in ph]
        tasks = len(main)
        avg_kb = (
            sum(t.footprint_bytes() for t in main) / tasks / 1024 if tasks else 0
        )
        rows.append(
            [
                wl.paper.bench,
                wl.paper.problem,
                f"{wl.paper.input_mb:.2f}",
                f"{footprint / 1024 / 1024:.2f}",
                f"{wl.paper.num_tasks}",
                f"{tasks}",
                f"{wl.paper.avg_task_kb:.0f}",
                f"{avg_kb:.1f}",
            ]
        )
    return rows


def rrt_occupancy_report(results: Results) -> dict[str, dict[str, float]]:
    """Section V-E: mean/max RRT occupancy per benchmark (TD-NUCA runs)."""
    out = {}
    for b in _benches(results):
        r = results.get((b, "tdnuca"))
        if r is None or r.runtime is None:
            continue
        out[b] = {
            "mean": r.runtime.mean_rrt_occupancy,
            "max": float(r.runtime.occupancy_max),
        }
    return out


def flush_overhead_report(results: Results) -> dict[str, float]:
    """Section V-E: fraction of execution time spent flushing (TD-NUCA)."""
    out = {}
    for b in _benches(results):
        r = results.get((b, "tdnuca"))
        if r is None or r.isa is None:
            continue
        total_busy = sum(r.execution.busy_cycles) or 1
        out[b] = r.isa.flush_cycles / total_busy
    return out


def runtime_overhead_report(results: Results) -> dict[str, float]:
    """Section V-E: runtime-extension overhead — slowdown of the
    extensions-on/ISA-off variant relative to plain S-NUCA."""
    out = {}
    for b in _benches(results):
        base = results.get((b, "snuca"))
        noisa = results.get((b, "tdnuca-noisa"))
        if base is None or noisa is None:
            continue
        out[b] = noisa.makespan / base.makespan - 1.0
    return out
