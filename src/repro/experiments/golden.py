"""Golden stats-equivalence snapshots.

The per-reference hot path is aggressively flattened (batched counters,
allocation-free probes, precomputed geometry — see DESIGN.md), and the
contract for every such optimization is *bit-identical statistics*: the
full :class:`repro.sim.machine.MachineStats` of a small run must not move
by a single count.  This module defines the canonical snapshot form, the
matrix of (workload, policy, fault-spec) cases — every policy, plus
fault-injected runs because ``fail_bank``/``fail_link`` mutate the
precomputed geometry — and the runner shared by the committed snapshots
under ``tests/golden/`` and ``scripts/update_golden_stats.py``.

Floats (energy picojoules, hit ratios, mean NUCA distance) are derived
from integer counters through fixed arithmetic, so exact equality is the
correct comparison; JSON round-trips Python floats losslessly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.config import SystemConfig, scaled_config

__all__ = ["GOLDEN_SCALE", "GOLDEN_CASES", "GoldenCase", "canonical_stats", "run_case"]

#: scale the snapshots run at — small enough that the whole matrix stays
#: test-suite friendly, large enough that every path (evictions, flushes,
#: coherence, bypasses) is exercised.
GOLDEN_SCALE = 1.0 / 1024.0


@dataclass(frozen=True)
class GoldenCase:
    """One snapshot: a workload under a policy, optionally with faults.

    ``mesh`` is ``None`` for the paper's 4x4 geometry; a ``(width, height)``
    pair pins a scale-out machine instead (per-mesh latency table applied,
    clusters stay 2x2).
    """

    workload: str
    policy: str
    fault_spec: str = ""
    seed: int = 0
    mesh: tuple[int, int] | None = None

    @property
    def case_id(self) -> str:
        tag = f"{self.workload}-{self.policy}"
        if self.mesh is not None:
            tag += f"-{self.mesh[0]}x{self.mesh[1]}"
        if self.fault_spec:
            tag += "-faulted"
        return tag

    def config(self) -> SystemConfig:
        cfg = scaled_config(GOLDEN_SCALE)
        if self.mesh is not None:
            from repro.sim.latency import latency_for_mesh

            width, height = self.mesh
            cfg = replace(
                cfg,
                mesh_width=width,
                mesh_height=height,
                latency=latency_for_mesh(width, height),
            )
        if self.fault_spec:
            cfg = replace(cfg, fault_spec=self.fault_spec)
        return cfg


_ALL_POLICIES = (
    "snuca",
    "rnuca",
    "dnuca",
    "tdnuca",
    "tdnuca-bypass-only",
    "tdnuca-noisa",
)
_GOLDEN_WORKLOADS = ("kmeans", "jacobi", "histo")

GOLDEN_CASES: tuple[GoldenCase, ...] = tuple(
    GoldenCase(wl, pol) for wl in _GOLDEN_WORKLOADS for pol in _ALL_POLICIES
) + (
    # Fault-injected runs: bank/link failures rewrite the policy maps and
    # the mesh distance matrix mid-run, so the precomputed-geometry paths
    # must stay exact under recomputation too.
    GoldenCase("kmeans", "tdnuca", "bank:3@task=2,link:1-2@task=4"),
    GoldenCase("kmeans", "snuca", "bank:5@task=0"),
    GoldenCase("jacobi", "rnuca", "link:5-6@task=3"),
    GoldenCase("jacobi", "dnuca", "bank:2@task=1,dram:transient:p=0.02:retries=4"),
    # Scale-out cells: an 8x8 mesh exercises the 64-core latency band, the
    # wider interleave masks and 16 replication clusters — pinned under
    # both kernels so scale-out never drifts from the reference model.
    GoldenCase("kmeans", "tdnuca", mesh=(8, 8)),
    GoldenCase("jacobi", "snuca", mesh=(8, 8)),
)


def _bank_stats_dict(bs) -> dict[str, int]:
    return {
        "hits": bs.hits,
        "misses": bs.misses,
        "read_hits": bs.read_hits,
        "write_hits": bs.write_hits,
        "evictions": bs.evictions,
        "dirty_evictions": bs.dirty_evictions,
        "invalidations": bs.invalidations,
        "flushed_blocks": bs.flushed_blocks,
    }


def canonical_stats(result) -> dict[str, Any]:
    """Flatten one :class:`ExperimentResult` into the snapshot dict.

    Everything the paper's figures consume is covered: demand hit/miss
    counters, per-class NoC bytes, flit-hops, NUCA distance sums, the
    energy breakdown, DRAM traffic, TLB behaviour, the makespan, and the
    degraded-mode fault accounting when present.
    """
    m = result.machine
    traffic = m.traffic
    out: dict[str, Any] = {
        "policy": m.policy,
        "llc": _bank_stats_dict(m.llc),
        "l1": _bank_stats_dict(m.l1),
        "traffic": {
            "router_bytes": traffic.router_bytes,
            "flit_hops": traffic.flit_hops,
            "messages": traffic.messages,
            "nuca_distance_sum": traffic.nuca_distance_sum,
            "nuca_distance_count": traffic.nuca_distance_count,
            "bytes_by_class": {
                cls.name: nbytes for cls, nbytes in sorted(
                    traffic.bytes_by_class.items(), key=lambda kv: kv[0].name
                )
            },
        },
        "energy_pj": {
            "llc": m.energy.llc,
            "noc": m.energy.noc,
            "dram": m.energy.dram,
            "l1": m.energy.l1,
            "rrt": m.energy.rrt,
        },
        "tlb": {
            "hits": m.tlb.hits,
            "misses": m.tlb.misses,
        },
        "dram_reads": m.dram_reads,
        "dram_writes": m.dram_writes,
        "llc_accesses": m.llc_accesses,
        "llc_hit_ratio": m.llc_hit_ratio,
        "mean_nuca_distance": m.mean_nuca_distance,
        "router_bytes": m.router_bytes,
        "bypassed_accesses": m.bypassed_accesses,
        "makespan_cycles": result.execution.makespan_cycles,
        "tasks_executed": result.execution.tasks_executed,
        "unique_blocks": result.unique_blocks,
    }
    if m.faults is not None:
        f = m.faults
        out["faults"] = {
            "banks_failed": f.banks_failed,
            "links_failed": f.links_failed,
            "blocks_lost": f.blocks_lost,
            "dirty_blocks_lost": f.dirty_blocks_lost,
            "l1_copies_dropped": f.l1_copies_dropped,
            "rrt_entries_dropped": f.rrt_entries_dropped,
            "dead_bank_redirects": f.dead_bank_redirects,
            "dram_transient_errors": f.dram_transient_errors,
            "dram_retries": f.dram_retries,
            "dram_retry_cycles": f.dram_retry_cycles,
            "mean_hop_inflation": f.mean_hop_inflation,
        }
    return out


def run_case(case: GoldenCase, kernel: str = "auto") -> dict[str, Any]:
    """Execute one golden case and return its canonical snapshot.

    ``kernel`` pins a simulation backend; the snapshots are the
    cross-kernel equivalence gate, so every backend must reproduce them
    byte-identically (``REPRO_KERNEL`` still takes precedence, as
    everywhere else).
    """
    from repro.api import _run_one

    cfg = case.config()
    if kernel != "auto":
        cfg = replace(cfg, kernel=kernel)
    result = _run_one(case.workload, case.policy, cfg, seed=case.seed)
    return canonical_stats(result)
