"""Crash-tolerant parallel sweep harness.

Long simulation campaigns are the dominant cost of reproduction work, and a
serial double loop loses the whole campaign to one hung or crashed run.
This module runs each :class:`Job` — one ``(workload, policy, seed)`` cell
of a sweep — through a small job engine that provides:

* **Process isolation** — each attempt runs in its own ``multiprocessing``
  worker (spawn-safe: the worker entry point and all job arguments are
  module-level picklables), so a segfault, ``os._exit``, or unbounded hang
  in one run cannot take down the sweep.
* **Per-job wall-clock timeouts** — a worker past its deadline is
  terminated (then killed) and the attempt is recorded as timed out.
* **Bounded retries with exponential backoff** — transient failures
  (worker crashes, timeouts, I/O errors) are retried up to ``retries``
  times with ``backoff * 2**(attempt-1)`` seconds between attempts;
  deterministic errors (:data:`PERMANENT_ERRORS`) fail immediately.
* **Graceful degradation** — a job that exhausts its retries becomes a
  structured :class:`FailedRun` (error class, message, traceback, attempt
  count, elapsed time) in the outcome instead of an exception that aborts
  the sweep.
* **Incremental checkpointing** — with a ``run_dir``, every finished job is
  written atomically as one JSON shard under ``run_dir/shards/`` and the
  sweep identity (config hash, job list, request) is kept in
  ``run_dir/manifest.json``; ``resume=True`` skips jobs with a valid "ok"
  shard and re-runs only failed or missing ones.
* **Graceful preemption** — SIGTERM/SIGINT (or an expired ``deadline``)
  makes every in-flight job write a mid-run simulation snapshot at its
  next task boundary (see :mod:`repro.snapshot`), records it as a
  ``"preempted"`` shard pointing at ``run_dir/snapshots/``, terminates and
  joins all workers, and writes the final manifest with sweep status
  ``"interrupted"``.  A later ``resume=True`` sweep restores each
  preempted job from its snapshot and continues it byte-identically; a
  corrupt snapshot is quarantined to ``*.corrupt`` and the job simply
  reruns from scratch.

With ``workers=1`` and no timeout the engine degrades to an in-process
serial loop (no subprocess overhead) that still retries and checkpoints —
that is the mode :func:`repro.experiments.runner.run_suite` uses by
default, so library callers pay nothing for the robustness they don't ask
for.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import multiprocessing
import os
import signal
import threading
import time
import traceback
from collections import deque
from dataclasses import asdict, dataclass, field, is_dataclass
from multiprocessing import connection
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.experiments.serialize import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    SchemaVersionError,
)
from repro.ioutils import atomic_write
from repro.snapshot import Checkpointer, PreemptedError, load_or_quarantine

__all__ = [
    "Job",
    "FailedRun",
    "CompletedRun",
    "PreemptedRun",
    "SweepOutcome",
    "SweepFailure",
    "run_sweep",
    "load_manifest",
    "config_fingerprint",
    "retry_delay",
    "PERMANENT_ERRORS",
    "MANIFEST_NAME",
    "SHARD_DIR",
    "SNAPSHOT_DIR",
    "CRASH_ENV",
    "SLOW_ENV",
]

MANIFEST_NAME = "manifest.json"
SHARD_DIR = "shards"
SNAPSHOT_DIR = "snapshots"

#: grace period (seconds) a preempting sweep gives its workers to reach a
#: task boundary and write their snapshots before they are killed.
PREEMPT_GRACE = 10.0

#: error classes retrying cannot fix: deterministic programming or
#: configuration mistakes.  Everything else — worker crashes, timeouts,
#: OS-level I/O hiccups — is treated as transient and retried.
PERMANENT_ERRORS = (
    ValueError,
    TypeError,
    KeyError,
    AttributeError,
    NotImplementedError,
)

#: deprecated chaos hook (now an alias for the ``harness.worker.crash``
#: failpoint): set to a job label ("workload/policy") and every isolated
#: worker for that job exits hard with status 99 before running.
CRASH_ENV = "REPRO_HARNESS_CRASH"

#: deprecated chaos hook (now an alias for the ``harness.worker.slow``
#: failpoint): seconds every worker sleeps before running its job.
SLOW_ENV = "REPRO_HARNESS_SLOW"


@dataclass(frozen=True)
class Job:
    """One cell of a sweep."""

    workload: str
    policy: str
    seed: int = 0

    @property
    def label(self) -> str:
        return f"{self.workload}/{self.policy}"

    @property
    def shard_name(self) -> str:
        return f"{self.workload}__{self.policy}__s{self.seed}.json"


@dataclass
class FailedRun:
    """A job that exhausted its retries, as a structured record."""

    workload: str
    policy: str
    seed: int
    error: str  # exception class name, "Timeout", or "WorkerCrash"
    message: str
    traceback: str
    attempts: int
    elapsed: float
    timed_out: bool = False

    def to_dict(self) -> dict[str, Any]:
        d = asdict(self)
        d["elapsed"] = round(self.elapsed, 3)
        return d

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "FailedRun":
        return cls(**{k: raw[k] for k in cls.__dataclass_fields__ if k in raw})


@dataclass
class CompletedRun:
    """A finished job: live :class:`ExperimentResult`, or the flattened
    dict loaded back from a checkpoint shard on resume."""

    workload: str
    policy: str
    seed: int
    attempts: int
    elapsed: float
    result: Any
    from_checkpoint: bool = False

    def result_dict(self) -> dict[str, Any]:
        if isinstance(self.result, dict):
            return self.result
        from repro.experiments.serialize import result_to_dict

        return result_to_dict(self.result)


@dataclass
class PreemptedRun:
    """A job stopped mid-run with its snapshot safely on disk.

    Not a failure: a ``resume=True`` sweep restores the snapshot and
    continues the job to a byte-identical result.
    """

    workload: str
    policy: str
    seed: int
    snapshot: str
    tasks_done: int
    attempts: int = 1
    elapsed: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        d = asdict(self)
        d["elapsed"] = round(self.elapsed, 3)
        return d


@dataclass
class SweepOutcome:
    """Everything a sweep produced, including its failures."""

    completed: list[CompletedRun] = field(default_factory=list)
    failures: list[FailedRun] = field(default_factory=list)
    #: jobs checkpointed mid-run by a signal or deadline (resumable).
    preempted: list[PreemptedRun] = field(default_factory=list)
    #: True when the sweep stopped early (signal or deadline) rather than
    #: draining its plan; the manifest records status "interrupted".
    interrupted: bool = False
    wall_time: float = 0.0

    @property
    def ok(self) -> int:
        return len(self.completed)

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def timed_out(self) -> int:
        return sum(1 for f in self.failures if f.timed_out)

    @property
    def retried(self) -> int:
        return sum(1 for r in self.completed if r.attempts > 1) + sum(
            1 for f in self.failures if f.attempts > 1
        )

    @property
    def from_checkpoint(self) -> int:
        return sum(1 for r in self.completed if r.from_checkpoint)

    def results(self) -> dict[tuple[str, str], Any]:
        """Completed results keyed ``(workload, policy)``."""
        out: dict[tuple[str, str], Any] = {}
        for run in self.completed:
            key = (run.workload, run.policy)
            if key in out:
                raise ValueError(
                    f"duplicate run {run.workload}/{run.policy}: merging by "
                    "(workload, policy) needs one seed per pair"
                )
            out[key] = run.result
        return out

    def result_dicts(self) -> dict[tuple[str, str], dict[str, Any]]:
        """Like :meth:`results` but every value flattened to a dict."""
        out: dict[tuple[str, str], dict[str, Any]] = {}
        for run in self.completed:
            key = (run.workload, run.policy)
            if key in out:
                raise ValueError(
                    f"duplicate run {run.workload}/{run.policy}: merging by "
                    "(workload, policy) needs one seed per pair"
                )
            out[key] = run.result_dict()
        return out


class SweepFailure(RuntimeError):
    """Raised by :func:`repro.experiments.runner.run_suite` when jobs
    failed after retries (the CLI reports failures instead of raising)."""

    def __init__(self, failures: Iterable[FailedRun]):
        self.failures = list(failures)
        shown = ", ".join(
            f"{f.workload}/{f.policy} ({f.error})" for f in self.failures[:5]
        )
        extra = len(self.failures) - 5
        if extra > 0:
            shown += f" and {extra} more"
        super().__init__(f"{len(self.failures)} sweep job(s) failed: {shown}")


def retry_delay(
    attempt: int, backoff: float, *, cap: float = 30.0, rng: Any = None
) -> float:
    """Seconds to wait before retrying after ``attempt`` failures.

    Exponential (``backoff * 2**(attempt-1)``) capped at ``cap``; with an
    ``rng`` (anything exposing ``random()``), full-jitter in the upper
    half of the window so a thundering herd of retries decorrelates — the
    service queue passes one, the sweep harness keeps its deterministic
    schedule by passing none.
    """
    delay = min(cap, backoff * (2 ** (attempt - 1)))
    if rng is None:
        return delay
    return delay * (0.5 + 0.5 * rng.random())


def config_fingerprint(cfg: Any) -> str:
    """Stable hash of a sweep's configuration, stored in the manifest so a
    resume against a differently-configured run directory fails loudly."""
    if is_dataclass(cfg) and not isinstance(cfg, type):
        payload: Any = asdict(cfg)
    else:
        payload = repr(cfg)
    text = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode()).hexdigest()


def _default_runner(
    job: Job, cfg: Any, *, checkpoint=None, resume_from=None
) -> Any:
    # The facade's functional core, not the deprecated run_experiment shim,
    # so library sweeps stay warning-free.
    from repro.api import _run_one

    return _run_one(
        job.workload, job.policy, cfg, seed=job.seed,
        checkpoint=checkpoint, resume_from=resume_from,
    )


def _runner_supports_checkpoint(runner: Callable) -> bool:
    """Whether ``runner`` accepts ``checkpoint=``/``resume_from=`` kwargs.

    Test stubs and third-party runners with the plain ``(job, cfg)``
    signature keep working: they just run without snapshot support (an
    interrupting signal then terminates them and the job reruns fresh on
    resume).
    """
    try:
        params = inspect.signature(runner).parameters
    except (TypeError, ValueError):  # builtins, odd callables
        return False
    if any(p.kind is p.VAR_KEYWORD for p in params.values()):
        return True
    return "checkpoint" in params and "resume_from" in params


def _build_checkpointer(ck_spec: dict[str, Any] | None) -> Checkpointer | None:
    if ck_spec is None:
        return None
    deadline = None
    if ck_spec.get("deadline_secs") is not None:
        deadline = time.monotonic() + max(0.0, ck_spec["deadline_secs"])
    return Checkpointer(
        ck_spec["path"],
        every=ck_spec.get("every", 0),
        deadline=deadline,
        preempt_after_tasks=ck_spec.get("preempt_after_tasks", 0),
    )


def _checkpoint_kwargs(ck: Checkpointer | None, ck_spec: dict[str, Any] | None):
    """Runner kwargs for a checkpointed attempt; quarantines bad snapshots."""
    if ck is None:
        return {}
    kwargs: dict[str, Any] = {"checkpoint": ck}
    resume_from = ck_spec.get("resume_from")
    if resume_from is not None and load_or_quarantine(resume_from) is not None:
        # The snapshot parses and checksums; meta validation happens in
        # the runner.  A corrupt file was just renamed *.corrupt and the
        # job restarts from scratch.
        kwargs["resume_from"] = resume_from
    return kwargs


def _worker_main(conn_w, runner, job: Job, cfg: Any, ck_spec=None) -> None:
    """Worker entry point (module-level so ``spawn`` can pickle it)."""
    from repro import failpoints

    # Chaos site (the old CRASH_ENV hook feeds it as a deprecated alias):
    # default action exits hard with status 99, emulating a native crash.
    failpoints.fire("harness.worker.crash", job=job.label)
    ck = _build_checkpointer(ck_spec)
    if ck is not None:
        # SIGTERM (forwarded by the parent on its own SIGTERM/SIGINT, or
        # sent by a job scheduler) asks for checkpoint-then-exit at the
        # next task boundary.  SIGINT is ignored: a terminal Ctrl-C hits
        # the whole process group, and the parent coordinates it by
        # forwarding SIGTERM — dying on the raw SIGINT would lose the
        # snapshot.
        try:
            signal.signal(signal.SIGTERM, lambda signum, frame: ck.request_preempt())
            signal.signal(signal.SIGINT, signal.SIG_IGN)
        except ValueError:  # pragma: no cover - non-main-thread embedding
            pass
    # Chaos site (the old SLOW_ENV hook feeds it): sleep before running,
    # so an interrupting signal reliably lands mid-flight.
    failpoints.fire("harness.worker.slow", job=job.label)
    try:
        result = runner(job, cfg, **_checkpoint_kwargs(ck, ck_spec))
        payload = ("ok", result)
    except PreemptedError as exc:
        payload = ("preempted", str(exc.path), exc.tasks_completed)
    except BaseException as exc:  # report everything, incl. SystemExit
        payload = (
            "error",
            type(exc).__name__,
            str(exc),
            traceback.format_exc(),
            isinstance(exc, PERMANENT_ERRORS),
        )
    try:
        conn_w.send(payload)
    except Exception as exc:  # e.g. the result failed to pickle
        try:
            conn_w.send(
                ("error", type(exc).__name__,
                 f"result could not be sent to the parent: {exc}",
                 traceback.format_exc(), True)
            )
        except Exception:
            pass
    finally:
        conn_w.close()


@dataclass
class _Pending:
    job: Job
    attempt: int = 1
    ready_at: float = 0.0
    spent: float = 0.0  # wall time burned by earlier attempts
    resume_from: str | None = None  # snapshot of a previously preempted run


@dataclass
class _Running:
    item: _Pending
    proc: Any
    recv: Any
    started: float
    deadline: float | None


def run_sweep(
    jobs: Sequence[Job | tuple],
    cfg: Any = None,
    *,
    workers: int = 1,
    timeout: float | None = None,
    retries: int = 1,
    backoff: float = 0.5,
    run_dir: str | Path | None = None,
    resume: bool = False,
    isolated: bool | None = None,
    runner: Callable[[Job, Any], Any] | None = None,
    on_event: Callable[[str, Job, str], None] | None = None,
    mp_context: str = "spawn",
    request: dict[str, Any] | None = None,
    checkpoint_every: int = 0,
    deadline: float | None = None,
    preempt_after_tasks: int = 0,
) -> SweepOutcome:
    """Run a sweep plan; never raises for individual job failures.

    ``isolated=None`` auto-selects: subprocess workers whenever ``workers >
    1`` or a ``timeout`` is set, the in-process serial loop otherwise.
    ``runner`` defaults to :func:`run_experiment` on ``cfg``; tests inject
    module-level stubs (they must be picklable for spawn).  ``on_event``
    receives ``(kind, job, detail)`` progress callbacks with kinds
    ``start``/``ok``/``retry``/``failed``/``timeout``/``skipped``/
    ``resumed``/``preempted``/``interrupted``.  ``request`` is recorded verbatim in the
    manifest so a resume can reconstruct the original CLI invocation.

    Preemption: while the sweep runs (from the main thread), SIGTERM and
    SIGINT are trapped — in-flight jobs snapshot at their next task
    boundary, workers are joined, and the function *returns* an outcome
    with ``interrupted=True`` instead of raising ``KeyboardInterrupt``.
    ``checkpoint_every`` adds periodic per-job snapshots, ``deadline``
    (seconds of sweep wall time) triggers the same graceful stop without a
    signal, and ``preempt_after_tasks`` is the deterministic test hook.
    Simulation snapshots need a ``run_dir`` (they live under
    ``run_dir/snapshots/``) and a checkpoint-aware runner; without them a
    signal still stops the sweep cleanly, but mid-run progress is lost.
    """
    plan = [j if isinstance(j, Job) else Job(*j) for j in jobs]
    if len(set(plan)) != len(plan):
        raise ValueError("duplicate jobs in sweep plan")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if backoff < 0:
        raise ValueError("backoff must be >= 0")
    if timeout is not None and timeout <= 0:
        raise ValueError("timeout must be positive")
    if checkpoint_every < 0:
        raise ValueError("checkpoint_every must be >= 0")
    if deadline is not None and deadline <= 0:
        raise ValueError("deadline must be positive")
    if isolated is None:
        isolated = workers > 1 or timeout is not None
    if timeout is not None and not isolated:
        raise ValueError("per-job timeouts require isolated workers")
    if resume and run_dir is None:
        raise ValueError("resume requires the run directory of a prior sweep")
    run = runner if runner is not None else _default_runner
    emit = on_event if on_event is not None else (lambda kind, job, detail: None)

    outcome = SweepOutcome()
    pending = [_Pending(job) for job in plan]
    shard_dir: Path | None = None
    snap_dir: Path | None = None
    rd = Path(run_dir) if run_dir is not None else None
    checkpointable = rd is not None and _runner_supports_checkpoint(run)
    if checkpointable:
        snap_dir = rd / SNAPSHOT_DIR
        snap_dir.mkdir(parents=True, exist_ok=True)
    if rd is not None:
        shard_dir = rd / SHARD_DIR
        shard_dir.mkdir(parents=True, exist_ok=True)
        if resume:
            manifest = load_manifest(rd)
            recorded = manifest.get("config_sha256")
            fingerprint = config_fingerprint(cfg)
            if recorded and recorded != fingerprint:
                raise ValueError(
                    f"cannot resume {rd}: the run directory was created "
                    f"with a different configuration (config_sha256 "
                    f"{recorded[:12]}… != {fingerprint[:12]}…)"
                )
            pending = []
            for job in plan:
                rec = _load_shard(shard_dir / job.shard_name)
                if rec is not None:
                    outcome.completed.append(
                        CompletedRun(
                            job.workload,
                            job.policy,
                            job.seed,
                            attempts=rec.get("attempts", 1),
                            elapsed=rec.get("elapsed", 0.0),
                            result=rec["result"],
                            from_checkpoint=True,
                        )
                    )
                    emit("skipped", job, "already checkpointed")
                    continue
                snapshot = (
                    _load_preempted_snapshot(shard_dir / job.shard_name)
                    if checkpointable
                    else None
                )
                if snapshot is not None:
                    emit("resumed", job, f"continuing from snapshot {snapshot}")
                pending.append(_Pending(job, resume_from=snapshot))
        _write_manifest(rd, plan, cfg, request)

    def complete(job: Job, result: Any, attempts: int, elapsed: float) -> None:
        done = CompletedRun(
            job.workload, job.policy, job.seed,
            attempts=attempts, elapsed=elapsed, result=result,
        )
        outcome.completed.append(done)
        if shard_dir is not None:
            _write_shard(
                shard_dir, job,
                {"status": "ok", "attempts": attempts,
                 "elapsed": round(elapsed, 3), "result": done.result_dict()},
            )
        detail = f"{elapsed:.2f}s"
        if attempts > 1:
            detail += f" after {attempts} attempts"
        emit("ok", job, detail)

    def fail(
        job: Job, error: str, message: str, tb: str,
        attempts: int, elapsed: float, timed_out: bool,
    ) -> None:
        rec = FailedRun(
            job.workload, job.policy, job.seed,
            error=error, message=message, traceback=tb,
            attempts=attempts, elapsed=elapsed, timed_out=timed_out,
        )
        outcome.failures.append(rec)
        if shard_dir is not None:
            _write_shard(
                shard_dir, job,
                {"status": "failed", "attempts": attempts,
                 "elapsed": round(elapsed, 3), "failure": rec.to_dict()},
            )
        emit("timeout" if timed_out else "failed", job,
             f"{error}: {message}"[:200])

    def preempted_cb(
        job: Job, snapshot: str, tasks_done: int, attempts: int, elapsed: float
    ) -> None:
        rec = PreemptedRun(
            job.workload, job.policy, job.seed,
            snapshot=str(snapshot), tasks_done=tasks_done,
            attempts=attempts, elapsed=elapsed,
        )
        outcome.preempted.append(rec)
        if shard_dir is not None:
            _write_shard(
                shard_dir, job,
                {"status": "preempted", "attempts": attempts,
                 "elapsed": round(elapsed, 3),
                 "snapshot": str(snapshot), "tasks_done": tasks_done},
            )
        emit("preempted", job, f"snapshot after {tasks_done} tasks")

    stop = threading.Event()
    deadline_at = time.monotonic() + deadline if deadline is not None else None

    def ck_spec_for(item: _Pending) -> dict[str, Any] | None:
        if not checkpointable:
            return None
        snap_path = snap_dir / (Path(item.job.shard_name).stem + ".snap")
        secs = None
        if deadline_at is not None:
            secs = max(0.0, deadline_at - time.monotonic())
        return {
            "path": str(snap_path),
            "every": checkpoint_every,
            "deadline_secs": secs,
            "preempt_after_tasks": preempt_after_tasks,
            "resume_from": item.resume_from,
        }

    # Signal hygiene: while the sweep runs, SIGTERM/SIGINT mean "checkpoint
    # everything in flight, join every worker, return cleanly" — never an
    # exception that strands children or a half-written run directory.
    # Only the main thread can install handlers; embeddings running the
    # sweep elsewhere keep deadline/periodic checkpointing.
    active_ck: list[Checkpointer | None] = [None]  # inline mode's live job

    def _on_signal(signum, frame):
        stop.set()
        ck = active_ck[0]
        if ck is not None:
            ck.request_preempt()

    old_handlers: dict[int, Any] = {}
    try:
        for signum in (signal.SIGTERM, signal.SIGINT):
            old_handlers[signum] = signal.signal(signum, _on_signal)
    except ValueError:  # pragma: no cover - not the main thread
        pass

    t0 = time.monotonic()
    try:
        if isolated:
            _run_isolated(
                pending, cfg, run, workers, timeout, retries, backoff,
                mp_context, complete, fail, emit,
                stop=stop, deadline_at=deadline_at,
                ck_spec_for=ck_spec_for, preempted=preempted_cb,
            )
        else:
            _run_inline(
                pending, cfg, run, retries, backoff, complete, fail, emit,
                stop=stop, deadline_at=deadline_at,
                ck_spec_for=ck_spec_for, preempted=preempted_cb,
                active_ck=active_ck,
            )
    finally:
        for signum, handler in old_handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, TypeError):  # pragma: no cover
                pass
    outcome.interrupted = stop.is_set()
    outcome.wall_time = time.monotonic() - t0
    outcome.failures.sort(key=lambda f: (f.workload, f.policy, f.seed))
    outcome.preempted.sort(key=lambda p: (p.workload, p.policy, p.seed))
    if rd is not None:
        _write_manifest(rd, plan, cfg, request, outcome=outcome)
    return outcome


def _run_inline(
    pending: list[_Pending],
    cfg: Any,
    runner: Callable[..., Any],
    retries: int,
    backoff: float,
    complete: Callable,
    fail: Callable,
    emit: Callable,
    stop: threading.Event | None = None,
    deadline_at: float | None = None,
    ck_spec_for: Callable[[_Pending], dict | None] | None = None,
    preempted: Callable | None = None,
    active_ck: list | None = None,
) -> None:
    """Serial in-process execution: retries and checkpoints, no isolation.

    The parent *is* the worker here, so the sweep's signal handler preempts
    the in-flight job through ``active_ck`` and this loop simply stops
    starting new jobs once ``stop`` is set.
    """
    for item in pending:
        if deadline_at is not None and time.monotonic() >= deadline_at:
            if stop is not None:
                stop.set()
        if stop is not None and stop.is_set():
            emit("interrupted", item.job, "not started")
            continue
        job = item.job
        attempt, spent = item.attempt, item.spent
        while True:
            emit("start", job, f"attempt {attempt}")
            ck_spec = ck_spec_for(item) if ck_spec_for is not None else None
            ck = _build_checkpointer(ck_spec)
            if active_ck is not None:
                active_ck[0] = ck
            t0 = time.monotonic()
            try:
                result = runner(job, cfg, **_checkpoint_kwargs(ck, ck_spec))
            except PreemptedError as exc:
                spent += time.monotonic() - t0
                # A deadline preemption stops the whole sweep; the
                # per-task test trigger only stops this job.
                if (
                    stop is not None
                    and ck is not None
                    and ck.deadline is not None
                    and time.monotonic() >= ck.deadline
                ):
                    stop.set()
                if preempted is not None:
                    preempted(job, str(exc.path), exc.tasks_completed,
                              attempt, spent)
                break
            except Exception as exc:
                spent += time.monotonic() - t0
                permanent = isinstance(exc, PERMANENT_ERRORS)
                interrupted = stop is not None and stop.is_set()
                if not permanent and not interrupted and attempt <= retries:
                    emit("retry", job, f"attempt {attempt}: {type(exc).__name__}")
                    if backoff:
                        time.sleep(retry_delay(attempt, backoff))
                    attempt += 1
                    continue
                fail(job, type(exc).__name__, str(exc),
                     traceback.format_exc(), attempt, spent, False)
                break
            finally:
                if active_ck is not None:
                    active_ck[0] = None
            spent += time.monotonic() - t0
            complete(job, result, attempt, spent)
            break


def _run_isolated(
    pending: list[_Pending],
    cfg: Any,
    runner: Callable[..., Any],
    workers: int,
    timeout: float | None,
    retries: int,
    backoff: float,
    mp_context: str,
    complete: Callable,
    fail: Callable,
    emit: Callable,
    stop: threading.Event | None = None,
    deadline_at: float | None = None,
    ck_spec_for: Callable[[_Pending], dict | None] | None = None,
    preempted: Callable | None = None,
) -> None:
    """Parallel execution, one subprocess per attempt, deadline-enforced.

    When ``stop`` is set (signal) or ``deadline_at`` passes, the loop
    drains: no new launches, SIGTERM to every worker so each checkpoints
    at its next task boundary, a :data:`PREEMPT_GRACE` window to finish
    writing, then SIGKILL for stragglers.  Every child is joined before
    this function returns — an interrupted sweep leaves no orphans.
    """
    ctx = multiprocessing.get_context(mp_context)
    queue: deque[_Pending] = deque(pending)
    running: dict[Any, _Running] = {}
    draining = False
    grace_deadline = 0.0

    def handle_failure(
        item: _Pending, error: str, message: str, tb: str,
        permanent: bool, timed_out: bool, spent: float,
    ) -> None:
        retryable = not permanent and item.attempt <= retries and not draining
        if retryable:
            delay = retry_delay(item.attempt, backoff)
            queue.append(
                _Pending(item.job, item.attempt + 1,
                         time.monotonic() + delay, spent, item.resume_from)
            )
            emit("retry", item.job, f"attempt {item.attempt}: {error}")
        else:
            fail(item.job, error, message, tb, item.attempt, spent, timed_out)

    try:
        while queue or running:
            now = time.monotonic()
            if (
                deadline_at is not None
                and stop is not None
                and not stop.is_set()
                and now >= deadline_at
            ):
                stop.set()
            if stop is not None and stop.is_set() and not draining:
                draining = True
                grace_deadline = now + PREEMPT_GRACE
                while queue:
                    item = queue.popleft()
                    emit("interrupted", item.job, "not started")
                for r in running.values():
                    if r.proc.is_alive():
                        # Checkpoint-aware workers trap this and snapshot
                        # at the next task boundary; others just exit.
                        r.proc.terminate()
            if draining and running and time.monotonic() >= grace_deadline:
                for r in running.values():
                    if r.proc.is_alive():
                        r.proc.kill()
            # Launch every ready pending job while a worker slot is free;
            # items still backing off rotate to the back of the queue.
            if not draining:
                for _ in range(len(queue)):
                    if len(running) >= workers:
                        break
                    item = queue.popleft()
                    if item.ready_at > now:
                        queue.append(item)
                        continue
                    recv, send = ctx.Pipe(duplex=False)
                    ck_spec = ck_spec_for(item) if ck_spec_for is not None else None
                    proc = ctx.Process(
                        target=_worker_main,
                        args=(send, runner, item.job, cfg, ck_spec),
                        daemon=True,
                    )
                    proc.start()
                    send.close()  # keep only the child's end open for EOF
                    started = time.monotonic()
                    running[proc.sentinel] = _Running(
                        item, proc, recv, started,
                        started + timeout if timeout is not None else None,
                    )
                    emit("start", item.job, f"attempt {item.attempt}")

            # Block until a child exits, a deadline passes, or a backoff
            # window opens.
            wait_for = 0.25
            now = time.monotonic()
            if running:
                deadlines = [
                    r.deadline for r in running.values() if r.deadline is not None
                ]
                if deadlines:
                    wait_for = max(0.0, min(wait_for, min(deadlines) - now))
                connection.wait(list(running), timeout=wait_for)
            elif queue:
                soonest = min(item.ready_at for item in queue)
                if soonest > now:
                    time.sleep(min(soonest - now, wait_for))

            # Reap exited children and enforce deadlines.
            now = time.monotonic()
            for sentinel, r in list(running.items()):
                alive = r.proc.is_alive()
                expired = r.deadline is not None and now >= r.deadline
                if alive and not expired and not draining:
                    continue
                if alive and draining and now < grace_deadline:
                    continue  # still inside the checkpoint grace window
                del running[sentinel]
                if alive:
                    r.proc.terminate()
                    r.proc.join(1.0)
                    if r.proc.is_alive():
                        r.proc.kill()
                        r.proc.join(10.0)
                msg = None
                if r.recv.poll():
                    try:
                        msg = r.recv.recv()
                    except (EOFError, OSError):
                        msg = None
                r.recv.close()
                exitcode = r.proc.exitcode
                spent = r.item.spent + (time.monotonic() - r.started)
                if msg is not None and msg[0] == "ok":
                    complete(r.item.job, msg[1], r.item.attempt, spent)
                elif msg is not None and msg[0] == "preempted":
                    if preempted is not None:
                        preempted(r.item.job, msg[1], msg[2],
                                  r.item.attempt, spent)
                elif alive and not draining:  # killed: deadline exceeded
                    handle_failure(
                        r.item, "Timeout",
                        f"worker exceeded the {timeout}s deadline", "",
                        permanent=False, timed_out=True, spent=spent,
                    )
                elif msg is not None:
                    _, error, message, tb, permanent = msg
                    handle_failure(
                        r.item, error, message, tb,
                        permanent=permanent, timed_out=False, spent=spent,
                    )
                elif draining:
                    # Terminated before reaching a checkpoint (or no
                    # checkpoint support): no shard is written, so a
                    # resume simply reruns the job from scratch.
                    emit("interrupted", r.item.job,
                         "stopped before reaching a checkpoint")
                else:  # died without a word: native crash, os._exit, signal
                    handle_failure(
                        r.item, "WorkerCrash",
                        f"worker exited with code {exitcode} "
                        "before reporting a result", "",
                        permanent=False, timed_out=False, spent=spent,
                    )
    finally:
        # Belt and braces: whatever path exits this loop, no child of the
        # sweep survives it.
        for r in running.values():
            if r.proc.is_alive():
                r.proc.kill()
            r.recv.close()
        for r in running.values():
            r.proc.join(10.0)


# --------------------------------------------------------------------------
# checkpoint shards and manifest


def _write_shard(shard_dir: Path, job: Job, record: dict[str, Any]) -> None:
    record = {
        "schema_version": SCHEMA_VERSION,
        "workload": job.workload,
        "policy": job.policy,
        "seed": job.seed,
        **record,
    }
    with atomic_write(shard_dir / job.shard_name) as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _load_shard(path: Path) -> dict[str, Any] | None:
    """A shard's record iff it is a valid, current, completed ("ok") shard;
    missing, corrupt, stale-schema, and failed shards all return ``None``
    so the job is simply re-run."""
    try:
        raw = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if (
        not isinstance(raw, dict)
        or raw.get("schema_version") not in SUPPORTED_SCHEMA_VERSIONS
    ):
        return None
    if raw.get("status") != "ok" or not isinstance(raw.get("result"), dict):
        return None
    return raw


def _load_preempted_snapshot(path: Path) -> str | None:
    """The snapshot path recorded by a valid "preempted" shard, else None.

    Missing/corrupt shards, stale schemas, other statuses, and shards whose
    snapshot file has since vanished all return ``None`` — the job then
    reruns from scratch, which is always correct (just slower)."""
    try:
        raw = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if (
        not isinstance(raw, dict)
        or raw.get("schema_version") not in SUPPORTED_SCHEMA_VERSIONS
    ):
        return None
    if raw.get("status") != "preempted":
        return None
    snapshot = raw.get("snapshot")
    if not isinstance(snapshot, str) or not Path(snapshot).is_file():
        return None
    return snapshot


def _write_manifest(
    run_dir: Path,
    plan: list[Job],
    cfg: Any,
    request: dict[str, Any] | None,
    outcome: SweepOutcome | None = None,
) -> None:
    doc: dict[str, Any] = {
        "kind": "sweep-manifest",
        "schema_version": SCHEMA_VERSION,
        "config_sha256": config_fingerprint(cfg),
        "request": dict(request or {}),
        "jobs": [[j.workload, j.policy, j.seed] for j in plan],
    }
    if outcome is not None:
        status: dict[str, Any] = {}
        for run in outcome.completed:
            status[f"{run.workload}/{run.policy}"] = {
                "status": "ok",
                "attempts": run.attempts,
                "elapsed": round(run.elapsed, 3),
                "from_checkpoint": run.from_checkpoint,
            }
        for rec in outcome.failures:
            status[f"{rec.workload}/{rec.policy}"] = {
                "status": "timeout" if rec.timed_out else "failed",
                "attempts": rec.attempts,
                "elapsed": round(rec.elapsed, 3),
            }
        for pre in outcome.preempted:
            status[f"{pre.workload}/{pre.policy}"] = {
                "status": "preempted",
                "attempts": pre.attempts,
                "elapsed": round(pre.elapsed, 3),
                "snapshot": pre.snapshot,
                "tasks_done": pre.tasks_done,
            }
        doc["status"] = status
        doc["failures"] = [f.to_dict() for f in outcome.failures]
        doc["preempted"] = [p.to_dict() for p in outcome.preempted]
        doc["sweep_status"] = (
            "interrupted" if outcome.interrupted else "complete"
        )
        doc["wall_time_s"] = round(outcome.wall_time, 3)
    with atomic_write(Path(run_dir) / MANIFEST_NAME) as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_manifest(run_dir: str | Path) -> dict[str, Any]:
    """The manifest of a prior sweep, validated; raises ``ValueError`` with
    a clear message when ``run_dir`` is not a resumable sweep directory."""
    path = Path(run_dir) / MANIFEST_NAME
    try:
        raw = json.loads(path.read_text())
    except FileNotFoundError:
        raise ValueError(
            f"{path} not found — {run_dir} is not a sweep run directory"
        ) from None
    except (OSError, ValueError) as exc:
        raise ValueError(f"corrupt sweep manifest {path}: {exc}") from exc
    if not isinstance(raw, dict) or raw.get("kind") != "sweep-manifest":
        raise ValueError(f"{path} is not a sweep manifest")
    if raw.get("schema_version") not in SUPPORTED_SCHEMA_VERSIONS:
        raise SchemaVersionError(raw.get("schema_version"), path=path)
    if not isinstance(raw.get("jobs"), list):
        raise ValueError(f"{path}: manifest is missing its job list")
    return raw
