"""Crash-tolerant parallel sweep harness.

Long simulation campaigns are the dominant cost of reproduction work, and a
serial double loop loses the whole campaign to one hung or crashed run.
This module runs each :class:`Job` — one ``(workload, policy, seed)`` cell
of a sweep — through a small job engine that provides:

* **Process isolation** — each attempt runs in its own ``multiprocessing``
  worker (spawn-safe: the worker entry point and all job arguments are
  module-level picklables), so a segfault, ``os._exit``, or unbounded hang
  in one run cannot take down the sweep.
* **Per-job wall-clock timeouts** — a worker past its deadline is
  terminated (then killed) and the attempt is recorded as timed out.
* **Bounded retries with exponential backoff** — transient failures
  (worker crashes, timeouts, I/O errors) are retried up to ``retries``
  times with ``backoff * 2**(attempt-1)`` seconds between attempts;
  deterministic errors (:data:`PERMANENT_ERRORS`) fail immediately.
* **Graceful degradation** — a job that exhausts its retries becomes a
  structured :class:`FailedRun` (error class, message, traceback, attempt
  count, elapsed time) in the outcome instead of an exception that aborts
  the sweep.
* **Incremental checkpointing** — with a ``run_dir``, every finished job is
  written atomically as one JSON shard under ``run_dir/shards/`` and the
  sweep identity (config hash, job list, request) is kept in
  ``run_dir/manifest.json``; ``resume=True`` skips jobs with a valid "ok"
  shard and re-runs only failed or missing ones.

With ``workers=1`` and no timeout the engine degrades to an in-process
serial loop (no subprocess overhead) that still retries and checkpoints —
that is the mode :func:`repro.experiments.runner.run_suite` uses by
default, so library callers pay nothing for the robustness they don't ask
for.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
import traceback
from collections import deque
from dataclasses import asdict, dataclass, field, is_dataclass
from multiprocessing import connection
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.experiments.serialize import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    SchemaVersionError,
)
from repro.ioutils import atomic_write

__all__ = [
    "Job",
    "FailedRun",
    "CompletedRun",
    "SweepOutcome",
    "SweepFailure",
    "run_sweep",
    "load_manifest",
    "config_fingerprint",
    "PERMANENT_ERRORS",
    "MANIFEST_NAME",
    "SHARD_DIR",
    "CRASH_ENV",
]

MANIFEST_NAME = "manifest.json"
SHARD_DIR = "shards"

#: error classes retrying cannot fix: deterministic programming or
#: configuration mistakes.  Everything else — worker crashes, timeouts,
#: OS-level I/O hiccups — is treated as transient and retried.
PERMANENT_ERRORS = (
    ValueError,
    TypeError,
    KeyError,
    AttributeError,
    NotImplementedError,
)

#: chaos hook for tests and CI smoke runs: set to a job label
#: ("workload/policy") and every isolated worker for that job exits hard
#: with status 99 before running, emulating a native crash.
CRASH_ENV = "REPRO_HARNESS_CRASH"


@dataclass(frozen=True)
class Job:
    """One cell of a sweep."""

    workload: str
    policy: str
    seed: int = 0

    @property
    def label(self) -> str:
        return f"{self.workload}/{self.policy}"

    @property
    def shard_name(self) -> str:
        return f"{self.workload}__{self.policy}__s{self.seed}.json"


@dataclass
class FailedRun:
    """A job that exhausted its retries, as a structured record."""

    workload: str
    policy: str
    seed: int
    error: str  # exception class name, "Timeout", or "WorkerCrash"
    message: str
    traceback: str
    attempts: int
    elapsed: float
    timed_out: bool = False

    def to_dict(self) -> dict[str, Any]:
        d = asdict(self)
        d["elapsed"] = round(self.elapsed, 3)
        return d

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "FailedRun":
        return cls(**{k: raw[k] for k in cls.__dataclass_fields__ if k in raw})


@dataclass
class CompletedRun:
    """A finished job: live :class:`ExperimentResult`, or the flattened
    dict loaded back from a checkpoint shard on resume."""

    workload: str
    policy: str
    seed: int
    attempts: int
    elapsed: float
    result: Any
    from_checkpoint: bool = False

    def result_dict(self) -> dict[str, Any]:
        if isinstance(self.result, dict):
            return self.result
        from repro.experiments.serialize import result_to_dict

        return result_to_dict(self.result)


@dataclass
class SweepOutcome:
    """Everything a sweep produced, including its failures."""

    completed: list[CompletedRun] = field(default_factory=list)
    failures: list[FailedRun] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def ok(self) -> int:
        return len(self.completed)

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def timed_out(self) -> int:
        return sum(1 for f in self.failures if f.timed_out)

    @property
    def retried(self) -> int:
        return sum(1 for r in self.completed if r.attempts > 1) + sum(
            1 for f in self.failures if f.attempts > 1
        )

    @property
    def from_checkpoint(self) -> int:
        return sum(1 for r in self.completed if r.from_checkpoint)

    def results(self) -> dict[tuple[str, str], Any]:
        """Completed results keyed ``(workload, policy)``."""
        out: dict[tuple[str, str], Any] = {}
        for run in self.completed:
            key = (run.workload, run.policy)
            if key in out:
                raise ValueError(
                    f"duplicate run {run.workload}/{run.policy}: merging by "
                    "(workload, policy) needs one seed per pair"
                )
            out[key] = run.result
        return out

    def result_dicts(self) -> dict[tuple[str, str], dict[str, Any]]:
        """Like :meth:`results` but every value flattened to a dict."""
        out: dict[tuple[str, str], dict[str, Any]] = {}
        for run in self.completed:
            key = (run.workload, run.policy)
            if key in out:
                raise ValueError(
                    f"duplicate run {run.workload}/{run.policy}: merging by "
                    "(workload, policy) needs one seed per pair"
                )
            out[key] = run.result_dict()
        return out


class SweepFailure(RuntimeError):
    """Raised by :func:`repro.experiments.runner.run_suite` when jobs
    failed after retries (the CLI reports failures instead of raising)."""

    def __init__(self, failures: Iterable[FailedRun]):
        self.failures = list(failures)
        shown = ", ".join(
            f"{f.workload}/{f.policy} ({f.error})" for f in self.failures[:5]
        )
        extra = len(self.failures) - 5
        if extra > 0:
            shown += f" and {extra} more"
        super().__init__(f"{len(self.failures)} sweep job(s) failed: {shown}")


def config_fingerprint(cfg: Any) -> str:
    """Stable hash of a sweep's configuration, stored in the manifest so a
    resume against a differently-configured run directory fails loudly."""
    if is_dataclass(cfg) and not isinstance(cfg, type):
        payload: Any = asdict(cfg)
    else:
        payload = repr(cfg)
    text = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode()).hexdigest()


def _default_runner(job: Job, cfg: Any) -> Any:
    # The facade's functional core, not the deprecated run_experiment shim,
    # so library sweeps stay warning-free.
    from repro.api import _run_one

    return _run_one(job.workload, job.policy, cfg, seed=job.seed)


def _worker_main(conn_w, runner, job: Job, cfg: Any) -> None:
    """Worker entry point (module-level so ``spawn`` can pickle it)."""
    if os.environ.get(CRASH_ENV, "") == job.label:
        os._exit(99)
    try:
        result = runner(job, cfg)
        payload = ("ok", result)
    except BaseException as exc:  # report everything, incl. SystemExit
        payload = (
            "error",
            type(exc).__name__,
            str(exc),
            traceback.format_exc(),
            isinstance(exc, PERMANENT_ERRORS),
        )
    try:
        conn_w.send(payload)
    except Exception as exc:  # e.g. the result failed to pickle
        try:
            conn_w.send(
                ("error", type(exc).__name__,
                 f"result could not be sent to the parent: {exc}",
                 traceback.format_exc(), True)
            )
        except Exception:
            pass
    finally:
        conn_w.close()


@dataclass
class _Pending:
    job: Job
    attempt: int = 1
    ready_at: float = 0.0
    spent: float = 0.0  # wall time burned by earlier attempts


@dataclass
class _Running:
    item: _Pending
    proc: Any
    recv: Any
    started: float
    deadline: float | None


def run_sweep(
    jobs: Sequence[Job | tuple],
    cfg: Any = None,
    *,
    workers: int = 1,
    timeout: float | None = None,
    retries: int = 1,
    backoff: float = 0.5,
    run_dir: str | Path | None = None,
    resume: bool = False,
    isolated: bool | None = None,
    runner: Callable[[Job, Any], Any] | None = None,
    on_event: Callable[[str, Job, str], None] | None = None,
    mp_context: str = "spawn",
    request: dict[str, Any] | None = None,
) -> SweepOutcome:
    """Run a sweep plan; never raises for individual job failures.

    ``isolated=None`` auto-selects: subprocess workers whenever ``workers >
    1`` or a ``timeout`` is set, the in-process serial loop otherwise.
    ``runner`` defaults to :func:`run_experiment` on ``cfg``; tests inject
    module-level stubs (they must be picklable for spawn).  ``on_event``
    receives ``(kind, job, detail)`` progress callbacks with kinds
    ``start``/``ok``/``retry``/``failed``/``timeout``/``skipped``.
    ``request`` is recorded verbatim in the manifest so a resume can
    reconstruct the original CLI invocation.
    """
    plan = [j if isinstance(j, Job) else Job(*j) for j in jobs]
    if len(set(plan)) != len(plan):
        raise ValueError("duplicate jobs in sweep plan")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if backoff < 0:
        raise ValueError("backoff must be >= 0")
    if timeout is not None and timeout <= 0:
        raise ValueError("timeout must be positive")
    if isolated is None:
        isolated = workers > 1 or timeout is not None
    if timeout is not None and not isolated:
        raise ValueError("per-job timeouts require isolated workers")
    if resume and run_dir is None:
        raise ValueError("resume requires the run directory of a prior sweep")
    run = runner if runner is not None else _default_runner
    emit = on_event if on_event is not None else (lambda kind, job, detail: None)

    outcome = SweepOutcome()
    pending = list(plan)
    shard_dir: Path | None = None
    rd = Path(run_dir) if run_dir is not None else None
    if rd is not None:
        shard_dir = rd / SHARD_DIR
        shard_dir.mkdir(parents=True, exist_ok=True)
        if resume:
            manifest = load_manifest(rd)
            recorded = manifest.get("config_sha256")
            fingerprint = config_fingerprint(cfg)
            if recorded and recorded != fingerprint:
                raise ValueError(
                    f"cannot resume {rd}: the run directory was created "
                    f"with a different configuration (config_sha256 "
                    f"{recorded[:12]}… != {fingerprint[:12]}…)"
                )
            pending = []
            for job in plan:
                rec = _load_shard(shard_dir / job.shard_name)
                if rec is not None:
                    outcome.completed.append(
                        CompletedRun(
                            job.workload,
                            job.policy,
                            job.seed,
                            attempts=rec.get("attempts", 1),
                            elapsed=rec.get("elapsed", 0.0),
                            result=rec["result"],
                            from_checkpoint=True,
                        )
                    )
                    emit("skipped", job, "already checkpointed")
                else:
                    pending.append(job)
        _write_manifest(rd, plan, cfg, request)

    def complete(job: Job, result: Any, attempts: int, elapsed: float) -> None:
        done = CompletedRun(
            job.workload, job.policy, job.seed,
            attempts=attempts, elapsed=elapsed, result=result,
        )
        outcome.completed.append(done)
        if shard_dir is not None:
            _write_shard(
                shard_dir, job,
                {"status": "ok", "attempts": attempts,
                 "elapsed": round(elapsed, 3), "result": done.result_dict()},
            )
        detail = f"{elapsed:.2f}s"
        if attempts > 1:
            detail += f" after {attempts} attempts"
        emit("ok", job, detail)

    def fail(
        job: Job, error: str, message: str, tb: str,
        attempts: int, elapsed: float, timed_out: bool,
    ) -> None:
        rec = FailedRun(
            job.workload, job.policy, job.seed,
            error=error, message=message, traceback=tb,
            attempts=attempts, elapsed=elapsed, timed_out=timed_out,
        )
        outcome.failures.append(rec)
        if shard_dir is not None:
            _write_shard(
                shard_dir, job,
                {"status": "failed", "attempts": attempts,
                 "elapsed": round(elapsed, 3), "failure": rec.to_dict()},
            )
        emit("timeout" if timed_out else "failed", job,
             f"{error}: {message}"[:200])

    t0 = time.monotonic()
    if isolated:
        _run_isolated(
            pending, cfg, run, workers, timeout, retries, backoff,
            mp_context, complete, fail, emit,
        )
    else:
        _run_inline(pending, cfg, run, retries, backoff, complete, fail, emit)
    outcome.wall_time = time.monotonic() - t0
    outcome.failures.sort(key=lambda f: (f.workload, f.policy, f.seed))
    if rd is not None:
        _write_manifest(rd, plan, cfg, request, outcome=outcome)
    return outcome


def _run_inline(
    pending: list[Job],
    cfg: Any,
    runner: Callable[[Job, Any], Any],
    retries: int,
    backoff: float,
    complete: Callable,
    fail: Callable,
    emit: Callable,
) -> None:
    """Serial in-process execution: retries and checkpoints, no isolation."""
    for job in pending:
        attempt, spent = 1, 0.0
        while True:
            emit("start", job, f"attempt {attempt}")
            t0 = time.monotonic()
            try:
                result = runner(job, cfg)
            except Exception as exc:
                spent += time.monotonic() - t0
                permanent = isinstance(exc, PERMANENT_ERRORS)
                if not permanent and attempt <= retries:
                    emit("retry", job, f"attempt {attempt}: {type(exc).__name__}")
                    if backoff:
                        time.sleep(backoff * (2 ** (attempt - 1)))
                    attempt += 1
                    continue
                fail(job, type(exc).__name__, str(exc),
                     traceback.format_exc(), attempt, spent, False)
                break
            spent += time.monotonic() - t0
            complete(job, result, attempt, spent)
            break


def _run_isolated(
    pending: list[Job],
    cfg: Any,
    runner: Callable[[Job, Any], Any],
    workers: int,
    timeout: float | None,
    retries: int,
    backoff: float,
    mp_context: str,
    complete: Callable,
    fail: Callable,
    emit: Callable,
) -> None:
    """Parallel execution, one subprocess per attempt, deadline-enforced."""
    ctx = multiprocessing.get_context(mp_context)
    queue: deque[_Pending] = deque(_Pending(job) for job in pending)
    running: dict[Any, _Running] = {}

    def handle_failure(
        item: _Pending, error: str, message: str, tb: str,
        permanent: bool, timed_out: bool, spent: float,
    ) -> None:
        if not permanent and item.attempt <= retries:
            delay = backoff * (2 ** (item.attempt - 1))
            queue.append(
                _Pending(item.job, item.attempt + 1,
                         time.monotonic() + delay, spent)
            )
            emit("retry", item.job, f"attempt {item.attempt}: {error}")
        else:
            fail(item.job, error, message, tb, item.attempt, spent, timed_out)

    try:
        while queue or running:
            now = time.monotonic()
            # Launch every ready pending job while a worker slot is free;
            # items still backing off rotate to the back of the queue.
            for _ in range(len(queue)):
                if len(running) >= workers:
                    break
                item = queue.popleft()
                if item.ready_at > now:
                    queue.append(item)
                    continue
                recv, send = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_worker_main, args=(send, runner, item.job, cfg),
                    daemon=True,
                )
                proc.start()
                send.close()  # keep only the child's end open for EOF
                started = time.monotonic()
                running[proc.sentinel] = _Running(
                    item, proc, recv, started,
                    started + timeout if timeout is not None else None,
                )
                emit("start", item.job, f"attempt {item.attempt}")

            # Block until a child exits, a deadline passes, or a backoff
            # window opens.
            wait_for = 0.25
            now = time.monotonic()
            if running:
                deadlines = [
                    r.deadline for r in running.values() if r.deadline is not None
                ]
                if deadlines:
                    wait_for = max(0.0, min(wait_for, min(deadlines) - now))
                connection.wait(list(running), timeout=wait_for)
            elif queue:
                soonest = min(item.ready_at for item in queue)
                if soonest > now:
                    time.sleep(min(soonest - now, wait_for))

            # Reap exited children and enforce deadlines.
            now = time.monotonic()
            for sentinel, r in list(running.items()):
                alive = r.proc.is_alive()
                expired = r.deadline is not None and now >= r.deadline
                if alive and not expired:
                    continue
                del running[sentinel]
                if alive:
                    r.proc.terminate()
                    r.proc.join(1.0)
                    if r.proc.is_alive():
                        r.proc.kill()
                        r.proc.join(10.0)
                msg = None
                if r.recv.poll():
                    try:
                        msg = r.recv.recv()
                    except (EOFError, OSError):
                        msg = None
                r.recv.close()
                exitcode = r.proc.exitcode
                spent = r.item.spent + (time.monotonic() - r.started)
                if msg is not None and msg[0] == "ok":
                    complete(r.item.job, msg[1], r.item.attempt, spent)
                elif alive:  # we had to kill it: deadline exceeded
                    handle_failure(
                        r.item, "Timeout",
                        f"worker exceeded the {timeout}s deadline", "",
                        permanent=False, timed_out=True, spent=spent,
                    )
                elif msg is not None:
                    _, error, message, tb, permanent = msg
                    handle_failure(
                        r.item, error, message, tb,
                        permanent=permanent, timed_out=False, spent=spent,
                    )
                else:  # died without a word: native crash, os._exit, signal
                    handle_failure(
                        r.item, "WorkerCrash",
                        f"worker exited with code {exitcode} "
                        "before reporting a result", "",
                        permanent=False, timed_out=False, spent=spent,
                    )
    finally:
        for r in running.values():
            if r.proc.is_alive():
                r.proc.kill()
            r.recv.close()


# --------------------------------------------------------------------------
# checkpoint shards and manifest


def _write_shard(shard_dir: Path, job: Job, record: dict[str, Any]) -> None:
    record = {
        "schema_version": SCHEMA_VERSION,
        "workload": job.workload,
        "policy": job.policy,
        "seed": job.seed,
        **record,
    }
    with atomic_write(shard_dir / job.shard_name) as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _load_shard(path: Path) -> dict[str, Any] | None:
    """A shard's record iff it is a valid, current, completed ("ok") shard;
    missing, corrupt, stale-schema, and failed shards all return ``None``
    so the job is simply re-run."""
    try:
        raw = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if (
        not isinstance(raw, dict)
        or raw.get("schema_version") not in SUPPORTED_SCHEMA_VERSIONS
    ):
        return None
    if raw.get("status") != "ok" or not isinstance(raw.get("result"), dict):
        return None
    return raw


def _write_manifest(
    run_dir: Path,
    plan: list[Job],
    cfg: Any,
    request: dict[str, Any] | None,
    outcome: SweepOutcome | None = None,
) -> None:
    doc: dict[str, Any] = {
        "kind": "sweep-manifest",
        "schema_version": SCHEMA_VERSION,
        "config_sha256": config_fingerprint(cfg),
        "request": dict(request or {}),
        "jobs": [[j.workload, j.policy, j.seed] for j in plan],
    }
    if outcome is not None:
        status: dict[str, Any] = {}
        for run in outcome.completed:
            status[f"{run.workload}/{run.policy}"] = {
                "status": "ok",
                "attempts": run.attempts,
                "elapsed": round(run.elapsed, 3),
                "from_checkpoint": run.from_checkpoint,
            }
        for rec in outcome.failures:
            status[f"{rec.workload}/{rec.policy}"] = {
                "status": "timeout" if rec.timed_out else "failed",
                "attempts": rec.attempts,
                "elapsed": round(rec.elapsed, 3),
            }
        doc["status"] = status
        doc["failures"] = [f.to_dict() for f in outcome.failures]
        doc["wall_time_s"] = round(outcome.wall_time, 3)
    with atomic_write(Path(run_dir) / MANIFEST_NAME) as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_manifest(run_dir: str | Path) -> dict[str, Any]:
    """The manifest of a prior sweep, validated; raises ``ValueError`` with
    a clear message when ``run_dir`` is not a resumable sweep directory."""
    path = Path(run_dir) / MANIFEST_NAME
    try:
        raw = json.loads(path.read_text())
    except FileNotFoundError:
        raise ValueError(
            f"{path} not found — {run_dir} is not a sweep run directory"
        ) from None
    except (OSError, ValueError) as exc:
        raise ValueError(f"corrupt sweep manifest {path}: {exc}") from exc
    if not isinstance(raw, dict) or raw.get("kind") != "sweep-manifest":
        raise ValueError(f"{path} is not a sweep manifest")
    if raw.get("schema_version") not in SUPPORTED_SCHEMA_VERSIONS:
        raise SchemaVersionError(raw.get("schema_version"))
    if not isinstance(raw.get("jobs"), list):
        raise ValueError(f"{path}: manifest is missing its job list")
    return raw
