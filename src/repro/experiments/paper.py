"""Reference results digitized from the paper's evaluation section.

Only numbers the text states explicitly are recorded; per-benchmark bars
the text does not quantify are ``None`` (figures compare shapes for those).
All normalized series are relative to S-NUCA.
"""

from __future__ import annotations

BENCHES = ["gauss", "histo", "jacobi", "kmeans", "knn", "lu", "md5", "redblack"]

# --- Fig. 8: speedup over S-NUCA ---
FIG8_TDNUCA = {
    "gauss": 1.26,
    "histo": 1.095,  # "1.09x to 1.10x"
    "jacobi": 1.095,
    "kmeans": 1.095,
    "knn": 1.04,
    "lu": 1.59,
    "md5": 1.04,
    "redblack": 1.20,
}
FIG8_TDNUCA_AVG = 1.18
FIG8_RNUCA = {
    "gauss": 1.11,
    "histo": None,  # "below 1.05x in the rest"
    "jacobi": None,
    "kmeans": None,
    "knn": None,
    "lu": None,
    "md5": None,
    "redblack": None,
}
FIG8_RNUCA_AVG = 1.02

# --- Fig. 9: LLC accesses normalized to S-NUCA ---
FIG9_TDNUCA = {
    "knn": 0.99,
    "md5": 0.14,
}
FIG9_TDNUCA_AVG = 0.48
FIG9_RNUCA_AVG = 0.99  # "within 0.02x of S-NUCA in all benchmarks"

# --- Fig. 10: LLC hit ratio (absolute) ---
FIG10_AVG = {"snuca": 0.41, "rnuca": 0.40, "tdnuca": 0.74}
FIG10_HIGH_HIT_BENCHES = ("lu", "knn")  # all ~100%, within 2%

# --- Fig. 11: average NUCA distance (absolute hops) ---
FIG11_AVG = {"snuca": 2.49, "rnuca": 1.46, "tdnuca": 1.91}
#: benchmarks where TD-NUCA beats R-NUCA on distance (few bypassed blocks).
FIG11_TD_BEATS_R = ("histo", "knn", "lu")

# --- Fig. 12: NoC data movement normalized to S-NUCA ---
FIG12_TDNUCA = {"md5": 0.58, "gauss": 0.70, "histo": 0.70}
FIG12_TDNUCA_AVG = 0.62
FIG12_RNUCA_AVG = 0.84

# --- Fig. 13: LLC dynamic energy normalized to S-NUCA ---
FIG13_TDNUCA = {"jacobi": 0.10}
FIG13_TDNUCA_AVG = 0.52
FIG13_RNUCA_AVG = 1.0
#: LU is the one benchmark where replication raises LLC energy above 1x.
FIG13_LU_ABOVE_ONE = True

# --- Fig. 14: NoC dynamic energy normalized to S-NUCA ---
FIG14_TDNUCA = {"redblack": 0.55, "lu": 0.80}
FIG14_TDNUCA_AVG = 0.64
FIG14_RNUCA = {"md5": 0.68, "lu": 0.98}
FIG14_RNUCA_AVG = 0.88

# --- Fig. 15: TD-NUCA bypass-only variant speedup over S-NUCA ---
FIG15_BYPASS_ONLY_AVG = 1.06
#: bypass-only gives (approximately) no benefit here...
FIG15_NO_BENEFIT = ("histo", "knn", "lu")
#: ...matches the full design here (>=97% NotReused)...
FIG15_MATCHES_FULL = ("jacobi", "kmeans", "md5", "redblack")
#: ...and sits clearly between the two in Gauss.
FIG15_INTERMEDIATE = ("gauss",)

# --- Fig. 3: block classification ---
FIG3_DEP_BLOCK_FRACTION_AVG = 0.96  # blocks inside task dependencies
FIG3_NOT_REUSED_AVG = 0.72
FIG3_RNUCA_OPTIMIZABLE_AVG = 0.36  # private + shared-RO
#: benchmarks with a high (>97%) NotReused fraction.
FIG3_HIGH_NOT_REUSED = ("jacobi", "kmeans", "md5", "redblack")
FIG3_LOW_NOT_REUSED = ("histo", "knn", "lu")
FIG3_GAUSS_NOT_REUSED = 0.94

# --- Section V-E overheads ---
SECVE_RRT_LATENCY_OVERHEADS = {0: 0.0, 1: 0.001, 2: 0.005, 3: 0.011, 4: 0.019}
SECVE_RRT_MEAN_OCCUPANCY = 14.71
SECVE_RRT_MAX_OCCUPANCY = 59  # Redblack
SECVE_RRT_LOW_OCCUPANCY_BENCHES = ("gauss", "histo", "kmeans", "knn")  # max <= 23
SECVE_FLUSH_TIME_FRACTION_MAX = 0.001  # < 0.1% everywhere but Histo
SECVE_FLUSH_TIME_HISTO = 0.0049
SECVE_RUNTIME_OVERHEAD_AVG = 0.0001
SECVE_RUNTIME_OVERHEAD_MAX = 0.0003
