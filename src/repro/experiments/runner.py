"""Run one benchmark under one NUCA policy and collect every statistic the
figures need."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SystemConfig, scaled_config
from repro.core.isa import ISAStats
from repro.runtime.executor import ExecutionStats, Executor
from repro.runtime.extensions import RuntimeExtension, TdNucaRuntime, TdNucaRuntimeStats
from repro.runtime.scheduler import Scheduler
from repro.sim.machine import POLICIES, Machine, MachineStats, build_machine
from repro.stats.counters import RNucaCensus
from repro.workloads.registry import get_workload

__all__ = ["ExperimentResult", "run_experiment", "run_suite", "default_config"]

#: default scale for experiment sweeps: capacities and footprints at 1/64
#: of Table I/II, preserving their ratios.
DEFAULT_SCALE = 1.0 / 64.0


def default_config(scale: float = DEFAULT_SCALE) -> SystemConfig:
    return scaled_config(scale)


@dataclass
class ExperimentResult:
    """Everything measured from one (workload, policy) run."""

    workload: str
    policy: str
    machine: MachineStats
    execution: ExecutionStats
    #: Fig.-3 left bar: whole-run block sharing census.
    rnuca_census: RNucaCensus | None = None
    #: Fig.-3 right bar inputs: dependency usage records (TD-NUCA runs).
    dependency_categories: dict[str, list] | None = None
    runtime: TdNucaRuntimeStats | None = None
    isa: ISAStats | None = None
    #: unique blocks touched over the run.
    unique_blocks: int = 0
    #: blocks covered by task-dependency regions, by Fig.-3 category.
    extra: dict = field(default_factory=dict)

    @property
    def makespan(self) -> int:
        return self.execution.makespan_cycles


def build_runtime(machine: Machine, policy: str) -> RuntimeExtension:
    """The runtime extension matching a policy variant."""
    if policy == "tdnuca":
        return TdNucaRuntime(machine.mesh, machine.isa)
    if policy == "tdnuca-bypass-only":
        return TdNucaRuntime(machine.mesh, machine.isa, bypass_only=True)
    if policy == "tdnuca-noisa":
        return TdNucaRuntime(machine.mesh, machine.isa, execute_isa=False)
    return RuntimeExtension()


def run_experiment(
    workload: str,
    policy: str,
    cfg: SystemConfig | None = None,
    *,
    seed: int = 0,
    rrt_lookup_cycles: int | None = None,
    scheduler: Scheduler | None = None,
    census: bool = True,
) -> ExperimentResult:
    """Build the machine, run the benchmark, snapshot the statistics."""
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}")
    cfg = cfg if cfg is not None else default_config()
    cfg.validate()  # fail early, with a clear message, on nonsense configs
    wl = get_workload(workload)
    program = wl.build(cfg, seed)
    machine = build_machine(
        cfg, policy, rrt_lookup_cycles=rrt_lookup_cycles, seed=seed, census=census
    )
    extension = build_runtime(machine, policy)
    executor = Executor(
        machine,
        scheduler=scheduler,
        extension=extension,
        overlap_mode=wl.tdg_overlap,
    )
    if program.warmup_phases:
        # Initialization phases: run, then reset counters — the paper
        # measures the post-initialisation parallel execution only.
        from repro.runtime.task import Program as _Program

        warmup = _Program(program.name, program.phases[: program.warmup_phases])
        main = _Program(program.name, program.phases[program.warmup_phases :])
        executor.run(warmup)
        machine.reset_stats()
        if isinstance(extension, TdNucaRuntime):
            extension.reset_stats()
        exec_stats = executor.run(main)
    else:
        exec_stats = executor.run(program)

    result = ExperimentResult(
        workload=wl.name,
        policy=policy,
        machine=machine.collect_stats(),
        execution=exec_stats,
    )
    if machine.census is not None:
        result.rnuca_census = machine.census.rnuca_census()
        result.unique_blocks = machine.census.unique_blocks
    if isinstance(extension, TdNucaRuntime):
        result.runtime = extension.stats
        result.isa = machine.isa.stats if machine.isa is not None else None
        result.dependency_categories = extension.dependency_categories()
        # Unique-block counts per Fig.-3 category (priority: a block touched
        # by several dependencies takes the "most reused" category so that
        # NotReused truly means every covering dependency was always
        # bypassed).
        amap = machine.amap
        raw: dict[str, set[int]] = {}
        for cat, regions in result.dependency_categories.items():
            blocks: set[int] = set()
            for region in regions:
                blocks.update(region.blocks(amap))
            raw[cat] = blocks
        both = raw["both"] | (raw["in"] & raw["out"])
        in_only = raw["in"] - both
        out_only = raw["out"] - both
        reused = both | raw["in"] | raw["out"]
        not_reused = raw["not_reused"] - reused
        result.extra["dep_category_blocks"] = {
            "both": len(both),
            "in": len(in_only),
            "out": len(out_only),
            "not_reused": len(not_reused),
        }
        result.extra["dep_blocks_total"] = len(reused | not_reused)
    return result


def run_suite(
    workloads: list[str] | None = None,
    policies: list[str] | None = None,
    cfg: SystemConfig | None = None,
    *,
    seed: int = 0,
    jobs: int = 1,
    timeout: float | None = None,
    retries: int = 0,
    run_dir=None,
) -> dict[tuple[str, str], ExperimentResult]:
    """Run every (workload, policy) pair; returns results keyed by pair.

    Delegates to the crash-tolerant engine in
    :mod:`repro.experiments.harness`.  With the defaults everything runs
    serially in-process exactly as before; ``jobs > 1`` or a ``timeout``
    moves each run into an isolated worker subprocess, ``retries`` retries
    transient failures, and ``run_dir`` checkpoints each finished run.  A
    job that still fails after its retries raises
    :class:`repro.experiments.harness.SweepFailure` listing the structured
    failure records (the ``repro sweep`` CLI instead degrades gracefully
    and archives the failures).
    """
    from repro.experiments.harness import Job, SweepFailure, run_sweep
    from repro.workloads.registry import workload_names

    workloads = workloads if workloads is not None else workload_names()
    policies = policies if policies is not None else ["snuca", "rnuca", "tdnuca"]
    cfg = cfg if cfg is not None else default_config()
    plan = [Job(wl, pol, seed) for wl in workloads for pol in policies]
    outcome = run_sweep(
        plan, cfg, workers=jobs, timeout=timeout, retries=retries,
        run_dir=run_dir,
    )
    if outcome.failures:
        raise SweepFailure(outcome.failures)
    results = outcome.results()
    return {
        (wl, pol): results[(wl, pol)] for wl in workloads for pol in policies
    }
