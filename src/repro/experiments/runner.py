"""Experiment result record and the deprecated functional entry points.

:class:`ExperimentResult` (every statistic one run produces) and
:func:`build_runtime` live here; the run logic itself moved to
:mod:`repro.api`, whose :class:`~repro.api.Session` facade is the
documented way to run simulations.  :func:`run_experiment` and
:func:`run_suite` remain as thin shims that emit a
:class:`DeprecationWarning` and delegate, so existing scripts keep
producing bit-identical results.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.config import SystemConfig, scaled_config
from repro.core.isa import ISAStats
from repro.runtime.executor import ExecutionStats
from repro.runtime.extensions import RuntimeExtension, TdNucaRuntime, TdNucaRuntimeStats
from repro.runtime.scheduler import Scheduler
from repro.sim.machine import Machine, MachineStats
from repro.stats.counters import RNucaCensus

__all__ = ["ExperimentResult", "run_experiment", "run_suite", "default_config"]

#: default scale for experiment sweeps: capacities and footprints at 1/64
#: of Table I/II, preserving their ratios.
DEFAULT_SCALE = 1.0 / 64.0


def default_config(scale: float = DEFAULT_SCALE) -> SystemConfig:
    return scaled_config(scale)


@dataclass
class ExperimentResult:
    """Everything measured from one (workload, policy) run."""

    workload: str
    policy: str
    machine: MachineStats
    execution: ExecutionStats
    #: Fig.-3 left bar: whole-run block sharing census.
    rnuca_census: RNucaCensus | None = None
    #: Fig.-3 right bar inputs: dependency usage records (TD-NUCA runs).
    dependency_categories: dict[str, list] | None = None
    runtime: TdNucaRuntimeStats | None = None
    isa: ISAStats | None = None
    #: unique blocks touched over the run.
    unique_blocks: int = 0
    #: blocks covered by task-dependency regions, by Fig.-3 category.
    extra: dict = field(default_factory=dict)

    @property
    def makespan(self) -> int:
        return self.execution.makespan_cycles


def build_runtime(machine: Machine, policy: str) -> RuntimeExtension:
    """The runtime extension matching a policy variant."""
    if policy == "tdnuca":
        return TdNucaRuntime(machine.mesh, machine.isa)
    if policy == "tdnuca-bypass-only":
        return TdNucaRuntime(machine.mesh, machine.isa, bypass_only=True)
    if policy == "tdnuca-noisa":
        return TdNucaRuntime(machine.mesh, machine.isa, execute_isa=False)
    return RuntimeExtension()


def run_experiment(
    workload: str,
    policy: str,
    cfg: SystemConfig | None = None,
    *,
    seed: int = 0,
    rrt_lookup_cycles: int | None = None,
    scheduler: Scheduler | None = None,
    census: bool = True,
) -> ExperimentResult:
    """Deprecated: use :meth:`repro.api.Session.run` instead.

    Build the machine, run the benchmark, snapshot the statistics.  This
    shim delegates to the same internal path :class:`repro.api.Session`
    uses, so results are bit-identical to the facade.
    """
    warnings.warn(
        "run_experiment() is deprecated; use repro.Session(config).run("
        "workload, policy) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import _run_one

    return _run_one(
        workload,
        policy,
        cfg,
        seed=seed,
        rrt_lookup_cycles=rrt_lookup_cycles,
        scheduler=scheduler,
        census=census,
    )


def run_suite(
    workloads: list[str] | None = None,
    policies: list[str] | None = None,
    cfg: SystemConfig | None = None,
    *,
    seed: int = 0,
    jobs: int = 1,
    timeout: float | None = None,
    retries: int = 0,
    run_dir=None,
) -> dict[tuple[str, str], ExperimentResult]:
    """Deprecated: use :meth:`repro.api.Session.suite` instead.

    Run every (workload, policy) pair; returns results keyed by pair,
    raising :class:`repro.experiments.harness.SweepFailure` if any job
    still fails after its retries.  This shim delegates to
    :meth:`Session.suite`, which preserves the all-or-nothing, grid-ordered
    semantics the figure builders rely on.
    """
    warnings.warn(
        "run_suite() is deprecated; use repro.Session(config).suite("
        "workloads, policies) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import Session

    session = Session(cfg if cfg is not None else default_config(), seed=seed)
    return session.suite(
        workloads,
        policies,
        jobs=jobs,
        timeout=timeout,
        retries=retries,
        run_dir=run_dir,
    )
