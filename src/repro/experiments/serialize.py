"""Serialization of experiment results and figures.

Results become plain dicts/JSON so sweeps can be archived, diffed across
simulator versions, and rendered into EXPERIMENTS.md without re-running
multi-minute simulations.  Figures render to JSON, Markdown tables, or
ASCII bar charts.

Sweep JSON is a versioned envelope (``SCHEMA_VERSION``)::

    {"schema_version": 3,
     "runs":     {"workload/policy": {...per-run metrics...}},
     "failures": [ ...structured FailedRun records... ],
     "sweep":    {config_sha256, seed, scale, wall_time_s, ...}}

Schema 3 adds two *optional* per-run sections to schema 2 — ``trace``
(ring-buffer accounting and an event census for a traced run) and
``timeline`` (the interval-metric samples and core->bank request matrix
from :mod:`repro.obs`).  Schema 4 adds the optional per-run
``resumed_from_task`` field (the task count a preempted run was resumed
from — its statistics are byte-identical to an uninterrupted run either
way) and the ``preempted`` shard status the harness writes on graceful
shutdown.  Each bump only *adds* optional fields, so loaders accept every
version in :data:`SUPPORTED_SCHEMA_VERSIONS` and never-preempted untraced
archives differ from schema 2 only in the version number.

Only ``sweep.wall_time_s`` varies between otherwise-identical campaigns;
everything under ``runs`` is deterministic for a given config and seed, so
archives diff cleanly.  Loading validates the version and raises a clear
:class:`ValueError` (or :class:`SchemaVersionError`) on unversioned or
corrupt input instead of a bare ``KeyError`` deep in the compare pipeline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.experiments.figures import Figure
from repro.experiments.runner import ExperimentResult

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "SchemaVersionError",
    "SweepDocument",
    "result_to_dict",
    "results_to_json",
    "sweep_to_json",
    "figure_to_dict",
    "figure_to_markdown",
    "load_results_json",
    "load_sweep",
]

#: version of the sweep JSON envelope (and of harness shards/manifests).
#: Bump whenever the layout of the archived metrics changes incompatibly.
SCHEMA_VERSION = 4

#: versions loaders accept.  Schema 3 only *adds* optional trace/timeline
#: sections and schema 4 only *adds* the optional ``resumed_from_task``
#: per-run field plus preemption shard/manifest records, so older archives
#: load unchanged.
SUPPORTED_SCHEMA_VERSIONS = (2, 3, 4)


class SchemaVersionError(ValueError):
    """A sweep archive was written under an unsupported schema version.

    The message names the offending file (when the caller knows it), the
    version actually found, and the versions this build reads — enough to
    fix the problem without opening the file.
    """

    def __init__(
        self,
        found: Any,
        expected: int = SCHEMA_VERSION,
        path: Any = None,
    ):
        self.found = found
        self.expected = expected
        self.path = path
        supported = ", ".join(str(v) for v in SUPPORTED_SCHEMA_VERSIONS)
        where = f"{path}: " if path is not None else ""
        super().__init__(
            f"{where}sweep JSON schema version {found!r} is not supported "
            f"(this tool reads versions {supported} and writes version "
            f"{expected}); re-archive the sweep with 'repro sweep'"
        )


@dataclass
class SweepDocument:
    """A parsed sweep archive: runs, failure records, and sweep metadata."""

    runs: dict[tuple[str, str], dict[str, Any]]
    failures: list[dict[str, Any]] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION


def result_to_dict(
    r: ExperimentResult,
    *,
    trace: Any = None,
    timeline: Any = None,
) -> dict[str, Any]:
    """Flatten one run's statistics into a JSON-safe dict.

    ``trace`` (a :class:`repro.obs.events.EventTrace`) and ``timeline`` (a
    :class:`repro.obs.timeline.IntervalTimeline`) add the optional schema-3
    observability sections; both default to absent so untraced runs
    serialize exactly as under schema 2.
    """
    m = r.machine
    out: dict[str, Any] = {
        "workload": r.workload,
        "policy": r.policy,
        "makespan_cycles": r.execution.makespan_cycles,
        "tasks_executed": r.execution.tasks_executed,
        "phases": r.execution.phases,
        "busy_cycles": list(r.execution.busy_cycles),
        "extension_cycles": r.execution.extension_cycles,
        "creation_cycles": r.execution.creation_cycles,
        "tdg_edges": r.execution.tdg_edges,
        "llc": {
            "accesses": m.llc.accesses,
            "hits": m.llc.hits,
            "misses": m.llc.misses,
            "hit_ratio": m.llc_hit_ratio,
            "evictions": m.llc.evictions,
            "dirty_evictions": m.llc.dirty_evictions,
        },
        "l1": {
            "accesses": m.l1.accesses,
            "hits": m.l1.hits,
            "misses": m.l1.misses,
        },
        "noc": {
            "router_bytes": m.router_bytes,
            "flit_hops": m.traffic.flit_hops,
            "messages": m.traffic.messages,
            "mean_nuca_distance": m.mean_nuca_distance,
        },
        "dram": {"reads": m.dram_reads, "writes": m.dram_writes},
        "energy_pj": {
            "llc": m.energy.llc,
            "noc": m.energy.noc,
            "dram": m.energy.dram,
            "l1": m.energy.l1,
            "rrt": m.energy.rrt,
        },
        "tlb": {
            "accesses": m.tlb.accesses,
            "hit_ratio": m.tlb.hit_ratio,
        },
        "bypassed_accesses": m.bypassed_accesses,
        "unique_blocks": r.unique_blocks,
    }
    if r.rnuca_census is not None:
        out["block_census"] = {
            "private": r.rnuca_census.private,
            "shared_read_only": r.rnuca_census.shared_read_only,
            "shared": r.rnuca_census.shared,
        }
    if r.runtime is not None:
        out["tdnuca_runtime"] = {
            "decisions": r.runtime.decisions,
            "bypass": r.runtime.bypass_decisions,
            "local": r.runtime.local_decisions,
            "replicate": r.runtime.replicate_decisions,
            "untracked": r.runtime.untracked_decisions,
            "lazy_invalidations": r.runtime.lazy_invalidations,
            "software_cycles": r.runtime.software_cycles,
            "rrt_occupancy_mean": r.runtime.mean_rrt_occupancy,
            "rrt_occupancy_max": r.runtime.occupancy_max,
        }
    if r.isa is not None:
        out["isa"] = {
            "registers": r.isa.registers_executed,
            "invalidates": r.isa.invalidates_executed,
            "flushes": r.isa.flushes_executed,
            "flush_cycles": r.isa.flush_cycles,
            "blocks_flushed": r.isa.blocks_flushed,
            "translation_tlb_accesses": r.isa.translation_tlb_accesses,
        }
    if m.faults is not None:
        out["faults"] = {
            "banks_failed": m.faults.banks_failed,
            "links_failed": m.faults.links_failed,
            "blocks_lost": m.faults.blocks_lost,
            "dirty_blocks_lost": m.faults.dirty_blocks_lost,
            "l1_copies_dropped": m.faults.l1_copies_dropped,
            "rrt_entries_dropped": m.faults.rrt_entries_dropped,
            "dead_bank_redirects": m.faults.dead_bank_redirects,
            "dram_transient_errors": m.faults.dram_transient_errors,
            "dram_retries": m.faults.dram_retries,
            "dram_retry_cycles": m.faults.dram_retry_cycles,
            "dram_retries_exhausted": m.faults.dram_retries_exhausted,
            "mean_hop_inflation": m.faults.mean_hop_inflation,
            "pending_events": m.faults.pending_events,
        }
    if "invariants" in m.extra:
        out["invariants"] = dict(m.extra["invariants"])
    if "dep_category_blocks" in r.extra:
        out["dep_category_blocks"] = dict(r.extra["dep_category_blocks"])
        out["dep_blocks_total"] = r.extra["dep_blocks_total"]
    if "resumed_from_task" in r.extra:
        out["resumed_from_task"] = r.extra["resumed_from_task"]
    if trace is not None:
        by_kind: dict[str, int] = {}
        for ev in trace.events():
            key = ev.kind.value
            by_kind[key] = by_kind.get(key, 0) + 1
        out["trace"] = {
            "events_recorded": trace.total,
            "events_dropped": trace.dropped,
            "capacity": trace.capacity,
            "by_kind": dict(sorted(by_kind.items())),
        }
    if timeline is not None:
        out["timeline"] = timeline.to_dict()
    return out


def sweep_to_json(
    runs: dict[tuple[str, str], Any],
    failures: list[dict[str, Any]] | tuple = (),
    meta: dict[str, Any] | None = None,
    indent: int = 2,
) -> str:
    """Serialize a sweep into the versioned envelope.

    ``runs`` values may be :class:`ExperimentResult` objects (flattened via
    :func:`result_to_dict`) or already-flattened dicts, e.g. loaded back
    from harness checkpoint shards.  Keys are sorted so the output is
    byte-stable regardless of job completion order.
    """
    payload: dict[str, Any] = {}
    for (wl, pol), value in runs.items():
        payload[f"{wl}/{pol}"] = (
            result_to_dict(value) if isinstance(value, ExperimentResult) else value
        )
    doc = {
        "schema_version": SCHEMA_VERSION,
        "runs": payload,
        "failures": list(failures),
        "sweep": dict(meta or {}),
    }
    return json.dumps(doc, indent=indent, sort_keys=True)


def results_to_json(
    results: dict[tuple[str, str], ExperimentResult], indent: int = 2
) -> str:
    """Serialize a whole suite, keyed ``"workload/policy"``."""
    return sweep_to_json(results, indent=indent)


def load_sweep(text: str, *, path: Any = None) -> SweepDocument:
    """Parse and validate a sweep archive.

    Raises :class:`SchemaVersionError` when the archive was written under a
    different schema version and plain :class:`ValueError` (with a message
    naming the problem — and the offending file, when ``path`` is given)
    on corrupt, unversioned, or malformed input.
    """
    where = f"{path}: " if path is not None else ""
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{where}corrupt sweep JSON: {exc}") from exc
    if not isinstance(raw, dict):
        raise ValueError(f"{where}corrupt sweep JSON: top level must be an object")
    if "schema_version" not in raw:
        raise ValueError(
            f"{where}unversioned sweep JSON (written before schema "
            "versioning); re-archive it with 'repro sweep'"
        )
    if raw["schema_version"] not in SUPPORTED_SCHEMA_VERSIONS:
        raise SchemaVersionError(raw["schema_version"], path=path)
    runs_raw = raw.get("runs")
    if not isinstance(runs_raw, dict):
        raise ValueError(f"{where}corrupt sweep JSON: missing 'runs' object")
    runs: dict[tuple[str, str], dict[str, Any]] = {}
    for key, value in runs_raw.items():
        wl, _, pol = key.partition("/")
        if not pol:
            raise ValueError(f"{where}malformed result key {key!r}")
        if not isinstance(value, dict):
            raise ValueError(
                f"{where}corrupt sweep JSON: run {key!r} is not an object"
            )
        runs[(wl, pol)] = value
    failures = raw.get("failures", [])
    if not isinstance(failures, list):
        raise ValueError(f"{where}corrupt sweep JSON: 'failures' must be a list")
    meta = raw.get("sweep", {})
    if not isinstance(meta, dict):
        raise ValueError(f"{where}corrupt sweep JSON: 'sweep' must be an object")
    return SweepDocument(
        runs=runs,
        failures=failures,
        meta=meta,
        schema_version=raw["schema_version"],
    )


def load_results_json(text: str) -> dict[tuple[str, str], dict[str, Any]]:
    """Inverse of :func:`results_to_json` (as plain dicts — the snapshot
    is for reporting/diffing, not for resuming simulations)."""
    return load_sweep(text).runs


def figure_to_dict(fig: Figure) -> dict[str, Any]:
    return {
        "id": fig.fig_id,
        "title": fig.title,
        "series": {
            s.label: {"values": dict(s.values), "average": s.average}
            for s in fig.series
        },
        "paper_averages": dict(fig.paper_averages),
    }


def figure_to_markdown(fig: Figure) -> str:
    """GitHub-flavoured Markdown table for EXPERIMENTS.md."""
    benches = list(fig.series[0].values) if fig.series else []
    header = "| bench | " + " | ".join(s.label for s in fig.series) + " |"
    sep = "|---" * (len(fig.series) + 1) + "|"
    lines = [f"**{fig.fig_id} — {fig.title}**", "", header, sep]
    for b in benches:
        cells = " | ".join(f"{s.values[b]:.3f}" for s in fig.series)
        lines.append(f"| {b} | {cells} |")
    lines.append(
        "| **AVG** | "
        + " | ".join(f"**{s.average:.3f}**" for s in fig.series)
        + " |"
    )
    if fig.paper_averages:
        lines.append(
            "| *paper AVG* | "
            + " | ".join(
                f"*{fig.paper_averages[s.label]:.3f}*"
                if s.label in fig.paper_averages
                else "-"
                for s in fig.series
            )
            + " |"
        )
    return "\n".join(lines)
