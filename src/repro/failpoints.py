"""Deterministic failpoint framework: named, seed-driven fault injection.

Chaos hooks used to be ad-hoc environment variables scattered across the
sweep harness (``REPRO_HARNESS_CRASH``) and the service queue
(``REPRO_SERVICE_SLOW``/``REPRO_SERVICE_CRASH``), each with its own
parsing, its own semantics, and no way to bound *how often* it fired.
This module replaces them with a single registry of **named injection
sites** threaded through the service, harness, cache, and snapshot
layers.  A site does nothing — costs one dict lookup — until a spec
activates it, so production paths pay nothing for the chaos they don't
ask for.

Spec grammar (``REPRO_FAILPOINTS`` or :func:`configure`)::

    site=COUNT[@MODIFIER]...[;site=COUNT[@MODIFIER]...]

``COUNT`` is an integer budget of firings, or ``*`` for unlimited.
Modifiers are ``@key:value`` pairs:

``@p:0.5``          fire with probability 0.5 (seeded, deterministic)
``@after:N``        skip the first N matching hits before firing
``@action:NAME``    override the site's default action
``@param:X``        action parameter (sleep seconds, exit code, MB cap)
``@job:LABEL``      context filter: fire only when ``fire(..., job=LABEL)``
``@attempt:N``      context filter on the attempt number
``@task_ge:N``      numeric filter: fire once ``task >= N`` (any ``_ge``
                    suffix compares numerically instead of exactly)

Any other ``@key:value`` is an exact-match filter against the keyword
context passed to :func:`fire`.  Examples::

    REPRO_FAILPOINTS='worker.crash=1@job:cholesky/tdnuca' repro serve
    REPRO_FAILPOINTS='worker.hang=*@p:0.01;cache.write.torn=2' repro serve
    REPRO_FAILPOINTS='worker.crash=*@attempt:1@task_ge:50' pytest -m chaos

Actions:

``raise``           raise :class:`FailpointError` (transient: retried)
``raise-permanent`` raise :class:`PermanentFailpointError` (not retried)
``exit``            ``os._exit(param or 99)`` — silent process death
``kill``            ``SIGKILL`` to the current process — kill -9 mid-job
``sleep``           ``time.sleep(param or 5.0)`` — a hang/stall
``oom``             allocate until :class:`MemoryError` (bounded by
                    ``param`` MB, default 2048; pair with a worker rlimit)
``corrupt``         flip one deterministic byte — only meaningful through
                    :func:`mangle`, which data paths call on payload bytes

Determinism: probability draws and corrupt-byte positions come from one
``random.Random`` per rule, seeded from ``REPRO_FAILPOINTS_SEED`` (or the
``seed`` argument to :func:`configure`) and the rule's position, so a
failing chaos run replays exactly.  Hit/firing counters are per-process;
cross-process determinism (the worker pool respawns children) comes from
context filters like ``@attempt:1``/``@task_ge:N`` rather than counters.

The legacy environment hooks still work as deprecated aliases — each is
translated into an equivalent rule with a one-time
:class:`DeprecationWarning`:

====================== ============================================
``REPRO_HARNESS_CRASH``  ``harness.worker.crash=*@job:<value>``
``REPRO_HARNESS_SLOW``   ``harness.worker.slow=*@param:<value>``
``REPRO_SERVICE_SLOW``   ``queue.attempt.slow=*@param:<value>``
``REPRO_SERVICE_CRASH``  ``queue.attempt.crash=*@job:<value>``
====================== ============================================

This module is dependency-free (stdlib only) so any layer — including
the snapshot format reader imported during package init — can use it
without import cycles.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "FAILPOINTS_ENV",
    "FAILPOINTS_SEED_ENV",
    "SITES",
    "ACTIONS",
    "LEGACY_ALIASES",
    "FailpointError",
    "PermanentFailpointError",
    "Rule",
    "Failpoints",
    "parse_spec",
    "get",
    "configure",
    "reset",
    "fire",
    "mangle",
    "active_spec",
]

#: the activation spec (see the module docstring for the grammar).
FAILPOINTS_ENV = "REPRO_FAILPOINTS"

#: integer seed for probability draws and corrupt-byte positions.
FAILPOINTS_SEED_ENV = "REPRO_FAILPOINTS_SEED"

#: the registry of injection sites: site name -> default action.  A spec
#: naming an unknown site is rejected loudly at parse time — a typo'd
#: chaos run that silently injects nothing is worse than no chaos run.
SITES: dict[str, str] = {
    "worker.crash": "kill",           # kill -9 the worker at a task boundary
    "worker.hang": "sleep",           # stop heartbeating (lease expiry path)
    "worker.oom": "oom",              # allocate until MemoryError
    "worker.start.crash": "exit",     # die before simulating anything
    "queue.attempt.slow": "sleep",    # legacy REPRO_SERVICE_SLOW
    "queue.attempt.crash": "exit",    # legacy REPRO_SERVICE_CRASH
    "queue.drain.stall": "sleep",     # stall the drain loop's entry
    "harness.worker.crash": "exit",   # legacy REPRO_HARNESS_CRASH
    "harness.worker.slow": "sleep",   # legacy REPRO_HARNESS_SLOW
    "cache.write.torn": "corrupt",    # torn result-cache entry write
    "snapshot.write.torn": "corrupt",  # torn snapshot write
    "snapshot.read.corrupt": "corrupt",  # bit rot on snapshot read
    "kernel.dispatch.mismatch": "corrupt",  # forge a kernel-verify divergence
    "fleet.claim.stall": "sleep",     # stall between claim decision and link
    "fleet.lease.skew": "sleep",      # stall host heartbeats (lease skew)
    "fleet.publish.torn": "corrupt",  # torn shared-store publish
    "fleet.steal.race": "sleep",      # widen the pick-then-claim steal window
}

ACTIONS = (
    "raise",
    "raise-permanent",
    "exit",
    "kill",
    "sleep",
    "oom",
    "corrupt",
)

#: legacy env var -> (site, kind) where kind is "job" (value is a job
#: label filter) or "param" (value is the action parameter).
LEGACY_ALIASES: dict[str, tuple[str, str]] = {
    "REPRO_HARNESS_CRASH": ("harness.worker.crash", "job"),
    "REPRO_HARNESS_SLOW": ("harness.worker.slow", "param"),
    "REPRO_SERVICE_SLOW": ("queue.attempt.slow", "param"),
    "REPRO_SERVICE_CRASH": ("queue.attempt.crash", "job"),
}

#: modifier keys with dedicated meaning; everything else is a filter.
_RESERVED_MODIFIERS = ("p", "after", "action", "param")


class FailpointError(RuntimeError):
    """Raised by the ``raise`` action.

    A ``RuntimeError`` subclass, so retry classifiers treat it as a
    transient infrastructure failure (it is not in
    :data:`repro.experiments.harness.PERMANENT_ERRORS`).
    """


class PermanentFailpointError(ValueError):
    """Raised by the ``raise-permanent`` action.

    A ``ValueError`` subclass, so retry classifiers treat it as a
    deterministic, non-retryable failure.
    """


@dataclass
class Rule:
    """One activated injection rule plus its per-process counters."""

    site: str
    count: int | None  # None = unlimited ("*")
    prob: float = 1.0
    after: int = 0
    action: str = ""
    param: str | None = None
    filters: dict[str, str] = field(default_factory=dict)
    # runtime state (per-process; see the module docstring on determinism)
    hits: int = 0
    fired: int = 0
    rng: random.Random = field(default_factory=random.Random, repr=False)

    def matches(self, ctx: dict[str, Any]) -> bool:
        for key, want in self.filters.items():
            if key.endswith("_ge"):
                have = ctx.get(key[: -len("_ge")])
                try:
                    if have is None or float(have) < float(want):
                        return False
                except (TypeError, ValueError):
                    return False
            elif str(ctx.get(key)) != want:
                return False
        return True


def parse_spec(spec: str, seed: int = 0) -> list[Rule]:
    """Parse an activation spec into rules; raises ``ValueError`` loudly."""
    rules: list[Rule] = []
    for index, entry in enumerate(e.strip() for e in spec.split(";")):
        if not entry:
            continue
        site, eq, rest = entry.partition("=")
        site = site.strip()
        if not eq:
            raise ValueError(
                f"failpoint entry {entry!r} is missing '=COUNT' "
                "(grammar: site=COUNT[@key:value]...)"
            )
        if site not in SITES:
            known = ", ".join(sorted(SITES))
            raise ValueError(
                f"unknown failpoint site {site!r} (known sites: {known})"
            )
        tokens = rest.split("@")
        count_token = tokens[0].strip()
        if count_token == "*":
            count: int | None = None
        else:
            try:
                count = int(count_token)
            except ValueError:
                raise ValueError(
                    f"failpoint {site}: count must be an integer or '*', "
                    f"got {count_token!r}"
                ) from None
            if count < 0:
                raise ValueError(f"failpoint {site}: count must be >= 0")
        rule = Rule(site=site, count=count, action=SITES[site])
        for token in tokens[1:]:
            key, colon, value = token.partition(":")
            key = key.strip()
            value = value.strip()
            if not colon or not key:
                raise ValueError(
                    f"failpoint {site}: malformed modifier {token!r} "
                    "(expected @key:value)"
                )
            if key == "p":
                try:
                    rule.prob = float(value)
                except ValueError:
                    raise ValueError(
                        f"failpoint {site}: @p needs a float, got {value!r}"
                    ) from None
                if not 0.0 <= rule.prob <= 1.0:
                    raise ValueError(
                        f"failpoint {site}: @p must be within [0, 1]"
                    )
            elif key == "after":
                try:
                    rule.after = int(value)
                except ValueError:
                    raise ValueError(
                        f"failpoint {site}: @after needs an integer, "
                        f"got {value!r}"
                    ) from None
            elif key == "action":
                if value not in ACTIONS:
                    raise ValueError(
                        f"failpoint {site}: unknown action {value!r} "
                        f"(known: {', '.join(ACTIONS)})"
                    )
                rule.action = value
            elif key == "param":
                rule.param = value
            else:
                rule.filters[key] = value
        # One deterministic stream per rule: global seed + rule position.
        rule.rng = random.Random(f"{seed}|{index}|{rule.site}")
        rules.append(rule)
    return rules


class Failpoints:
    """A parsed set of rules and the machinery to fire them.

    Thread-safe; one instance is shared process-wide through
    :func:`get`.  ``fire``/``mangle`` on an instance with no rules for
    the site return immediately.
    """

    def __init__(self, rules: list[Rule], *, spec: str = "", seed: int = 0):
        self.spec = spec
        self.seed = seed
        self._by_site: dict[str, list[Rule]] = {}
        for rule in rules:
            self._by_site.setdefault(rule.site, []).append(rule)
        self._lock = threading.Lock()

    @property
    def active(self) -> bool:
        return bool(self._by_site)

    def _select(self, site: str, ctx: dict[str, Any],
                corrupt: bool) -> Rule | None:
        """The first rule for ``site`` that matches and has budget left.

        ``corrupt`` selects between data-mangling rules (:func:`mangle`)
        and control-flow rules (:func:`fire`); one site never mixes both
        in a single call.
        """
        rules = self._by_site.get(site)
        if not rules:
            return None
        with self._lock:
            for rule in rules:
                if (rule.action == "corrupt") is not corrupt:
                    continue
                if not rule.matches(ctx):
                    continue
                rule.hits += 1
                if rule.hits <= rule.after:
                    continue
                if rule.count is not None and rule.fired >= rule.count:
                    continue
                if rule.prob < 1.0 and rule.rng.random() >= rule.prob:
                    continue
                rule.fired += 1
                return rule
        return None

    def fire(self, site: str, **ctx: Any) -> bool:
        """Evaluate ``site`` against the rules; perform the action if due.

        Returns ``True`` when an action fired (for actions that return at
        all).  Unknown context keys are fine — they only matter to rules
        that filter on them.
        """
        rule = self._select(site, ctx, corrupt=False)
        if rule is None:
            return False
        _perform(rule, site, ctx)
        return True

    def mangle(self, site: str, data: bytes, **ctx: Any) -> bytes:
        """Return ``data``, corrupted iff a ``corrupt`` rule for ``site``
        fires: one byte at a seeded-deterministic position is flipped."""
        rule = self._select(site, ctx, corrupt=True)
        if rule is None or not data:
            return data
        blob = bytearray(data)
        blob[rule.rng.randrange(len(blob))] ^= 0xFF
        return bytes(blob)

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-site hit/fired counters (for logs and tests)."""
        out: dict[str, dict[str, int]] = {}
        with self._lock:
            for site, rules in self._by_site.items():
                out[site] = {
                    "hits": sum(r.hits for r in rules),
                    "fired": sum(r.fired for r in rules),
                }
        return out


def _perform(rule: Rule, site: str, ctx: dict[str, Any]) -> None:
    action, param = rule.action, rule.param
    if action == "raise":
        raise FailpointError(f"failpoint {site} fired (ctx {ctx})")
    if action == "raise-permanent":
        raise PermanentFailpointError(f"failpoint {site} fired (ctx {ctx})")
    if action == "exit":
        os._exit(int(param) if param else 99)
    if action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(60)  # pragma: no cover - delivery is not synchronous
        return
    if action == "sleep":
        time.sleep(float(param) if param else 5.0)
        return
    if action == "oom":
        cap_mb = int(float(param)) if param else 2048
        chunk = 8 << 20
        hog = []
        try:
            for _ in range(max(1, (cap_mb << 20) // chunk)):
                hog.append(bytearray(chunk))
        except MemoryError:
            pass
        del hog
        raise MemoryError(
            f"failpoint {site}: allocation exhausted the worker's memory "
            f"budget (cap {cap_mb} MB)"
        )
    raise AssertionError(f"unhandled failpoint action {action!r}")


# ---------------------------------------------------------------------------
# process-wide instance: env-driven by default, explicit via configure()

_INACTIVE = Failpoints([])
_state: dict[str, Any] = {"fp": _INACTIVE, "fingerprint": None, "explicit": False}
_state_lock = threading.Lock()
_warned_legacy: set[str] = set()


def _env_fingerprint() -> tuple[str | None, ...]:
    keys = (FAILPOINTS_ENV, FAILPOINTS_SEED_ENV, *LEGACY_ALIASES)
    return tuple(os.environ.get(k) for k in keys)


def _warn_legacy(var: str, replacement: str) -> None:
    if var in _warned_legacy:
        return
    _warned_legacy.add(var)
    warnings.warn(
        f"{var} is deprecated; use {FAILPOINTS_ENV}='{replacement}' instead",
        DeprecationWarning,
        stacklevel=4,
    )


def _from_env() -> Failpoints:
    entries: list[str] = []
    spec = os.environ.get(FAILPOINTS_ENV, "").strip()
    if spec:
        entries.append(spec)
    for var, (site, kind) in LEGACY_ALIASES.items():
        value = os.environ.get(var, "").strip()
        if not value:
            continue
        if kind == "param":
            try:
                if float(value) <= 0:  # the old hooks treated 0 as off
                    continue
            except ValueError:
                continue
            entry = f"{site}=*@param:{value}"
        else:
            entry = f"{site}=*@job:{value}"
        _warn_legacy(var, entry)
        entries.append(entry)
    raw_seed = os.environ.get(FAILPOINTS_SEED_ENV, "").strip()
    try:
        seed = int(raw_seed) if raw_seed else 0
    except ValueError:
        raise ValueError(
            f"{FAILPOINTS_SEED_ENV} must be an integer, got {raw_seed!r}"
        ) from None
    joined = ";".join(entries)
    if not joined:
        return _INACTIVE
    return Failpoints(parse_spec(joined, seed), spec=joined, seed=seed)


def get() -> Failpoints:
    """The process-wide instance.

    Env-driven unless :func:`configure` installed an explicit one; the
    environment is re-read on every call (a tuple compare — cheap) so
    tests that monkeypatch the variables see the change immediately.
    """
    with _state_lock:
        if _state["explicit"]:
            return _state["fp"]
        fingerprint = _env_fingerprint()
        if fingerprint != _state["fingerprint"]:
            _state["fp"] = _from_env()
            _state["fingerprint"] = fingerprint
        return _state["fp"]


def configure(spec: str, seed: int = 0) -> Failpoints:
    """Install an explicit spec, overriding the environment until
    :func:`reset`.  Returns the installed instance."""
    fp = Failpoints(parse_spec(spec, seed), spec=spec, seed=seed)
    with _state_lock:
        _state["fp"] = fp
        _state["explicit"] = True
    return fp


def reset() -> None:
    """Drop any explicit configuration and all parse caches; the next
    :func:`get` re-reads the environment.  Also re-arms the one-time
    legacy deprecation warnings (tests rely on this)."""
    with _state_lock:
        _state["fp"] = _INACTIVE
        _state["fingerprint"] = None
        _state["explicit"] = False
    _warned_legacy.clear()


def fire(site: str, **ctx: Any) -> bool:
    """Module-level convenience: ``get().fire(site, **ctx)``."""
    fp = get()
    if not fp.active:
        return False
    return fp.fire(site, **ctx)


def mangle(site: str, data: bytes, **ctx: Any) -> bytes:
    """Module-level convenience: ``get().mangle(site, data, **ctx)``."""
    fp = get()
    if not fp.active:
        return data
    return fp.mangle(site, data, **ctx)


def active_spec() -> tuple[str, int] | None:
    """The (spec, seed) pair of the active instance, or ``None`` when
    inactive — what the worker pool forwards to spawned children so an
    explicitly :func:`configure`-d parent propagates deterministically."""
    fp = get()
    if not fp.active:
        return None
    return (fp.spec, fp.seed)
