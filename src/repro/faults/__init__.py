"""Hardware fault injection, graceful degradation and invariant checking.

Three fault classes, all deterministic and seed-driven (see
:mod:`repro.faults.schedule` for the spec grammar):

* LLC bank failures — a bank dies mid-run; every NUCA policy remaps
  around it and TD-NUCA additionally invalidates stale RRT entries;
* NoC link failures — the mesh reroutes with recomputed hop distances;
* transient DRAM errors — retried with bounded exponential backoff,
  charged through the latency model.

:mod:`repro.faults.invariants` proves the degradation graceful: a
machine-wide consistency sweep (directory/sharer agreement, LLC
inclusion, dead-bank emptiness, occupancy balance) runnable after every
task in strict mode.
"""

from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.invariants import (
    InvariantChecker,
    InvariantError,
    InvariantViolation,
    check_machine,
)
from repro.faults.schedule import (
    BankFault,
    DramFaultModel,
    FaultSchedule,
    LinkFault,
    parse_fault_spec,
)

__all__ = [
    "BankFault",
    "DramFaultModel",
    "FaultInjector",
    "FaultSchedule",
    "FaultStats",
    "InvariantChecker",
    "InvariantError",
    "InvariantViolation",
    "LinkFault",
    "check_machine",
    "parse_fault_spec",
]
