"""Fault injection driver: fires a :class:`FaultSchedule` into a machine.

The injector owns the *sequencing* of hardware faults; the actual state
surgery lives with the components (``Machine.fail_bank``,
``Machine.fail_link``, ``MemoryControllers.set_fault_model``).  Discrete
events (bank and link deaths) fire at task boundaries — the machine calls
:meth:`FaultInjector.on_task_boundary` after every completed task — so the
hierarchy is always quiescent when the topology changes.  The transient
DRAM error model is continuous and is installed at activation.

All randomness comes from one ``random.Random`` seeded from the experiment
seed, so two runs with the same seed and spec produce bit-identical
statistics.

:meth:`FaultInjector.snapshot` aggregates the degraded-mode accounting
(blocks lost, L1 copies dropped, RRT entries invalidated, redirects,
retries, hop inflation) into a :class:`FaultStats` for
:class:`repro.sim.machine.MachineStats`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.faults.schedule import BankFault, FaultSchedule, LinkFault

__all__ = ["FaultInjector", "FaultStats"]


@dataclass
class FaultStats:
    """Degraded-mode accounting for one run (all zero when fault-free)."""

    banks_failed: int = 0
    links_failed: int = 0
    #: LLC-resident blocks destroyed by bank deaths.
    blocks_lost: int = 0
    #: of those, how many were dirty (their data only survives if an L1
    #: copy existed and was drained to DRAM).
    dirty_blocks_lost: int = 0
    #: L1 lines back-invalidated because their LLC backing died.
    l1_copies_dropped: int = 0
    #: TD-NUCA RRT entries invalidated because they mapped a dead bank.
    rrt_entries_dropped: int = 0
    #: accesses whose home bank was dead and were remapped by the policy.
    dead_bank_redirects: int = 0
    dram_transient_errors: int = 0
    dram_retries: int = 0
    dram_retry_cycles: int = 0
    dram_retries_exhausted: int = 0
    #: mean extra hops between tile pairs vs. the fault-free mesh.
    mean_hop_inflation: float = 0.0
    #: scheduled discrete events that have not fired yet (0 at end of a
    #: run whose trigger points were all reached).
    pending_events: int = 0


class FaultInjector:
    """Sequences one validated :class:`FaultSchedule` into a machine."""

    def __init__(self, machine, schedule: FaultSchedule, seed: int = 0) -> None:
        schedule.validate_against(
            machine.cfg.num_banks, machine.mesh.num_tiles
        )
        for f in schedule.link_faults:
            if not machine.mesh.are_adjacent(f.a, f.b):
                raise ValueError(
                    f"link fault {f.a}-{f.b}: tiles are not mesh neighbours"
                )
        self.machine = machine
        self.schedule = schedule
        self.seed = seed
        self.rng = random.Random(seed)
        # Discrete events in firing order; spec order breaks trigger ties.
        events: list[BankFault | LinkFault] = [
            *schedule.bank_faults,
            *schedule.link_faults,
        ]
        events.sort(key=lambda f: f.at_task)  # stable: spec order preserved
        self._events = events
        self._next = 0
        self._activated = False
        # Cumulative surgery accounting (fed by fail_bank return values).
        self._banks_failed = 0
        self._links_failed = 0
        self._blocks_lost = 0
        self._dirty_blocks_lost = 0
        self._l1_copies_dropped = 0
        self._rrt_entries_dropped = 0

    def activate(self) -> None:
        """Install the continuous DRAM model and fire ``at_task<=0``
        events (faults present from the very start of the run)."""
        if self._activated:
            raise RuntimeError("fault injector already activated")
        self._activated = True
        dram = self.schedule.dram
        if dram is not None:
            self.machine.dram.set_fault_model(
                dram.probability,
                dram.max_retries,
                self.rng,
                retry_cost=self.machine.latency.dram_retry,
            )
        self.on_task_boundary(0)

    def on_task_boundary(self, tasks_completed: int) -> None:
        """Fire every event whose trigger has been reached."""
        events = self._events
        while self._next < len(events):
            event = events[self._next]
            if event.at_task > tasks_completed:
                break
            self._next += 1
            if isinstance(event, BankFault):
                self._fire_bank(event)
            else:
                self._fire_link(event)

    def _fire_bank(self, event: BankFault) -> None:
        report = self.machine.fail_bank(event.bank)
        self._banks_failed += 1
        self._blocks_lost += report["blocks_lost"]
        self._dirty_blocks_lost += report["dirty_blocks_lost"]
        self._l1_copies_dropped += report["l1_copies_dropped"]
        self._rrt_entries_dropped += report["rrt_entries_dropped"]
        obs = self.machine.obs
        if obs is not None:
            from repro.obs.events import EventKind

            obs.fault_fired(
                EventKind.FAULT_BANK,
                f"bank {event.bank} failed",
                {"bank": event.bank, "at_task": event.at_task, **report},
            )

    def _fire_link(self, event: LinkFault) -> None:
        self.machine.fail_link(event.a, event.b)
        self._links_failed += 1
        obs = self.machine.obs
        if obs is not None:
            from repro.obs.events import EventKind

            obs.fault_fired(
                EventKind.FAULT_LINK,
                f"link {event.a}-{event.b} failed",
                {"a": event.a, "b": event.b, "at_task": event.at_task},
            )

    @property
    def pending_events(self) -> int:
        """Scheduled discrete events that have not fired yet."""
        return len(self._events) - self._next

    # --- checkpoint/restore ---

    def state_dict(self) -> dict:
        return {
            "next": self._next,
            "activated": self._activated,
            "rng": self.rng.getstate(),
            "banks_failed": self._banks_failed,
            "links_failed": self._links_failed,
            "blocks_lost": self._blocks_lost,
            "dirty_blocks_lost": self._dirty_blocks_lost,
            "l1_copies_dropped": self._l1_copies_dropped,
            "rrt_entries_dropped": self._rrt_entries_dropped,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the schedule cursor and accounting.

        The RNG is restored *in place* with ``setstate`` because
        ``set_fault_model`` aliased ``self.rng`` into the DRAM model at
        activation — replacing the object would silently detach the DRAM's
        randomness from the injector's.
        """
        self._next = int(state["next"])
        self._activated = bool(state["activated"])
        rng_state = state["rng"]
        # random.Random state tuples survive pickling, but inner sequences
        # may come back as lists; normalize to the tuple shape setstate wants.
        self.rng.setstate(
            tuple(tuple(s) if isinstance(s, list) else s for s in rng_state)
        )
        self._banks_failed = int(state["banks_failed"])
        self._links_failed = int(state["links_failed"])
        self._blocks_lost = int(state["blocks_lost"])
        self._dirty_blocks_lost = int(state["dirty_blocks_lost"])
        self._l1_copies_dropped = int(state["l1_copies_dropped"])
        self._rrt_entries_dropped = int(state["rrt_entries_dropped"])

    def snapshot(self) -> FaultStats:
        """Aggregate degraded-mode accounting across the machine."""
        machine = self.machine
        dram = machine.dram.stats
        return FaultStats(
            banks_failed=self._banks_failed,
            links_failed=self._links_failed,
            blocks_lost=self._blocks_lost,
            dirty_blocks_lost=self._dirty_blocks_lost,
            l1_copies_dropped=self._l1_copies_dropped,
            rrt_entries_dropped=self._rrt_entries_dropped,
            dead_bank_redirects=machine.policy.stats.dead_bank_redirects,
            dram_transient_errors=dram.transient_errors,
            dram_retries=dram.retries,
            dram_retry_cycles=dram.retry_cycles,
            dram_retries_exhausted=dram.retries_exhausted,
            mean_hop_inflation=machine.mesh.mean_hop_inflation(),
            pending_events=self.pending_events,
        )
