"""Runtime invariant checking over the simulated memory hierarchy.

Graceful degradation is only worth anything if it is provably *graceful*:
after a bank dies or a link drops, the surviving state must still satisfy
the protocol's steady-state invariants — otherwise the run is silently
corrupt and every downstream statistic is fiction.  The checker validates,
against a quiescent machine (between tasks):

* **structural soundness** — every cache bank's block->way map, way array
  and maintained occupancy counter agree (:meth:`CacheBank.audit`);
* **directory consistency** — every L1-resident line has its presence bit
  set in the coherence directory; every dirty L1 line is its directory
  owner; every directory owner holds the line dirty in its L1.  (Stale
  presence bits are *legal*: clean L1 evictions are silent, per Table I.)
* **LLC inclusion** — under the hardware-inclusive policies (S/R/D-NUCA)
  every L1-resident line is backed by some live LLC bank.  TD-NUCA is
  exempt by construction: bypassed regions live in L1 with no LLC copy and
  the runtime's flush protocol (not inclusion) guarantees coherence.
* **no dead-bank residency** — fault-disabled banks hold nothing.

:class:`InvariantChecker` is driven by the machine in strict mode: cheap
checks after every task, a full sweep every ``interval`` tasks and at
stats-collection time.  :func:`check_machine` is the standalone one-shot
entry point used by tests.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "InvariantViolation",
    "InvariantError",
    "InvariantChecker",
    "check_machine",
]


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant: which check failed and the offending state."""

    check: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.check}] {self.detail}"


class InvariantError(AssertionError):
    """Raised by strict mode on the first dirty invariant sweep."""

    def __init__(self, violations: list[InvariantViolation]) -> None:
        self.violations = violations
        lines = "\n".join(f"  {v}" for v in violations[:20])
        extra = len(violations) - 20
        if extra > 0:
            lines += f"\n  ... and {extra} more"
        super().__init__(f"{len(violations)} invariant violation(s):\n{lines}")


def _check_structure(machine, out: list[InvariantViolation]) -> None:
    for cache in (*machine.l1s, *machine.llc.banks):
        for issue in cache.audit():
            out.append(InvariantViolation("occupancy-balance", issue))
    for issue in machine.directory.audit():
        out.append(InvariantViolation("directory-internal", issue))


def _check_directory(machine, out: list[InvariantViolation]) -> None:
    directory = machine.directory
    for core, l1 in enumerate(machine.l1s):
        for block, dirty in l1.resident_items():
            if not (directory.sharer_mask(block) >> core) & 1:
                out.append(
                    InvariantViolation(
                        "directory-presence",
                        f"core {core} holds block {block} untracked by the "
                        "directory",
                    )
                )
            if dirty and directory.owner(block) != core:
                out.append(
                    InvariantViolation(
                        "directory-owner",
                        f"core {core} holds block {block} dirty but the "
                        f"directory owner is {directory.owner(block)}",
                    )
                )
    for block, owner in directory.owner_items():
        l1 = machine.l1s[owner]
        if not l1.contains(block):
            out.append(
                InvariantViolation(
                    "directory-owner",
                    f"directory says core {owner} owns block {block} but its "
                    "L1 does not hold it",
                )
            )
        elif not l1.is_dirty(block):
            out.append(
                InvariantViolation(
                    "directory-owner",
                    f"directory says core {owner} owns block {block} but the "
                    "L1 copy is clean",
                )
            )


def _check_inclusion(machine, out: list[InvariantViolation]) -> None:
    # TD-NUCA machines (rrts set) legitimately hold bypassed lines in L1
    # with no LLC copy and retire LLC mappings via runtime flushes, so the
    # hardware-inclusion invariant only applies to the other policies.
    if machine.rrts is not None:
        return
    llc_resident: set[int] = set()
    for bank in machine.llc.banks:
        llc_resident.update(bank.resident_blocks())
    for core, l1 in enumerate(machine.l1s):
        for block in l1.resident_blocks():
            if block not in llc_resident:
                out.append(
                    InvariantViolation(
                        "llc-inclusion",
                        f"core {core} L1 holds block {block} with no LLC copy",
                    )
                )


def _check_dead_banks(machine, out: list[InvariantViolation]) -> None:
    for bank in machine.llc.dead_banks:
        occ = machine.llc.banks[bank].occupancy
        if occ:
            out.append(
                InvariantViolation(
                    "dead-bank-residency",
                    f"dead LLC bank {bank} holds {occ} block(s)",
                )
            )


def check_machine(machine) -> list[InvariantViolation]:
    """Full invariant sweep over a quiescent machine; [] means clean."""
    out: list[InvariantViolation] = []
    _check_dead_banks(machine, out)
    _check_structure(machine, out)
    _check_directory(machine, out)
    _check_inclusion(machine, out)
    return out


class InvariantChecker:
    """Strict-mode driver: cheap checks per task, full sweeps periodically.

    ``interval`` bounds the cost: the O(machine-state) full sweep runs every
    ``interval`` task boundaries (and on demand at end of run); the O(dead
    banks) residency check runs at every boundary.  All violations raise
    :class:`InvariantError` immediately — degradation must never be
    silently wrong.
    """

    def __init__(self, interval: int = 16) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.checks_run = 0
        self.full_sweeps = 0
        self.violations_found = 0

    def _raise_if_dirty(self, violations: list[InvariantViolation]) -> None:
        if violations:
            self.violations_found += len(violations)
            raise InvariantError(violations)

    def on_task_boundary(self, machine, task_index: int) -> None:
        """Called by the machine after each task's trace completes."""
        self.checks_run += 1
        if task_index % self.interval == 0:
            self.full_sweep(machine)
            return
        out: list[InvariantViolation] = []
        _check_dead_banks(machine, out)
        self._raise_if_dirty(out)

    def full_sweep(self, machine) -> None:
        """Run every invariant; raises :class:`InvariantError` if dirty."""
        self.full_sweeps += 1
        self._raise_if_dirty(check_machine(machine))

    # --- checkpoint/restore ---

    def state_dict(self) -> dict:
        return {
            "checks_run": self.checks_run,
            "full_sweeps": self.full_sweeps,
            "violations_found": self.violations_found,
        }

    def load_state_dict(self, state: dict) -> None:
        self.checks_run = int(state["checks_run"])
        self.full_sweeps = int(state["full_sweeps"])
        self.violations_found = int(state["violations_found"])
