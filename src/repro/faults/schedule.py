"""Deterministic, seed-driven hardware fault schedules.

A schedule is parsed from a compact spec string (config field
``SystemConfig.fault_spec`` or CLI ``--faults``)::

    bank:5@task=100,link:3-7@task=250,dram:transient:p=1e-4

* ``bank:B@task=N``   — LLC bank ``B`` dies after ``N`` tasks have run
  (``N=0``: dead from the start).  The machine clears the bank, remaps
  every NUCA policy around it and back-invalidates orphaned L1 lines.
* ``link:A-B@task=N`` — the NoC link between adjacent tiles ``A`` and
  ``B`` fails after ``N`` tasks; the mesh reroutes around it.
* ``dram:transient:p=P[:retries=R]`` — every DRAM access independently
  fails with probability ``P`` and is retried (bounded by ``R``,
  default 6) with exponential-backoff latency.

Events at the same trigger fire in spec order.  All randomness (the
transient-error draws) comes from one ``random.Random`` seeded from the
experiment seed, so a faulted run is exactly reproducible.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = [
    "BankFault",
    "LinkFault",
    "DramFaultModel",
    "FaultSchedule",
    "parse_fault_spec",
]

#: default bound on consecutive retries of one DRAM access.
DEFAULT_DRAM_RETRIES = 6

_BANK_RE = re.compile(r"^bank:(\d+)@task=(\d+)$")
_LINK_RE = re.compile(r"^link:(\d+)-(\d+)@task=(\d+)$")
_DRAM_RE = re.compile(
    r"^dram:transient:p=([0-9.eE+-]+)(?::retries=(\d+))?$"
)


@dataclass(frozen=True)
class BankFault:
    """LLC bank ``bank`` is disabled once ``at_task`` tasks completed."""

    bank: int
    at_task: int


@dataclass(frozen=True)
class LinkFault:
    """The mesh link between adjacent tiles ``a`` and ``b`` fails."""

    a: int
    b: int
    at_task: int


@dataclass(frozen=True)
class DramFaultModel:
    """Per-access transient DRAM error model (active for the whole run)."""

    probability: float
    max_retries: int = DEFAULT_DRAM_RETRIES


@dataclass(frozen=True)
class FaultSchedule:
    """Parsed, validated fault plan for one run."""

    bank_faults: tuple[BankFault, ...] = ()
    link_faults: tuple[LinkFault, ...] = ()
    dram: DramFaultModel | None = None

    def __bool__(self) -> bool:
        return bool(self.bank_faults or self.link_faults or self.dram)

    @property
    def last_trigger(self) -> int:
        """Highest task index any discrete event is waiting on."""
        triggers = [f.at_task for f in self.bank_faults]
        triggers += [f.at_task for f in self.link_faults]
        return max(triggers, default=0)

    def validate_against(self, num_banks: int, num_tiles: int) -> None:
        """Machine-geometry checks deferred until the machine exists."""
        alive = num_banks - len({f.bank for f in self.bank_faults})
        for f in self.bank_faults:
            if not 0 <= f.bank < num_banks:
                raise ValueError(
                    f"fault targets bank {f.bank}, machine has {num_banks}"
                )
        if alive <= 0:
            raise ValueError("fault schedule would disable every LLC bank")
        for f in self.link_faults:
            for tile in (f.a, f.b):
                if not 0 <= tile < num_tiles:
                    raise ValueError(
                        f"fault targets tile {tile}, machine has {num_tiles}"
                    )


def parse_fault_spec(spec: str) -> FaultSchedule:
    """Parse a ``--faults`` spec string; raises ``ValueError`` with the
    offending item on malformed input."""
    banks: list[BankFault] = []
    links: list[LinkFault] = []
    dram: DramFaultModel | None = None
    for raw in spec.split(","):
        item = raw.strip()
        if not item:
            continue
        if m := _BANK_RE.match(item):
            banks.append(BankFault(int(m.group(1)), int(m.group(2))))
            continue
        if m := _LINK_RE.match(item):
            a, b, at = int(m.group(1)), int(m.group(2)), int(m.group(3))
            if a == b:
                raise ValueError(f"link fault {item!r}: endpoints must differ")
            links.append(LinkFault(a, b, at))
            continue
        if m := _DRAM_RE.match(item):
            if dram is not None:
                raise ValueError("at most one dram fault model per schedule")
            try:
                p = float(m.group(1))
            except ValueError:
                raise ValueError(
                    f"dram fault {item!r}: probability is not a number"
                ) from None
            if not 0.0 <= p < 1.0:
                raise ValueError(
                    f"dram fault {item!r}: probability must be in [0, 1)"
                )
            retries = (
                int(m.group(2)) if m.group(2) is not None else DEFAULT_DRAM_RETRIES
            )
            if retries <= 0:
                raise ValueError(f"dram fault {item!r}: retries must be positive")
            dram = DramFaultModel(p, retries)
            continue
        raise ValueError(
            f"unrecognised fault spec item {item!r}; expected "
            "'bank:B@task=N', 'link:A-B@task=N' or 'dram:transient:p=P'"
        )
    seen: set[int] = set()
    for f in banks:
        if f.bank in seen:
            raise ValueError(f"bank {f.bank} scheduled to fail twice")
        seen.add(f.bank)
    seen_links: set[frozenset[int]] = set()
    for f in links:
        key = frozenset((f.a, f.b))
        if key in seen_links:
            raise ValueError(f"link {f.a}-{f.b} scheduled to fail twice")
        seen_links.add(key)
    return FaultSchedule(tuple(banks), tuple(links), dram)
