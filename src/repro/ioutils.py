"""Atomic file writes.

Every file the CLI or the sweep harness produces (sweep JSON, checkpoint
shards, manifests, DOT exports) goes through :func:`atomic_write`: content
is written to a temporary file in the destination directory, fsynced, and
``os.replace``d over the target.  A crash — up to and including ``kill -9``
mid-write — therefore never leaves a truncated file behind: readers see
either the previous complete content or the new complete content.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path

__all__ = ["atomic_write", "atomic_publish"]


@contextmanager
def atomic_write(path: str | Path, mode: str = "w", *, fsync: bool = True):
    """Yield a writable file handle whose content replaces ``path`` atomically.

    The handle writes to a ``*.tmp`` sibling; on clean exit from the
    ``with`` block the data is flushed (and fsynced unless ``fsync=False``)
    and renamed over ``path`` in one ``os.replace`` call, after which the
    parent directory is fsynced so the rename itself survives a power
    loss.  If the block raises, the temporary file is removed and ``path``
    is untouched.  Only write modes (``"w"``/``"wb"``/``"x"``/``"xb"``)
    make sense here.
    """
    if any(flag in mode for flag in ("r", "a", "+")):
        raise ValueError(f"atomic_write needs a plain write mode, got {mode!r}")
    path = Path(path)
    directory = str(path.parent) if str(path.parent) else "."
    try:
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=path.name + ".", suffix=".tmp"
        )
    except FileNotFoundError as exc:
        raise FileNotFoundError(
            f"atomic_write target directory does not exist: {directory!r} "
            f"(writing {path.name!r}); create it first"
        ) from exc
    try:
        encoding = None if "b" in mode else "utf-8"
        with os.fdopen(fd, mode.replace("x", "w"), encoding=encoding) as fh:
            yield fh
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
        if fsync:
            _fsync_dir(directory)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_publish(path: str | Path, data: bytes, *, fsync: bool = True) -> bool:
    """Exclusive single-writer publish: ``data`` becomes ``path`` iff no one
    published first.

    Unlike :func:`atomic_write` (last-writer-wins via ``os.replace``),
    this links a fully-written, fsynced temporary file to ``path`` with
    ``os.link`` — which fails atomically when ``path`` already exists, on
    local filesystems and on NFS alike.  Readers therefore never observe
    partial content, and exactly one of N racing publishers wins; the
    rest get ``False`` and keep the existing entry.  This is the fleet
    result store's and claim protocol's arbitration primitive.
    """
    path = Path(path)
    directory = str(path.parent) if str(path.parent) else "."
    try:
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=path.name + ".", suffix=".pub"
        )
    except FileNotFoundError as exc:
        raise FileNotFoundError(
            f"atomic_publish target directory does not exist: {directory!r} "
            f"(writing {path.name!r}); create it first"
        ) from exc
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        try:
            os.link(tmp, path)
        except FileExistsError:
            return False
        if fsync:
            _fsync_dir(directory)
        return True
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def _fsync_dir(directory: str) -> None:
    """Fsync a directory so a completed rename is durable.

    A crash between ``os.replace`` and the directory metadata reaching disk
    can otherwise resurrect the old file.  Some platforms (Windows, some
    network filesystems) refuse to open or fsync directories; those errors
    are swallowed — the write is still atomic, just not rename-durable.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
