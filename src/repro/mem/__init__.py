"""Memory substrate: address arithmetic, regions, virtual address
allocation, page tables and TLBs.

This package stands in for the OS memory-management layer the paper's
full-system gem5 simulation provided: a virtual address space per program,
a (deliberately fragmentable) virtual-to-physical page mapping, and
per-core TLBs used by the ``tdnuca_*`` instructions for their iterative
address translation (paper Fig. 5).
"""

from repro.mem.address import AddressMap
from repro.mem.allocator import VirtualAllocator
from repro.mem.pagetable import PageTable
from repro.mem.region import Region
from repro.mem.tlb import TLB

__all__ = ["AddressMap", "Region", "VirtualAllocator", "PageTable", "TLB"]
