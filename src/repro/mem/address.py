"""Block and page address arithmetic.

Addresses are plain integers (byte addresses).  ``AddressMap`` centralizes
the shifts/masks derived from the configured block and page sizes so the
rest of the simulator never hand-rolls them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AddressMap"]


class AddressMap:
    """Byte-address <-> block/page arithmetic for one machine geometry.

    Parameters
    ----------
    block_bytes, page_bytes:
        Power-of-two sizes; ``page_bytes`` must be a multiple of
        ``block_bytes``.
    physical_address_bits:
        Width of the physical address space (paper: 42 bits); used for
        validation of physical frames.
    """

    def __init__(
        self,
        block_bytes: int = 64,
        page_bytes: int = 4096,
        physical_address_bits: int = 42,
    ) -> None:
        for name, value in (("block_bytes", block_bytes), ("page_bytes", page_bytes)):
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two")
        if page_bytes % block_bytes:
            raise ValueError("page_bytes must be a multiple of block_bytes")
        self.block_bytes = block_bytes
        self.page_bytes = page_bytes
        self.block_shift = block_bytes.bit_length() - 1
        self.page_shift = page_bytes.bit_length() - 1
        self.blocks_per_page = page_bytes // block_bytes
        self.physical_address_bits = physical_address_bits
        self.max_physical_address = (1 << physical_address_bits) - 1

    # --- scalar helpers ---

    def block_of(self, addr: int) -> int:
        """Block number containing byte address ``addr``."""
        return addr >> self.block_shift

    def page_of(self, addr: int) -> int:
        """Page number containing byte address ``addr``."""
        return addr >> self.page_shift

    def block_base(self, block: int) -> int:
        """First byte address of block number ``block``."""
        return block << self.block_shift

    def page_base(self, page: int) -> int:
        """First byte address of page number ``page``."""
        return page << self.page_shift

    def page_of_block(self, block: int) -> int:
        """Page number containing block number ``block``."""
        return block >> (self.page_shift - self.block_shift)

    def align_down_block(self, addr: int) -> int:
        return addr & ~(self.block_bytes - 1)

    def align_up_block(self, addr: int) -> int:
        return (addr + self.block_bytes - 1) & ~(self.block_bytes - 1)

    def align_down_page(self, addr: int) -> int:
        return addr & ~(self.page_bytes - 1)

    def align_up_page(self, addr: int) -> int:
        return (addr + self.page_bytes - 1) & ~(self.page_bytes - 1)

    def is_block_aligned(self, addr: int) -> bool:
        return (addr & (self.block_bytes - 1)) == 0

    # --- vectorized helpers (hot paths use these per the HPC guides) ---

    def blocks_of(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`block_of`."""
        return np.asarray(addrs, dtype=np.int64) >> self.block_shift

    def pages_of_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`page_of_block`."""
        shift = self.page_shift - self.block_shift
        return np.asarray(blocks, dtype=np.int64) >> shift

    def block_range(self, start: int, size: int) -> range:
        """Block numbers of all blocks that *overlap* ``[start, start+size)``.

        Empty for ``size <= 0``.
        """
        if size <= 0:
            return range(0)
        return range(self.block_of(start), self.block_of(start + size - 1) + 1)

    def inner_block_range(self, start: int, size: int) -> range:
        """Block numbers *entirely contained* in ``[start, start+size)``.

        This implements the paper's Section III-D alignment rule: partially
        covered first/last blocks are excluded from TD-NUCA management.
        """
        if size <= 0:
            return range(0)
        lo = self.align_up_block(start)
        hi = self.align_down_block(start + size)
        if hi <= lo:
            return range(0)
        return range(self.block_of(lo), self.block_of(hi))

    def page_range(self, start: int, size: int) -> range:
        """Page numbers of all pages that overlap ``[start, start+size)``."""
        if size <= 0:
            return range(0)
        return range(self.page_of(start), self.page_of(start + size - 1) + 1)
