"""Virtual address space allocation for simulated programs.

Workload generators allocate their data structures (matrices, histograms,
point sets) through a :class:`VirtualAllocator` so that distinct structures
never alias, and so allocations can optionally be misaligned to exercise the
paper's partial-cache-block handling (Section III-D).
"""

from __future__ import annotations

from repro.mem.region import Region

__all__ = ["VirtualAllocator"]


class VirtualAllocator:
    """Bump allocator over a simulated virtual address space.

    Parameters
    ----------
    base:
        First allocatable virtual address (defaults past the null page).
    alignment:
        Default alignment of returned regions, must be a power of two.
    """

    def __init__(self, base: int = 0x1000, alignment: int = 64) -> None:
        if alignment <= 0 or alignment & (alignment - 1):
            raise ValueError("alignment must be a positive power of two")
        if base < 0:
            raise ValueError("base must be non-negative")
        self._cursor = base
        self._alignment = alignment
        self._regions: list[Region] = []

    @property
    def regions(self) -> tuple[Region, ...]:
        """All regions handed out so far, in allocation order."""
        return tuple(self._regions)

    @property
    def bytes_allocated(self) -> int:
        return sum(r.size for r in self._regions)

    def allocate(self, size: int, name: str = "", align: int | None = None) -> Region:
        """Allocate ``size`` bytes, aligned to ``align`` (default allocator
        alignment).  ``align=1`` produces deliberately unaligned regions."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        alignment = self._alignment if align is None else align
        if alignment <= 0 or alignment & (alignment - 1):
            raise ValueError("align must be a positive power of two")
        start = (self._cursor + alignment - 1) & ~(alignment - 1)
        region = Region(start, size, name)
        self._cursor = start + size
        self._regions.append(region)
        return region

    def allocate_array(
        self, count: int, elem_bytes: int, name: str = "", align: int | None = None
    ) -> Region:
        """Allocate a contiguous array of ``count`` elements."""
        if count <= 0 or elem_bytes <= 0:
            raise ValueError("count and elem_bytes must be positive")
        return self.allocate(count * elem_bytes, name, align)
