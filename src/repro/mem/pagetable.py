"""Virtual-to-physical page mapping.

Stands in for the Linux page allocator the paper simulates in detail: on
first touch, each virtual page is assigned a physical frame.  Frames are
handed out mostly contiguously, with a configurable probability of a
discontinuity, because the paper's RRT registration (Fig. 5) collapses
*contiguous* physical pages into single RRT entries — fragmentation is what
makes large dependencies occupy multiple RRT entries (Section V-E observes
this for Jacobi, MD5 and Redblack).
"""

from __future__ import annotations

import numpy as np

from repro.mem.address import AddressMap
from repro.mem.region import Region

__all__ = ["PageTable"]


class PageTable:
    """First-touch VA->PA page table with controllable fragmentation.

    Parameters
    ----------
    amap:
        Address geometry.
    fragmentation:
        Probability in ``[0, 1]`` that a newly allocated frame does *not*
        directly follow the previously allocated one.
    seed:
        Seed for the fragmentation RNG (deterministic mappings).
    """

    def __init__(
        self,
        amap: AddressMap,
        fragmentation: float = 0.05,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= fragmentation <= 1.0:
            raise ValueError("fragmentation must be in [0, 1]")
        self.amap = amap
        self.fragmentation = fragmentation
        self._rng = np.random.default_rng(seed)
        self._map: dict[int, int] = {}
        self._next_frame = 1  # frame 0 reserved
        self._max_frame = amap.max_physical_address >> amap.page_shift

    # --- frame allocation ---

    def _allocate_frame(self) -> int:
        frame = self._next_frame
        if frame > self._max_frame:
            raise MemoryError("simulated physical address space exhausted")
        gap = 0
        if self.fragmentation > 0 and self._rng.random() < self.fragmentation:
            gap = int(self._rng.integers(1, 64))
        self._next_frame = frame + 1 + gap
        return frame

    # --- checkpoint/restore ---

    def state_dict(self) -> dict:
        return {
            "map": list(self._map.items()),
            "next_frame": self._next_frame,
            "rng": self._rng.bit_generator.state,
        }

    def load_state_dict(self, state: dict) -> None:
        self._map = {int(v): int(f) for v, f in state["map"]}
        self._next_frame = int(state["next_frame"])
        self._rng.bit_generator.state = state["rng"]

    # --- mapping ---

    def translate_page(self, vpage: int) -> int:
        """Physical frame for virtual page ``vpage`` (first-touch allocate)."""
        frame = self._map.get(vpage)
        if frame is None:
            frame = self._allocate_frame()
            self._map[vpage] = frame
        return frame

    def is_mapped(self, vpage: int) -> bool:
        return vpage in self._map

    def translate(self, vaddr: int) -> int:
        """Physical byte address for virtual byte address ``vaddr``."""
        frame = self.translate_page(vaddr >> self.amap.page_shift)
        return (frame << self.amap.page_shift) | (vaddr & (self.amap.page_bytes - 1))

    def ensure_mapped(self, region: Region) -> None:
        """Touch every page of ``region`` so frames exist."""
        for vpage in region.pages(self.amap):
            self.translate_page(vpage)

    def translate_blocks(self, vblocks: np.ndarray) -> np.ndarray:
        """Vectorized translation of virtual block numbers to physical ones.

        Works on unique pages only (64 blocks/page), per the vectorization
        guidance for hot paths.
        """
        vblocks = np.asarray(vblocks, dtype=np.int64)
        shift = self.amap.page_shift - self.amap.block_shift
        vpages = vblocks >> shift
        uniq, inverse = np.unique(vpages, return_inverse=True)
        frames = np.fromiter(
            (self.translate_page(int(p)) for p in uniq), dtype=np.int64, count=len(uniq)
        )
        offsets = vblocks & ((1 << shift) - 1)
        return (frames[inverse] << shift) | offsets

    # --- range collapsing (paper Fig. 5) ---

    def physical_ranges(self, region: Region) -> list[tuple[int, int]]:
        """Contiguous physical byte ranges ``(start, end)`` covering ``region``.

        This mirrors the iterative translation performed by the
        ``tdnuca_register`` instruction: walk virtual pages, translate each,
        and collapse physically contiguous pages into a single range.  The
        first and last ranges are clipped to the region's byte bounds.
        """
        if not region:
            return []
        ranges: list[tuple[int, int]] = []
        page_bytes = self.amap.page_bytes
        run_start = run_end = None
        for vpage in region.pages(self.amap):
            pstart = self.translate_page(vpage) << self.amap.page_shift
            # Clip to the region's bytes within this page.
            lo = max(region.start, vpage << self.amap.page_shift)
            hi = min(region.end, (vpage + 1) << self.amap.page_shift)
            plo = pstart + (lo & (page_bytes - 1))
            phi = pstart + ((hi - 1) & (page_bytes - 1)) + 1
            if run_end is not None and plo == run_end:
                run_end = phi
            else:
                if run_start is not None:
                    ranges.append((run_start, run_end))
                run_start, run_end = plo, phi
        if run_start is not None:
            ranges.append((run_start, run_end))
        return ranges

    @property
    def pages_mapped(self) -> int:
        return len(self._map)
