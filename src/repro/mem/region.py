"""Virtual memory regions.

A :class:`Region` is a named, half-open ``[start, start+size)`` byte range
in the simulated virtual address space.  Task dependencies, workload data
structures and RRT entries are all expressed over regions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.address import AddressMap

__all__ = ["Region"]


@dataclass(frozen=True, order=True)
class Region:
    """Half-open byte range ``[start, start + size)``."""

    start: int
    size: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("region start must be non-negative")
        if self.size < 0:
            raise ValueError("region size must be non-negative")

    @property
    def end(self) -> int:
        """One past the last byte."""
        return self.start + self.size

    def __bool__(self) -> bool:
        return self.size > 0

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def contains_region(self, other: "Region") -> bool:
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "Region") -> bool:
        """Whether the regions share at least one byte (empty regions never
        overlap anything)."""
        return (
            self.size > 0
            and other.size > 0
            and self.start < other.end
            and other.start < self.end
        )

    def intersection(self, other: "Region") -> "Region":
        """Overlap of the two regions (possibly empty)."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        return Region(start, max(0, end - start), self.name)

    def split(self, chunk: int) -> list["Region"]:
        """Split into consecutive chunks of at most ``chunk`` bytes."""
        if chunk <= 0:
            raise ValueError("chunk must be positive")
        out = []
        offset = self.start
        index = 0
        while offset < self.end:
            size = min(chunk, self.end - offset)
            out.append(Region(offset, size, f"{self.name}[{index}]"))
            offset += size
            index += 1
        return out

    def subregion(self, offset: int, size: int, name: str = "") -> "Region":
        """Region of ``size`` bytes starting ``offset`` bytes into this one."""
        if offset < 0 or size < 0 or offset + size > self.size:
            raise ValueError("subregion out of bounds")
        return Region(self.start + offset, size, name or self.name)

    # --- geometry helpers ---

    def blocks(self, amap: AddressMap) -> range:
        """All block numbers overlapping this region."""
        return amap.block_range(self.start, self.size)

    def inner_blocks(self, amap: AddressMap) -> range:
        """Block numbers entirely contained in this region (paper §III-D)."""
        return amap.inner_block_range(self.start, self.size)

    def pages(self, amap: AddressMap) -> range:
        """All page numbers overlapping this region."""
        return amap.page_range(self.start, self.size)

    def num_blocks(self, amap: AddressMap) -> int:
        return len(self.blocks(amap))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return f"Region(0x{self.start:x}+0x{self.size:x}{label})"
