"""Per-core TLB model.

Only translation *bookkeeping* matters to the reproduction: the paper's
Section V-A shows TD-NUCA's extra translations (from the iterative
``tdnuca_register`` walks) add under 0.01% TLB accesses and essentially no
misses, because the task is about to touch the same pages anyway.  We model
a 64-entry fully-associative TLB with LRU replacement and hit/miss counters
so that claim can be re-measured.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.mem.pagetable import PageTable

__all__ = ["TLB", "TLBStats"]


@dataclass
class TLBStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def merge(self, other: "TLBStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.invalidations += other.invalidations


@dataclass
class TLB:
    """Fully-associative LRU TLB in front of a shared :class:`PageTable`."""

    pagetable: PageTable
    entries: int = 64
    stats: TLBStats = field(default_factory=TLBStats)

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError("TLB must have at least one entry")
        self._cache: OrderedDict[int, int] = OrderedDict()

    def lookup_page(self, vpage: int) -> int:
        """Translate a virtual page, updating hit/miss stats and LRU order."""
        frame = self._cache.get(vpage)
        if frame is not None:
            self.stats.hits += 1
            self._cache.move_to_end(vpage)
            return frame
        self.stats.misses += 1
        frame = self.pagetable.translate_page(vpage)
        self._cache[vpage] = frame
        if len(self._cache) > self.entries:
            self._cache.popitem(last=False)
        return frame

    def lookup(self, vaddr: int) -> int:
        """Translate a virtual byte address."""
        amap = self.pagetable.amap
        frame = self.lookup_page(vaddr >> amap.page_shift)
        return (frame << amap.page_shift) | (vaddr & (amap.page_bytes - 1))

    def invalidate(self, vpage: int) -> bool:
        """Drop one entry (OS shootdown); returns whether it was present."""
        present = self._cache.pop(vpage, None) is not None
        if present:
            self.stats.invalidations += 1
        return present

    def flush(self) -> None:
        """Drop all entries (full shootdown)."""
        self.stats.invalidations += len(self._cache)
        self._cache.clear()

    @property
    def occupancy(self) -> int:
        return len(self._cache)

    # --- checkpoint/restore ---

    def state_dict(self) -> dict:
        # Item order is the LRU order — it must survive the round trip.
        return {
            "cache": list(self._cache.items()),
            "stats": {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "invalidations": self.stats.invalidations,
            },
        }

    def load_state_dict(self, state: dict) -> None:
        self._cache = OrderedDict(
            (int(v), int(f)) for v, f in state["cache"]
        )
        self.stats = TLBStats(**state["stats"])
