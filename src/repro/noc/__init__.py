"""Network-on-chip substrate: mesh topology, XY routing, traffic accounting.

Models the paper's 4x4 mesh (1-cycle links, 1-cycle routers) at the level
the evaluation needs: hop distances between tiles (Fig. 11 "NUCA distance"),
and bytes moved through routers (Fig. 12 data movement, Fig. 14 NoC dynamic
energy).
"""

from repro.noc.topology import Mesh
from repro.noc.routing import fault_route, hops, xy_route
from repro.noc.traffic import MessageClass, TrafficStats

__all__ = ["Mesh", "hops", "xy_route", "fault_route", "MessageClass", "TrafficStats"]
