"""Dimension-ordered (XY) routing with a fault-aware fallback.

Deterministic XY routing is what commercial tiled meshes and the paper's
Garnet setup use: travel along X to the destination column, then along Y.
The route (list of routers traversed, inclusive of endpoints) is needed for
per-router byte accounting; the hop count alone suffices for latency.

When link failures are injected, :func:`fault_route` keeps the XY path
wherever it survives and falls back to a BFS shortest path around dead
links otherwise — the simulator's stand-in for a fault-tolerant routing
algorithm's escape paths.
"""

from __future__ import annotations

from repro.noc.topology import Mesh

__all__ = ["xy_route", "fault_route", "hops"]


def hops(mesh: Mesh, src: int, dst: int) -> int:
    """Hop count of the XY route from ``src`` to ``dst``."""
    return mesh.hops(src, dst)


def xy_route(mesh: Mesh, src: int, dst: int) -> list[int]:
    """Tiles traversed from ``src`` to ``dst`` under XY routing, inclusive.

    ``xy_route(m, t, t) == [t]``; the number of links traversed is
    ``len(route) - 1 == hops``.
    """
    sx, sy = mesh.coords(src)
    dx, dy = mesh.coords(dst)
    route = [src]
    x, y = sx, sy
    step_x = 1 if dx > sx else -1
    while x != dx:
        x += step_x
        route.append(mesh.tile_at(x, y))
    step_y = 1 if dy > sy else -1
    while y != dy:
        y += step_y
        route.append(mesh.tile_at(x, y))
    return route


def fault_route(mesh: Mesh, src: int, dst: int) -> list[int]:
    """Route from ``src`` to ``dst`` honouring dead links.

    The deterministic XY path is used whenever every link on it is alive;
    otherwise the mesh's BFS shortest live path is taken.  With no injected
    faults this is exactly :func:`xy_route`.
    """
    route = xy_route(mesh, src, dst)
    if not mesh.dead_links:
        return route
    for a, b in zip(route, route[1:]):
        if not mesh.link_alive(a, b):
            return mesh.route(src, dst)
    return route
