"""Tiled mesh topology.

Tiles are numbered row-major: tile ``t`` sits at ``(x, y) = (t % W, t // W)``.
Each tile holds one core, its private L1, one LLC bank and one NoC router
(paper Fig. 1).  Clusters are the rectangular groups (quadrants in the 4x4
default) used by TD-NUCA's LLC Cluster Replication and by R-NUCA's
rotational interleaving.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Mesh"]


class Mesh:
    """A ``width`` x ``height`` mesh partitioned into rectangular clusters."""

    def __init__(
        self,
        width: int = 4,
        height: int = 4,
        cluster_width: int = 2,
        cluster_height: int = 2,
    ) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("mesh dimensions must be positive")
        if width % cluster_width or height % cluster_height:
            raise ValueError("cluster dimensions must divide mesh dimensions")
        self.width = width
        self.height = height
        self.cluster_width = cluster_width
        self.cluster_height = cluster_height
        self.num_tiles = width * height
        self.clusters_x = width // cluster_width
        self.clusters_y = height // cluster_height
        self.num_clusters = self.clusters_x * self.clusters_y
        self.cluster_size = cluster_width * cluster_height
        # Precompute the all-pairs hop-distance matrix (Manhattan under XY
        # routing); tiny (16x16) and read in every memory access.
        xs = np.arange(self.num_tiles) % width
        ys = np.arange(self.num_tiles) // width
        self.distance = (
            np.abs(xs[:, None] - xs[None, :]) + np.abs(ys[:, None] - ys[None, :])
        ).astype(np.int64)
        self._cluster_of = (
            (ys // cluster_height) * self.clusters_x + (xs // cluster_width)
        ).astype(np.int64)
        self._cluster_tiles: list[tuple[int, ...]] = [
            tuple(int(t) for t in np.nonzero(self._cluster_of == c)[0])
            for c in range(self.num_clusters)
        ]

    def coords(self, tile: int) -> tuple[int, int]:
        """``(x, y)`` coordinates of ``tile``."""
        self._check(tile)
        return tile % self.width, tile // self.width

    def tile_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError("coordinates out of range")
        return y * self.width + x

    def hops(self, src: int, dst: int) -> int:
        """Hop count between two tiles (0 for the local tile)."""
        self._check(src)
        self._check(dst)
        return int(self.distance[src, dst])

    def cluster_of(self, tile: int) -> int:
        """Cluster index containing ``tile``."""
        self._check(tile)
        return int(self._cluster_of[tile])

    def cluster_tiles(self, cluster: int) -> tuple[int, ...]:
        """Tiles belonging to ``cluster``, ascending."""
        if not 0 <= cluster < self.num_clusters:
            raise ValueError("cluster out of range")
        return self._cluster_tiles[cluster]

    def local_cluster_tiles(self, tile: int) -> tuple[int, ...]:
        """Tiles of the cluster containing ``tile``."""
        return self.cluster_tiles(self.cluster_of(tile))

    def diameter(self) -> int:
        """Maximum hop distance between any pair of tiles."""
        return int(self.distance.max())

    def mean_distance_from(self, tile: int) -> float:
        """Average distance from ``tile`` to every tile (incl. itself) —
        the expected NUCA distance of a uniformly interleaved access."""
        self._check(tile)
        return float(self.distance[tile].mean())

    def _check(self, tile: int) -> None:
        if not 0 <= tile < self.num_tiles:
            raise ValueError(f"tile {tile} out of range [0, {self.num_tiles})")
