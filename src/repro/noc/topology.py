"""Tiled mesh topology.

Tiles are numbered row-major: tile ``t`` sits at ``(x, y) = (t % W, t // W)``.
Each tile holds one core, its private L1, one LLC bank and one NoC router
(paper Fig. 1).  Clusters are the rectangular groups (quadrants in the 4x4
default) used by TD-NUCA's LLC Cluster Replication and by R-NUCA's
rotational interleaving.

Links can be disabled at runtime (:meth:`Mesh.fail_link`): the all-pairs
distance matrix is recomputed by BFS over the surviving links, so every
latency/traffic computation transparently pays the detour.  The fault-free
Manhattan distances are kept in :attr:`Mesh.manhattan` for hop-inflation
reporting.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["Mesh"]


class Mesh:
    """A ``width`` x ``height`` mesh partitioned into rectangular clusters."""

    def __init__(
        self,
        width: int = 4,
        height: int = 4,
        cluster_width: int = 2,
        cluster_height: int = 2,
    ) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("mesh dimensions must be positive")
        if width % cluster_width or height % cluster_height:
            raise ValueError("cluster dimensions must divide mesh dimensions")
        self.width = width
        self.height = height
        self.cluster_width = cluster_width
        self.cluster_height = cluster_height
        self.num_tiles = width * height
        self.clusters_x = width // cluster_width
        self.clusters_y = height // cluster_height
        self.num_clusters = self.clusters_x * self.clusters_y
        self.cluster_size = cluster_width * cluster_height
        # Precompute the all-pairs hop-distance matrix (Manhattan under XY
        # routing); tiny (16x16) and read in every memory access.
        xs = np.arange(self.num_tiles) % width
        ys = np.arange(self.num_tiles) // width
        self.distance = (
            np.abs(xs[:, None] - xs[None, :]) + np.abs(ys[:, None] - ys[None, :])
        ).astype(np.int64)
        #: fault-free Manhattan distances (never mutated by link failures).
        self.manhattan = self.distance.copy()
        #: :attr:`distance` as plain per-tile Python lists — the form the
        #: per-reference hot path reads, so no numpy scalar (and no
        #: ``int()`` conversion) ever crosses a memory access.  Rebuilt
        #: whenever :meth:`fail_link` recomputes the matrix.
        self.dist_rows: list[list[int]] = self.distance.tolist()
        self._dead_links: set[frozenset[int]] = set()
        self._cluster_of = (
            (ys // cluster_height) * self.clusters_x + (xs // cluster_width)
        ).astype(np.int64)
        self._cluster_tiles: list[tuple[int, ...]] = [
            tuple(int(t) for t in np.nonzero(self._cluster_of == c)[0])
            for c in range(self.num_clusters)
        ]

    def coords(self, tile: int) -> tuple[int, int]:
        """``(x, y)`` coordinates of ``tile``."""
        self._check(tile)
        return tile % self.width, tile // self.width

    def tile_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError("coordinates out of range")
        return y * self.width + x

    def hops(self, src: int, dst: int) -> int:
        """Hop count between two tiles (0 for the local tile)."""
        self._check(src)
        self._check(dst)
        return self.dist_rows[src][dst]

    def cluster_of(self, tile: int) -> int:
        """Cluster index containing ``tile``."""
        self._check(tile)
        return int(self._cluster_of[tile])

    def cluster_tiles(self, cluster: int) -> tuple[int, ...]:
        """Tiles belonging to ``cluster``, ascending."""
        if not 0 <= cluster < self.num_clusters:
            raise ValueError("cluster out of range")
        return self._cluster_tiles[cluster]

    def local_cluster_tiles(self, tile: int) -> tuple[int, ...]:
        """Tiles of the cluster containing ``tile``."""
        return self.cluster_tiles(self.cluster_of(tile))

    def diameter(self) -> int:
        """Maximum hop distance between any pair of tiles."""
        return int(self.distance.max())

    def mean_distance_from(self, tile: int) -> float:
        """Average distance from ``tile`` to every tile (incl. itself) —
        the expected NUCA distance of a uniformly interleaved access."""
        self._check(tile)
        return float(self.distance[tile].mean())

    def _check(self, tile: int) -> None:
        if not 0 <= tile < self.num_tiles:
            raise ValueError(f"tile {tile} out of range [0, {self.num_tiles})")

    # ------------------------------------------------------------------
    # link failures (fault injection)
    # ------------------------------------------------------------------

    @property
    def dead_links(self) -> frozenset[frozenset[int]]:
        """Disabled links as unordered tile pairs."""
        return frozenset(self._dead_links)

    def link_alive(self, a: int, b: int) -> bool:
        """Whether the (structural) link between ``a`` and ``b`` is up."""
        return frozenset((a, b)) not in self._dead_links

    def are_adjacent(self, a: int, b: int) -> bool:
        """Whether tiles ``a`` and ``b`` share a structural mesh link."""
        self._check(a)
        self._check(b)
        return int(self.manhattan[a, b]) == 1

    def _neighbors(self, tile: int) -> list[int]:
        """Live neighbours of ``tile`` (dead links excluded)."""
        x, y = tile % self.width, tile // self.width
        out = []
        for nx, ny in ((x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1)):
            if 0 <= nx < self.width and 0 <= ny < self.height:
                n = ny * self.width + nx
                if frozenset((tile, n)) not in self._dead_links:
                    out.append(n)
        return out

    def fail_link(self, a: int, b: int) -> None:
        """Disable the link between adjacent tiles ``a`` and ``b`` and
        recompute all hop distances around it.

        Raises ``ValueError`` if the tiles are not adjacent, the link is
        already dead, or removing it would disconnect the mesh (a
        disconnected NoC cannot degrade gracefully).
        """
        if not self.are_adjacent(a, b):
            raise ValueError(f"tiles {a} and {b} are not mesh neighbours")
        key = frozenset((a, b))
        if key in self._dead_links:
            raise ValueError(f"link {a}-{b} is already dead")
        self._dead_links.add(key)
        distance = self._bfs_all_pairs()
        if (distance < 0).any():
            self._dead_links.discard(key)
            raise ValueError(
                f"disabling link {a}-{b} would disconnect the mesh"
            )
        self.distance = distance
        self.dist_rows = distance.tolist()

    def _bfs_all_pairs(self) -> np.ndarray:
        """All-pairs shortest hop counts over the surviving links;
        unreachable pairs are -1."""
        n = self.num_tiles
        distance = np.full((n, n), -1, dtype=np.int64)
        for src in range(n):
            row = distance[src]
            row[src] = 0
            queue = deque([src])
            while queue:
                t = queue.popleft()
                d = row[t] + 1
                for nb in self._neighbors(t):
                    if row[nb] < 0:
                        row[nb] = d
                        queue.append(nb)
        return distance

    def route(self, src: int, dst: int) -> list[int]:
        """A shortest live path from ``src`` to ``dst``, inclusive.

        With no dead links this matches Manhattan length (though not
        necessarily the XY path); with failures it is the BFS detour the
        recomputed :attr:`distance` matrix charges for.
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return [src]
        parent: dict[int, int] = {src: src}
        queue = deque([src])
        while queue:
            t = queue.popleft()
            if t == dst:
                break
            for nb in self._neighbors(t):
                if nb not in parent:
                    parent[nb] = t
                    queue.append(nb)
        if dst not in parent:
            raise ValueError(f"no live path from {src} to {dst}")
        path = [dst]
        while path[-1] != src:
            path.append(parent[path[-1]])
        path.reverse()
        return path

    # --- checkpoint/restore ---

    def state_dict(self) -> dict:
        """Only the dead-link set is stored; the distance matrix is
        recomputed on load by the same BFS :meth:`fail_link` runs, so the
        restored ``dist_rows`` are bit-identical to the live ones."""
        return {"dead_links": sorted(sorted(pair) for pair in self._dead_links)}

    def load_state_dict(self, state: dict) -> None:
        dead = {frozenset(int(t) for t in pair) for pair in state["dead_links"]}
        self._dead_links = dead
        if dead:
            distance = self._bfs_all_pairs()
            if (distance < 0).any():
                raise ValueError("snapshot dead links disconnect the mesh")
            self.distance = distance
        else:
            self.distance = self.manhattan.copy()
        self.dist_rows = self.distance.tolist()

    def mean_hop_inflation(self) -> float:
        """Average extra hops per (src, dst) pair vs the fault-free mesh —
        the degraded-mode reroute cost reported in the fault stats."""
        if not self._dead_links:
            return 0.0
        return float((self.distance - self.manhattan).mean())
