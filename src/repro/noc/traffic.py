"""NoC traffic accounting.

The paper's data-movement metric (Fig. 12) is "the aggregate number of bytes
transferred through all routers in the NoC", including LLC-bypassed blocks
travelling DRAM -> L1 under TD-NUCA.  A message of ``B`` bytes whose XY
route crosses ``h`` links passes through ``h + 1`` routers, contributing
``B * (h + 1)`` router-bytes.  Flit-hops (16-byte flits) feed the NoC
dynamic-energy model (Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["MessageClass", "TrafficStats", "CONTROL_BYTES", "data_message_bytes"]

#: size of a control message (request, invalidation, ack) in bytes.
CONTROL_BYTES = 8
#: header bytes added to a cache-block data message.
HEADER_BYTES = 8


def data_message_bytes(block_bytes: int) -> int:
    """Bytes on the wire for one cache-block transfer."""
    return block_bytes + HEADER_BYTES


class MessageClass(Enum):
    """Coherence/NoC message classes tracked separately for reporting."""

    REQUEST = "request"          # core -> LLC bank / directory
    DATA = "data"                # LLC bank -> core (block fill)
    WRITEBACK = "writeback"      # L1 -> LLC bank (dirty block)
    INVALIDATION = "invalidation"  # directory -> sharer
    ACK = "ack"                  # sharer -> directory
    FLUSH = "flush"              # tdnuca_flush control traffic
    DRAM_REQUEST = "dram_request"  # LLC bank / core -> memory controller
    DRAM_DATA = "dram_data"      # memory controller -> LLC bank / core


@dataclass
class TrafficStats:
    """Aggregate NoC traffic counters.

    ``flit_bytes`` is the flit width used to convert messages to flits for
    the energy model.
    """

    flit_bytes: int = 16
    router_bytes: int = 0
    flit_hops: int = 0
    messages: int = 0
    bytes_by_class: dict[MessageClass, int] = field(default_factory=dict)
    # NUCA-distance census over core -> LLC-bank requests (Fig. 11).
    nuca_distance_sum: int = 0
    nuca_distance_count: int = 0

    def record_message(
        self, msg_class: MessageClass, size_bytes: int, hop_count: int, count: int = 1
    ) -> None:
        """Account ``count`` identical messages of ``size_bytes`` over a
        route of ``hop_count`` links."""
        if size_bytes < 0 or hop_count < 0 or count < 0:
            raise ValueError("traffic quantities must be non-negative")
        routers = hop_count + 1
        self.router_bytes += size_bytes * routers * count
        flits = -(-size_bytes // self.flit_bytes)  # ceil division
        self.flit_hops += flits * routers * count
        self.messages += count
        self.bytes_by_class[msg_class] = (
            self.bytes_by_class.get(msg_class, 0) + size_bytes * count
        )

    def record_nuca_distance(self, hop_count: int, count: int = 1) -> None:
        """Record the NUCA distance of ``count`` core->LLC requests.

        Bypassed accesses must *not* be recorded here (paper Fig. 11 note).
        """
        if hop_count < 0 or count < 0:
            raise ValueError("traffic quantities must be non-negative")
        self.nuca_distance_sum += hop_count * count
        self.nuca_distance_count += count

    @property
    def mean_nuca_distance(self) -> float:
        if not self.nuca_distance_count:
            return 0.0
        return self.nuca_distance_sum / self.nuca_distance_count

    def merge(self, other: "TrafficStats") -> None:
        self.router_bytes += other.router_bytes
        self.flit_hops += other.flit_hops
        self.messages += other.messages
        for cls, nbytes in other.bytes_by_class.items():
            self.bytes_by_class[cls] = self.bytes_by_class.get(cls, 0) + nbytes
        self.nuca_distance_sum += other.nuca_distance_sum
        self.nuca_distance_count += other.nuca_distance_count
