"""NoC traffic accounting.

The paper's data-movement metric (Fig. 12) is "the aggregate number of bytes
transferred through all routers in the NoC", including LLC-bypassed blocks
travelling DRAM -> L1 under TD-NUCA.  A message of ``B`` bytes whose XY
route crosses ``h`` links passes through ``h + 1`` routers, contributing
``B * (h + 1)`` router-bytes.  Flit-hops (16-byte flits) feed the NoC
dynamic-energy model (Fig. 14).

Performance shape: :class:`MessageClass` is an :class:`~enum.IntEnum` so a
message class indexes a dense per-class counter list directly — no enum
hashing on the hot path.  The machine's per-reference loop does not call
:meth:`TrafficStats.record_message` per message at all; it accumulates
deltas in local integers and flushes them once per task through
:meth:`TrafficStats.add_batch`, which is also where the range validation
happens.  ``record_message`` remains the public per-message API and still
raises on bad input.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = [
    "MessageClass",
    "TrafficStats",
    "CONTROL_BYTES",
    "NUM_MESSAGE_CLASSES",
    "data_message_bytes",
]

#: size of a control message (request, invalidation, ack) in bytes.
CONTROL_BYTES = 8
#: header bytes added to a cache-block data message.
HEADER_BYTES = 8


def data_message_bytes(block_bytes: int) -> int:
    """Bytes on the wire for one cache-block transfer."""
    return block_bytes + HEADER_BYTES


class MessageClass(IntEnum):
    """Coherence/NoC message classes tracked separately for reporting.

    Values are dense indices into :attr:`TrafficStats.class_bytes`.
    """

    REQUEST = 0        # core -> LLC bank / directory
    DATA = 1           # LLC bank -> core (block fill)
    WRITEBACK = 2      # L1 -> LLC bank (dirty block)
    INVALIDATION = 3   # directory -> sharer
    ACK = 4            # sharer -> directory
    FLUSH = 5          # tdnuca_flush control traffic
    DRAM_REQUEST = 6   # LLC bank / core -> memory controller
    DRAM_DATA = 7      # memory controller -> LLC bank / core

    @property
    def label(self) -> str:
        """Lower-case report label (``"dram_request"`` style)."""
        return self.name.lower()


NUM_MESSAGE_CLASSES = len(MessageClass)


class TrafficStats:
    """Aggregate NoC traffic counters.

    ``flit_bytes`` is the flit width used to convert messages to flits for
    the energy model.  Per-class byte counts live in the dense
    :attr:`class_bytes` list indexed by :class:`MessageClass`;
    :attr:`bytes_by_class` presents them as the familiar dict view.
    """

    __slots__ = (
        "flit_bytes",
        "router_bytes",
        "flit_hops",
        "messages",
        "class_bytes",
        "nuca_distance_sum",
        "nuca_distance_count",
    )

    def __init__(self, flit_bytes: int = 16) -> None:
        self.flit_bytes = flit_bytes
        self.router_bytes = 0
        self.flit_hops = 0
        self.messages = 0
        self.class_bytes: list[int] = [0] * NUM_MESSAGE_CLASSES
        # NUCA-distance census over core -> LLC-bank requests (Fig. 11).
        self.nuca_distance_sum = 0
        self.nuca_distance_count = 0

    @property
    def bytes_by_class(self) -> dict[MessageClass, int]:
        """Per-class byte totals for the classes seen so far."""
        return {
            cls: self.class_bytes[cls]
            for cls in MessageClass
            if self.class_bytes[cls]
        }

    def record_message(
        self, msg_class: MessageClass, size_bytes: int, hop_count: int, count: int = 1
    ) -> None:
        """Account ``count`` identical messages of ``size_bytes`` over a
        route of ``hop_count`` links."""
        if size_bytes < 0 or hop_count < 0 or count < 0:
            raise ValueError("traffic quantities must be non-negative")
        routers = hop_count + 1
        self.router_bytes += size_bytes * routers * count
        flits = -(-size_bytes // self.flit_bytes)  # ceil division
        self.flit_hops += flits * routers * count
        self.messages += count
        self.class_bytes[msg_class] += size_bytes * count

    def record_nuca_distance(self, hop_count: int, count: int = 1) -> None:
        """Record the NUCA distance of ``count`` core->LLC requests.

        Bypassed accesses must *not* be recorded here (paper Fig. 11 note).
        """
        if hop_count < 0 or count < 0:
            raise ValueError("traffic quantities must be non-negative")
        self.nuca_distance_sum += hop_count * count
        self.nuca_distance_count += count

    def add_batch(
        self,
        router_bytes: int,
        flit_hops: int,
        messages: int,
        class_bytes,
        nuca_distance_sum: int = 0,
        nuca_distance_count: int = 0,
    ) -> None:
        """Flush a batch of pre-aggregated traffic deltas.

        This is the hot loop's once-per-task flush point, and the place the
        range checks moved to: validation runs once per batch instead of
        once per message.  ``class_bytes`` must be a dense per-class list
        of length :data:`NUM_MESSAGE_CLASSES`.
        """
        if len(class_bytes) != NUM_MESSAGE_CLASSES:
            raise ValueError(
                f"class_bytes must have {NUM_MESSAGE_CLASSES} entries, "
                f"got {len(class_bytes)}"
            )
        if (
            router_bytes < 0
            or flit_hops < 0
            or messages < 0
            or nuca_distance_sum < 0
            or nuca_distance_count < 0
            or any(b < 0 for b in class_bytes)
        ):
            raise ValueError("traffic quantities must be non-negative")
        self.router_bytes += router_bytes
        self.flit_hops += flit_hops
        self.messages += messages
        mine = self.class_bytes
        for i in range(NUM_MESSAGE_CLASSES):
            mine[i] += class_bytes[i]
        self.nuca_distance_sum += nuca_distance_sum
        self.nuca_distance_count += nuca_distance_count

    def snapshot(self) -> dict[str, object]:
        """Cheap point-in-time copy of the cumulative counters.

        Used by the observability timeline (sampled every N tasks), so a
        later mutation of this object never aliases an archived sample.
        """
        return {
            "router_bytes": self.router_bytes,
            "flit_hops": self.flit_hops,
            "messages": self.messages,
            "class_bytes": list(self.class_bytes),
            "nuca_distance_sum": self.nuca_distance_sum,
            "nuca_distance_count": self.nuca_distance_count,
        }

    @property
    def mean_nuca_distance(self) -> float:
        if not self.nuca_distance_count:
            return 0.0
        return self.nuca_distance_sum / self.nuca_distance_count

    # --- checkpoint/restore ---

    def state_dict(self) -> dict:
        return self.snapshot()

    def load_state_dict(self, state: dict) -> None:
        self.router_bytes = int(state["router_bytes"])
        self.flit_hops = int(state["flit_hops"])
        self.messages = int(state["messages"])
        class_bytes = [int(b) for b in state["class_bytes"]]
        if len(class_bytes) != NUM_MESSAGE_CLASSES:
            raise ValueError("class_bytes length mismatch in snapshot")
        self.class_bytes = class_bytes
        self.nuca_distance_sum = int(state["nuca_distance_sum"])
        self.nuca_distance_count = int(state["nuca_distance_count"])

    def merge(self, other: "TrafficStats") -> None:
        self.router_bytes += other.router_bytes
        self.flit_hops += other.flit_hops
        self.messages += other.messages
        mine = self.class_bytes
        for i, nbytes in enumerate(other.class_bytes):
            mine[i] += nbytes
        self.nuca_distance_sum += other.nuca_distance_sum
        self.nuca_distance_count += other.nuca_distance_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrafficStats(router_bytes={self.router_bytes}, "
            f"flit_hops={self.flit_hops}, messages={self.messages})"
        )
