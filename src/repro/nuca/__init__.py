"""NUCA mapping policies.

The policy answers one question for every L1 miss or writeback: *which LLC
bank serves this physical block for this core* (or should the LLC be
bypassed entirely).  Three policies are provided, matching the paper's
evaluation:

* :class:`~repro.nuca.snuca.SNuca` — static address interleaving (baseline).
* :class:`~repro.nuca.rnuca.RNuca` — OS-page-classification Reactive NUCA,
  augmented with shared read-only *data* replication as in Section V.
* :class:`~repro.core.tdnuca.TdNucaPolicy` — the paper's contribution
  (lives in :mod:`repro.core`).
"""

from repro.nuca.base import BYPASS, FlushAction, NucaPolicy
from repro.nuca.classifier import PageClass, PageClassifier
from repro.nuca.rnuca import RNuca
from repro.nuca.rotational import rotational_bank
from repro.nuca.snuca import SNuca

__all__ = [
    "BYPASS",
    "NucaPolicy",
    "FlushAction",
    "SNuca",
    "RNuca",
    "PageClass",
    "PageClassifier",
    "rotational_bank",
]
