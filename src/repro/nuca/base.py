"""NUCA policy interface.

A policy resolves ``(core, physical block)`` to an LLC bank — or to
:data:`BYPASS` — and may request cache flushes *before* an access proceeds
(R-NUCA page reclassification does this; TD-NUCA performs its flushes from
the runtime side instead).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = ["BYPASS", "FlushAction", "NucaPolicy"]

#: sentinel bank id meaning "do not allocate in the LLC; go to memory".
BYPASS = -1


@dataclass(frozen=True)
class FlushAction:
    """A flush the machine must perform before the triggering access.

    ``blocks`` are physical block numbers.  ``l1_cores`` lists cores whose
    private caches must drop the blocks; ``llc_banks`` lists banks that must
    drop them.  Dirty copies are written back toward memory.
    """

    blocks: tuple[int, ...]
    l1_cores: tuple[int, ...] = ()
    llc_banks: tuple[int, ...] = ()
    reason: str = ""


@dataclass
class PolicyStats:
    """Counters every policy keeps (extended by subclasses)."""

    bypasses: int = 0
    local_bank_hits: int = 0  # resolutions to the requesting core's bank
    resolutions: int = 0
    #: resolutions redirected away from a fault-disabled bank.
    dead_bank_redirects: int = 0


class NucaPolicy(ABC):
    """Strategy object consulted on every L1 miss / writeback.

    Every policy supports graceful degradation under LLC bank failures:
    :meth:`disable_bank` marks a bank dead, and any resolution that lands
    on it is deterministically remapped (in :meth:`_count`) to one of the
    surviving banks, spread by the block number so the dead bank's share
    of the address space interleaves across the survivors.
    """

    #: human-readable policy name used in reports.
    name: str = "base"
    #: extra cycles the resolution adds to an L1 miss (TD-NUCA: RRT latency).
    lookup_cycles: int = 0
    #: total LLC banks the policy places over; subclasses set this so the
    #: base class can compute the surviving-bank list on failures.
    total_banks: int = 0

    def __init__(self) -> None:
        self.stats = PolicyStats()
        self._dead_banks: set[int] = set()
        self._alive_banks: list[int] = []

    @abstractmethod
    def bank_for(self, core: int, block: int, write: bool) -> int:
        """LLC bank serving ``block`` for ``core`` (or :data:`BYPASS`)."""

    # --- fault injection ---

    @property
    def dead_banks(self) -> frozenset[int]:
        return frozenset(self._dead_banks)

    def disable_bank(self, bank: int) -> None:
        """Remap placement around ``bank`` from now on.

        Raises ``ValueError`` for an unknown bank or when no alive bank
        would remain (a chip with zero LLC capacity cannot degrade
        gracefully — it is simply broken).
        """
        if not 0 <= bank < self.total_banks:
            raise ValueError(
                f"bank {bank} out of range [0, {self.total_banks})"
            )
        if bank in self._dead_banks:
            raise ValueError(f"bank {bank} is already disabled")
        if len(self._dead_banks) + 1 >= self.total_banks:
            raise ValueError("cannot disable the last alive bank")
        self._dead_banks.add(bank)
        self._alive_banks = [
            b for b in range(self.total_banks) if b not in self._dead_banks
        ]

    def pre_access(self, core: int, block: int, write: bool) -> FlushAction | None:
        """Hook called before resolving a demand access; may return a flush
        (page reclassification).  Default: no action."""
        return None

    def classify_pages(self, core: int, pages, wrote) -> list[FlushAction]:
        """Batch classification hook called once per task trace with the
        unique (physical) pages the trace touches and whether each is
        written.  R-NUCA overrides this to run its OS page classifier;
        the default does nothing."""
        return []

    # --- checkpoint/restore ---

    def state_dict(self) -> dict:
        """Base counters plus the dead-bank set.  Subclasses with extra
        mutable state extend the dict via :meth:`_extra_state` hooks."""
        from dataclasses import asdict

        return {
            "stats": asdict(self.stats),
            "dead_banks": sorted(self._dead_banks),
            "extra": self._extra_state(),
        }

    def load_state_dict(self, state: dict) -> None:
        self.stats = PolicyStats(**state["stats"])
        self._dead_banks = {int(b) for b in state["dead_banks"]}
        self._alive_banks = (
            [b for b in range(self.total_banks) if b not in self._dead_banks]
            if self._dead_banks
            else []
        )
        self._load_extra_state(state["extra"])

    def _extra_state(self) -> dict:
        """Subclass hook: additional mutable state to checkpoint."""
        return {}

    def _load_extra_state(self, extra: dict) -> None:
        if extra:
            raise ValueError(f"policy {self.name} cannot load extra state")

    def _count(self, core: int, bank: int, block: int = 0) -> int:
        """Record a resolution in the stats and return ``bank``, remapping
        it first if fault injection disabled that bank."""
        if self._dead_banks and bank >= 0 and bank in self._dead_banks:
            alive = self._alive_banks
            bank = alive[block % len(alive)]
            self.stats.dead_bank_redirects += 1
        self.stats.resolutions += 1
        if bank == BYPASS:
            self.stats.bypasses += 1
        elif bank == core:
            self.stats.local_bank_hits += 1
        return bank
