"""OS-level first-touch page classification (Section II-C).

The OS (simulated here) tags each page on first access as *private* to the
accessing core.  When a second core touches the page it becomes *shared* —
*shared read-only* if the dirty bit was never set — and can never return to
private.  Private→shared transitions flush the page from the first core's
caches (and its TLB entry); in the paper's augmented R-NUCA, a write to a
shared read-only page likewise flushes all replicas everywhere.

This captures exactly the drawbacks the paper motivates TD-NUCA with:
temporarily-private data under a dynamic task scheduler degenerates to
*shared*, and classification is page-granular.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["PageClass", "PageTransition", "PageClassifier", "ClassifierStats"]


class PageClass(Enum):
    PRIVATE = "private"
    SHARED_RO = "shared_read_only"
    SHARED = "shared"


@dataclass(frozen=True)
class PageTransition:
    """A classification change requiring OS/cache intervention."""

    page: int
    old: PageClass
    new: PageClass
    #: core whose caches must be flushed (private->shared); None = all cores
    flush_core: int | None


@dataclass
class ClassifierStats:
    first_touches: int = 0
    private_to_shared: int = 0
    private_to_shared_ro: int = 0
    ro_to_shared: int = 0
    tlb_shootdowns: int = 0


class _PageInfo:
    __slots__ = ("cls", "owner", "dirty")

    def __init__(self, owner: int, dirty: bool) -> None:
        self.cls = PageClass.PRIVATE
        self.owner = owner
        self.dirty = dirty


class PageClassifier:
    """First-touch classifier over (physical) page numbers."""

    def __init__(self) -> None:
        self._pages: dict[int, _PageInfo] = {}
        self.stats = ClassifierStats()

    def classify(self, page: int) -> PageClass | None:
        """Current class of ``page`` (None if never touched)."""
        info = self._pages.get(page)
        return info.cls if info else None

    def owner(self, page: int) -> int | None:
        """Owning core for a private page, else None."""
        info = self._pages.get(page)
        return info.owner if info and info.cls is PageClass.PRIVATE else None

    def access(self, core: int, page: int, write: bool) -> PageTransition | None:
        """Record an access; returns the transition it causes, if any."""
        info = self._pages.get(page)
        if info is None:
            self._pages[page] = _PageInfo(core, write)
            self.stats.first_touches += 1
            return None
        cls = info.cls
        if cls is PageClass.PRIVATE:
            if core == info.owner:
                info.dirty = info.dirty or write
                return None
            # Second core: page leaves private forever.
            old_owner = info.owner
            if info.dirty or write:
                info.cls = PageClass.SHARED
                self.stats.private_to_shared += 1
            else:
                info.cls = PageClass.SHARED_RO
                self.stats.private_to_shared_ro += 1
            info.dirty = info.dirty or write
            self.stats.tlb_shootdowns += 1
            return PageTransition(page, PageClass.PRIVATE, info.cls, old_owner)
        if cls is PageClass.SHARED_RO:
            if write:
                info.cls = PageClass.SHARED
                info.dirty = True
                self.stats.ro_to_shared += 1
                self.stats.tlb_shootdowns += 1
                return PageTransition(page, PageClass.SHARED_RO, PageClass.SHARED, None)
            return None
        return None  # SHARED is terminal

    def census(self) -> dict[PageClass, int]:
        """End-of-run page counts per class."""
        out = {c: 0 for c in PageClass}
        for info in self._pages.values():
            out[info.cls] += 1
        return out

    @property
    def pages_tracked(self) -> int:
        return len(self._pages)

    # --- checkpoint/restore ---

    def state_dict(self) -> dict:
        from dataclasses import asdict

        return {
            "pages": [
                (page, info.cls.value, info.owner, info.dirty)
                for page, info in self._pages.items()
            ],
            "stats": asdict(self.stats),
        }

    def load_state_dict(self, state: dict) -> None:
        pages: dict[int, _PageInfo] = {}
        for page, cls, owner, dirty in state["pages"]:
            info = _PageInfo(int(owner), bool(dirty))
            info.cls = PageClass(cls)
            pages[int(page)] = info
        self._pages = pages
        self.stats = ClassifierStats(**state["stats"])
