"""Hardware-managed D-NUCA with gradual block migration (Section II-A).

The classic microarchitectural alternative the paper contrasts with:
blocks start address-interleaved and *migrate* one mesh hop toward the
requesting core once that core has touched them ``migration_threshold``
times since the last move.  A per-block location table resolves lookups
(real designs pay a complex multi-step NUCA Search for this — modelled as
:attr:`lookup_cycles` on every L1 miss).

This policy exists to let the reproduction quantify the paper's
motivation: hardware migration chases sharers back and forth on shared
data and cannot know anything about reuse, so it buys distance on private
data while paying search latency and migration traffic everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.topology import Mesh
from repro.nuca.base import NucaPolicy

__all__ = ["DNuca", "Migration"]


@dataclass(frozen=True)
class Migration:
    """One block move the machine must perform (bank-to-bank transfer)."""

    block: int
    src_bank: int
    dst_bank: int


class DNuca(NucaPolicy):
    """Gradual-migration D-NUCA with a centralized location table."""

    name = "D-NUCA"

    def __init__(
        self,
        mesh: Mesh,
        migration_threshold: int = 4,
        lookup_cycles: int = 2,
    ) -> None:
        super().__init__()
        if mesh.num_tiles & (mesh.num_tiles - 1):
            raise ValueError("interleaving needs a power-of-two tile count")
        if migration_threshold <= 0:
            raise ValueError("migration_threshold must be positive")
        self.mesh = mesh
        self.migration_threshold = migration_threshold
        #: NUCA-search cost added to every L1 miss.
        self.lookup_cycles = lookup_cycles
        self.total_banks = mesh.num_tiles
        self._bank_mask = mesh.num_tiles - 1
        #: block -> current bank (only blocks that have moved).
        self._location: dict[int, int] = {}
        #: block -> (last requesting core, consecutive count).
        self._streak: dict[int, tuple[int, int]] = {}
        self.migrations = 0

    # --- placement ---

    def home_bank(self, block: int) -> int:
        return block & self._bank_mask

    def bank_for(self, core: int, block: int, write: bool) -> int:
        bank = self._location.get(block)
        if bank is None:
            bank = self.home_bank(block)
        return self._count(core, bank, block)

    def disable_bank(self, bank: int) -> None:
        """A dead bank also voids the location table's knowledge of the
        blocks it held: they re-enter at their (remapped) home banks."""
        super().disable_bank(bank)
        doomed = [b for b, loc in self._location.items() if loc == bank]
        for block in doomed:
            del self._location[block]
            self._streak.pop(block, None)

    # --- migration engine ---

    def _step_toward(self, bank: int, core: int) -> int:
        """One XY-routing hop from ``bank`` toward ``core``."""
        bx, by = self.mesh.coords(bank)
        cx, cy = self.mesh.coords(core)
        if bx != cx:
            bx += 1 if cx > bx else -1
        elif by != cy:
            by += 1 if cy > by else -1
        return self.mesh.tile_at(bx, by)

    def post_access(self, core: int, block: int, bank: int) -> Migration | None:
        """Called by the machine after each LLC access; may migrate."""
        if bank == core:
            self._streak.pop(block, None)
            return None
        last_core, count = self._streak.get(block, (core, 0))
        count = count + 1 if last_core == core else 1
        if count < self.migration_threshold:
            self._streak[block] = (core, count)
            return None
        self._streak.pop(block, None)
        dst = self._step_toward(bank, core)
        if dst == bank or dst in self._dead_banks:
            return None
        self._location[block] = dst
        self.migrations += 1
        return Migration(block, bank, dst)

    def evicted(self, block: int) -> None:
        """The machine dropped the block from the LLC: forget its location
        (it will re-enter at its home bank)."""
        self._location.pop(block, None)
        self._streak.pop(block, None)

    @property
    def blocks_relocated(self) -> int:
        return len(self._location)

    # --- checkpoint/restore ---

    def _extra_state(self) -> dict:
        return {
            "location": list(self._location.items()),
            "streak": [(b, c, n) for b, (c, n) in self._streak.items()],
            "migrations": self.migrations,
        }

    def _load_extra_state(self, extra: dict) -> None:
        self._location = {int(b): int(loc) for b, loc in extra["location"]}
        self._streak = {int(b): (int(c), int(n)) for b, c, n in extra["streak"]}
        self.migrations = int(extra["migrations"])
