"""Reactive NUCA, augmented with shared read-only data replication.

Placement rules (Sections II-B and V of the paper):

* **private pages** — all blocks go to the owning core's local LLC bank;
* **shared pages** — blocks are address-interleaved across all banks
  (identical to S-NUCA);
* **shared read-only pages** — blocks are replicated with rotational
  interleaving: each cluster can hold its own copy, and an access is served
  by the bank the block rotates to inside the accessing core's cluster.
  (The original R-NUCA only replicates instruction pages; the paper's
  evaluation — and therefore this class — extends replication to read-only
  *data* pages.)

Reclassifications require flushes: private→shared flushes the page from the
former owner's L1 and local bank; shared-RO→shared flushes every replica
from all caches.  Both are returned as :class:`FlushAction` for the machine
to execute (modelling the OS/TLB-shootdown cost path).
"""

from __future__ import annotations

from repro.mem.address import AddressMap
from repro.noc.topology import Mesh
from repro.nuca.base import FlushAction, NucaPolicy
from repro.nuca.classifier import PageClass, PageClassifier
from repro.nuca.rotational import rotational_bank

__all__ = ["RNuca"]


class RNuca(NucaPolicy):
    """OS-driven Reactive NUCA with read-only data replication."""

    name = "R-NUCA"

    def __init__(self, mesh: Mesh, amap: AddressMap) -> None:
        super().__init__()
        if mesh.num_tiles & (mesh.num_tiles - 1):
            raise ValueError("R-NUCA interleaving needs a power-of-two tile count")
        self.mesh = mesh
        self.amap = amap
        self.classifier = PageClassifier()
        self.total_banks = mesh.num_tiles
        self._bank_mask = mesh.num_tiles - 1
        self._page_block_shift = amap.page_shift - amap.block_shift

    # --- helpers ---

    def _page_of_block(self, block: int) -> int:
        return block >> self._page_block_shift

    def _page_blocks(self, page: int) -> tuple[int, ...]:
        base = page << self._page_block_shift
        return tuple(range(base, base + self.amap.blocks_per_page))

    # --- NucaPolicy interface ---

    def pre_access(self, core: int, block: int, write: bool) -> FlushAction | None:
        page = self._page_of_block(block)
        transition = self.classifier.access(core, page, write)
        if transition is None:
            return None
        return self._transition_flush(transition)

    def classify_pages(self, core: int, pages, wrote) -> list[FlushAction]:
        """Run the OS classifier over a task's unique pages (reads first,
        then writes, approximating in-task ordering); returns the flushes
        the reclassifications require."""
        actions: list[FlushAction] = []
        for page, w in zip(pages, wrote):
            page = int(page)
            transition = self.classifier.access(core, page, False)
            if transition is not None:
                actions.append(self._transition_flush(transition))
            if w:
                transition = self.classifier.access(core, page, True)
                if transition is not None:
                    actions.append(self._transition_flush(transition))
        return actions

    def _transition_flush(self, transition) -> FlushAction:
        blocks = self._page_blocks(transition.page)
        if transition.old is PageClass.PRIVATE:
            owner = transition.flush_core
            assert owner is not None
            return FlushAction(
                blocks, l1_cores=(owner,), llc_banks=(owner,), reason="private->shared"
            )
        all_tiles = tuple(range(self.mesh.num_tiles))
        return FlushAction(
            blocks, l1_cores=all_tiles, llc_banks=all_tiles, reason="read_only->shared"
        )

    def bank_for(self, core: int, block: int, write: bool) -> int:
        page = self._page_of_block(block)
        cls = self.classifier.classify(page)
        if cls is PageClass.PRIVATE:
            owner = self.classifier.owner(page)
            assert owner is not None
            return self._count(core, owner, block)
        if cls is PageClass.SHARED_RO:
            return self._count(core, rotational_bank(self.mesh, core, block), block)
        # SHARED or untouched (cannot happen after pre_access): interleave.
        return self._count(core, block & self._bank_mask, block)

    # --- checkpoint/restore ---

    def _extra_state(self) -> dict:
        return {"classifier": self.classifier.state_dict()}

    def _load_extra_state(self, extra: dict) -> None:
        self.classifier.load_state_dict(extra["classifier"])
