"""Rotational interleaving of replicated blocks within clusters.

R-NUCA's rotational interleaving (and TD-NUCA's cluster spreading) place a
replicated block at one bank of the *accessing core's* cluster, chosen by
the low bits of the block number so that the replicas of consecutive blocks
rotate across the cluster's banks.  Every cluster can hold its own replica;
the worst-case NUCA distance drops from the chip diameter to the cluster
diameter (paper Sections II-B and III).
"""

from __future__ import annotations

from repro.noc.topology import Mesh

__all__ = ["rotational_bank", "cluster_bank_for_block"]


def cluster_bank_for_block(cluster_tiles: tuple[int, ...], block: int) -> int:
    """Bank within ``cluster_tiles`` serving ``block``.

    The paper uses "the last two bits of the block address" for its 4-bank
    clusters; generalized here to any cluster size.
    """
    if not cluster_tiles:
        raise ValueError("cluster has no tiles")
    return cluster_tiles[block % len(cluster_tiles)]


def rotational_bank(mesh: Mesh, core: int, block: int) -> int:
    """Replica bank for ``block`` in ``core``'s local cluster."""
    return cluster_bank_for_block(mesh.local_cluster_tiles(core), block)
