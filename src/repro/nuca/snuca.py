"""Static NUCA: address-interleaved block placement.

The baseline of the whole evaluation (and what commercial processors ship):
the low bits of the physical block number pick the bank.  Capacity is
maximized, utilization is balanced, and the expected NUCA distance is the
mesh-average 2.5 hops on a 4x4 mesh (the paper measures 2.49).
"""

from __future__ import annotations

from repro.nuca.base import NucaPolicy

__all__ = ["SNuca", "interleave_bank"]


def interleave_bank(block: int, num_banks: int) -> int:
    """Static interleaving function used by S-NUCA (and by the other
    policies for untracked / shared data)."""
    return block % num_banks


class SNuca(NucaPolicy):
    """Static address interleaving across all banks."""

    name = "S-NUCA"

    def __init__(self, num_banks: int) -> None:
        super().__init__()
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        if num_banks & (num_banks - 1):
            raise ValueError("num_banks must be a power of two")
        self.num_banks = num_banks
        self.total_banks = num_banks
        self._mask = num_banks - 1

    def bank_for(self, core: int, block: int, write: bool) -> int:
        return self._count(core, block & self._mask, block)
