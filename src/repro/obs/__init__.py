"""Simulation observability: event tracing, interval metrics, exporters.

Three pieces, all off (and free) by default:

* :class:`~repro.obs.events.EventTrace` — a ring-buffered sink of typed
  :class:`~repro.obs.events.TraceEvent` records (task start/end, flush
  begin/end, RRT install/evict/drop, NUCA remap, faults, DRAM retries),
  emitted at task/phase boundaries only.
* :class:`~repro.obs.timeline.IntervalTimeline` — per-bank occupancy and
  hit-rate snapshots plus a core->bank request matrix, sampled every N
  completed tasks, from which per-link NoC load is derived.
* :mod:`~repro.obs.export` — Chrome ``chrome://tracing`` / Perfetto JSON
  and flat JSONL writers.

The usual entry point is ``repro.Session(cfg).run(wl, pol, trace=True)``;
:class:`~repro.obs.observer.Observer` is the wiring underneath.
"""

from repro.obs.events import EventKind, EventTrace, TraceEvent, TraceSink
from repro.obs.export import (
    chrome_trace_dict,
    events_to_jsonl,
    write_chrome_trace,
    write_event_log,
)
from repro.obs.observer import DEFAULT_SAMPLE_EVERY, Observer
from repro.obs.stream import CallbackSink, event_to_dict
from repro.obs.timeline import IntervalSample, IntervalTimeline

__all__ = [
    "EventKind",
    "TraceEvent",
    "TraceSink",
    "EventTrace",
    "CallbackSink",
    "event_to_dict",
    "Observer",
    "DEFAULT_SAMPLE_EVERY",
    "IntervalSample",
    "IntervalTimeline",
    "chrome_trace_dict",
    "events_to_jsonl",
    "write_chrome_trace",
    "write_event_log",
]
