"""Typed simulation events and the ring-buffered trace that records them.

Events are emitted only at task/phase boundaries and batch-flush points —
never per memory reference — so enabling tracing cannot reintroduce the
per-reference call chains the flattened hot path removed (see DESIGN.md
and ``scripts/perf_smoke.py``, which enforces the traced/untraced call
ratio in CI).

:class:`TraceEvent` is the one event record; :attr:`TraceEvent.kind` names
what happened (:class:`EventKind`), ``ts`` is the simulated cycle it
happened at, ``core`` the issuing core (``-1`` for machine-wide events).
:class:`EventTrace` is the default :class:`TraceSink`: a fixed-capacity
ring buffer that keeps the most recent events and counts what it dropped,
so a billion-task run cannot exhaust memory.  Custom sinks (a streaming
JSONL writer, a filter) only need ``emit(event)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Iterator, Protocol, runtime_checkable

__all__ = ["EventKind", "TraceEvent", "TraceSink", "EventTrace"]

#: default ring capacity: enough for every event of the calibrated-scale
#: suite while bounding a runaway run to a few tens of MB.
DEFAULT_CAPACITY = 65_536


class EventKind(str, Enum):
    """What happened.  Values are the stable wire names used in exports."""

    TASK_START = "task_start"
    TASK_END = "task_end"
    PHASE_BEGIN = "phase_begin"
    PHASE_END = "phase_end"
    FLUSH_BEGIN = "flush_begin"
    FLUSH_END = "flush_end"
    RRT_INSTALL = "rrt_install"
    RRT_EVICT = "rrt_evict"
    RRT_DROP = "rrt_drop"
    NUCA_REMAP = "nuca_remap"
    FAULT_BANK = "fault_bank"
    FAULT_LINK = "fault_link"
    DRAM_RETRY = "dram_retry"


@dataclass(slots=True)
class TraceEvent:
    """One simulation event.

    ``dur`` is nonzero only for span events (tasks); ``args`` carries
    kind-specific detail (flush counts, RRT ranges, fault reports) and is
    ``None`` for argument-free events to keep emission allocation-light.
    """

    kind: EventKind
    ts: int
    core: int
    name: str
    dur: int = 0
    args: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": self.kind.value,
            "ts": self.ts,
            "core": self.core,
            "name": self.name,
        }
        if self.dur:
            out["dur"] = self.dur
        if self.args:
            out["args"] = self.args
        return out


@runtime_checkable
class TraceSink(Protocol):
    """Anything that can receive :class:`TraceEvent` objects."""

    def emit(self, event: TraceEvent) -> None:
        """Record one event.  Must be cheap: called at task boundaries."""


class EventTrace:
    """Ring-buffered :class:`TraceSink` keeping the newest events.

    ``total`` counts every event ever emitted; once ``total`` exceeds
    ``capacity`` the oldest events are overwritten and show up in
    :attr:`dropped`.  :meth:`events` returns the retained events oldest
    first, so wraparound is invisible to consumers.
    """

    __slots__ = ("capacity", "total", "_buf", "_head")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.total = 0
        self._buf: list[TraceEvent] = []
        self._head = 0  # index of the oldest event once the buffer is full

    @property
    def dropped(self) -> int:
        return self.total - len(self._buf)

    def emit(self, event: TraceEvent) -> None:
        buf = self._buf
        if len(buf) < self.capacity:
            buf.append(event)
        else:
            buf[self._head] = event
            head = self._head + 1
            self._head = 0 if head == self.capacity else head
        self.total += 1

    def events(self) -> list[TraceEvent]:
        """Retained events, oldest first."""
        head = self._head
        if not head:
            return list(self._buf)
        return self._buf[head:] + self._buf[:head]

    def clear(self) -> None:
        """Forget everything (used when the warmup window is discarded)."""
        self._buf.clear()
        self._head = 0
        self.total = 0

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())

    # --- checkpoint/restore ---

    def state_dict(self) -> dict:
        """Retained events (oldest first) plus the lifetime total.  The
        ring's physical layout is not preserved — a restored buffer starts
        with head 0, which emits identically from the consumer's view."""
        return {
            "total": self.total,
            "events": [
                (e.kind.value, e.ts, e.core, e.name, e.dur, e.args)
                for e in self.events()
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        events = state["events"]
        if len(events) > self.capacity:
            raise ValueError("snapshot trace exceeds this sink's capacity")
        self._buf = [
            TraceEvent(EventKind(kind), int(ts), int(core), name, int(dur), args)
            for kind, ts, core, name, dur, args in events
        ]
        self._head = 0
        self.total = int(state["total"])
