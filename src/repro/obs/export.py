"""Trace exporters: Chrome ``chrome://tracing`` / Perfetto JSON and JSONL.

The Chrome format is the ``{"traceEvents": [...]}`` JSON object both
``chrome://tracing`` and https://ui.perfetto.dev load directly.  The
convention here is **1 trace microsecond = 1 simulated cycle**:

* pid 0 ("cores"): one thread track per core carrying complete ("X")
  task events; phases are begin/end ("B"/"E") spans on a dedicated track;
  flush / RRT / fault / DRAM-retry events are instants ("i") on a
  "runtime" track (or their issuing core's track when they have one).
* pid 1 ("llc banks"): counter ("C") events per bank — occupancy in
  blocks and cumulative accesses — from the interval timeline.

The JSONL export is one JSON object per line (a ``trace_meta`` header
line, then one line per event) for grep/jq-style ad-hoc analysis.  Both
writers go through :func:`repro.ioutils.atomic_write`.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.ioutils import atomic_write
from repro.obs.events import EventKind, TraceEvent
from repro.obs.timeline import IntervalTimeline

__all__ = [
    "chrome_trace_dict",
    "write_chrome_trace",
    "events_to_jsonl",
    "write_event_log",
]

#: instant-event kinds rendered on the runtime track (core < 0) or the
#: issuing core's track.
_INSTANT_KINDS = frozenset(
    {
        EventKind.FLUSH_BEGIN,
        EventKind.FLUSH_END,
        EventKind.RRT_INSTALL,
        EventKind.RRT_EVICT,
        EventKind.RRT_DROP,
        EventKind.NUCA_REMAP,
        EventKind.FAULT_BANK,
        EventKind.FAULT_LINK,
        EventKind.DRAM_RETRY,
    }
)


def _num_cores(events: Iterable[TraceEvent], timeline) -> int:
    if timeline is not None:
        return timeline.num_cores
    cores = [e.core for e in events]
    return max(cores, default=-1) + 1


def chrome_trace_dict(
    events: Iterable[TraceEvent],
    timeline: IntervalTimeline | None = None,
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Build the Chrome/Perfetto trace object for ``events`` (+timeline)."""
    events = list(events)
    ncores = _num_cores(events, timeline)
    phase_tid = ncores
    runtime_tid = ncores + 1
    out: list[dict[str, Any]] = [
        {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
         "args": {"name": "cores"}},
    ]
    for core in range(ncores):
        out.append({"ph": "M", "pid": 0, "tid": core, "name": "thread_name",
                    "args": {"name": f"core {core}"}})
    out.append({"ph": "M", "pid": 0, "tid": phase_tid, "name": "thread_name",
                "args": {"name": "phases"}})
    out.append({"ph": "M", "pid": 0, "tid": runtime_tid, "name": "thread_name",
                "args": {"name": "runtime"}})

    body: list[dict[str, Any]] = []
    for ev in events:
        kind = ev.kind
        if kind is EventKind.TASK_START:
            body.append({"ph": "X", "pid": 0, "tid": ev.core, "ts": ev.ts,
                         "dur": ev.dur, "name": ev.name,
                         "args": ev.args or {}})
        elif kind is EventKind.TASK_END:
            continue  # folded into the TASK_START complete event
        elif kind is EventKind.PHASE_BEGIN:
            body.append({"ph": "B", "pid": 0, "tid": phase_tid, "ts": ev.ts,
                         "name": ev.name, "args": ev.args or {}})
        elif kind is EventKind.PHASE_END:
            body.append({"ph": "E", "pid": 0, "tid": phase_tid, "ts": ev.ts,
                         "name": ev.name})
        elif kind in _INSTANT_KINDS:
            tid = ev.core if ev.core >= 0 else runtime_tid
            body.append({"ph": "i", "s": "t", "pid": 0, "tid": tid,
                         "ts": ev.ts, "name": f"{kind.value}: {ev.name}",
                         "args": ev.args or {}})

    if timeline is not None and timeline.samples:
        out.append({"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
                    "args": {"name": "llc banks"}})
        for sample in timeline.samples:
            ts = sample.cycles
            for bank in range(timeline.num_banks):
                body.append({"ph": "C", "pid": 1, "tid": 0, "ts": ts,
                             "name": f"bank{bank} occupancy",
                             "args": {"blocks": sample.bank_occupancy[bank]}})
                body.append({"ph": "C", "pid": 1, "tid": 0, "ts": ts,
                             "name": f"bank{bank} accesses",
                             "args": {"accesses": sample.bank_accesses[bank]}})

    body.sort(key=lambda e: e["ts"])
    doc: dict[str, Any] = {
        "traceEvents": out + body,
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": "1us = 1 simulated cycle",
                      **(meta or {})},
    }
    return doc


def write_chrome_trace(
    path,
    events: Iterable[TraceEvent],
    timeline: IntervalTimeline | None = None,
    meta: dict[str, Any] | None = None,
) -> None:
    """Atomically write the Chrome/Perfetto trace JSON to ``path``."""
    doc = chrome_trace_dict(events, timeline, meta)
    with atomic_write(path) as fh:
        json.dump(doc, fh)
        fh.write("\n")


def events_to_jsonl(
    events: Iterable[TraceEvent], meta: dict[str, Any] | None = None
) -> str:
    """Flat JSONL: a ``trace_meta`` header line, then one event per line."""
    lines = [json.dumps({"trace_meta": dict(meta or {})}, sort_keys=True)]
    for ev in events:
        lines.append(json.dumps(ev.to_dict(), sort_keys=True))
    return "\n".join(lines) + "\n"


def write_event_log(
    path,
    events: Iterable[TraceEvent],
    meta: dict[str, Any] | None = None,
) -> None:
    """Atomically write the flat JSONL event log to ``path``."""
    with atomic_write(path) as fh:
        fh.write(events_to_jsonl(events, meta))
