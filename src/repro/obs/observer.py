"""The observer: wires event emission and interval sampling into a machine.

One :class:`Observer` watches one :class:`~repro.sim.machine.Machine`.
``attach`` plants the observer on the machine, its ISA, and its DRAM
controllers (each holds a plain ``obs`` attribute that is ``None`` when
tracing is off, so every hook site is a single attribute test on the
untraced path and the golden byte-identical snapshots are unaffected).

The executor stamps :attr:`Observer.now` with the simulated dispatch time
before running a task, so events emitted from deep inside the machine
(flushes, RRT updates, DRAM retries) carry the right timestamp without
the machine knowing about simulated time at all.

Overhead discipline: every hook is O(1) or O(num_banks) and fires at task
or phase granularity.  ``scripts/perf_smoke.py`` asserts the traced /
untraced function-call ratio stays under 1.05 in CI.
"""

from __future__ import annotations

from typing import Any

from repro.obs.events import DEFAULT_CAPACITY, EventKind, EventTrace, TraceEvent, TraceSink
from repro.obs.timeline import IntervalSample, IntervalTimeline

__all__ = ["Observer", "DEFAULT_SAMPLE_EVERY"]

#: default sampling period, in completed tasks, for interval metrics.
DEFAULT_SAMPLE_EVERY = 64


class Observer:
    """Records typed events into a sink and interval metrics into a timeline."""

    def __init__(
        self,
        sink: TraceSink | None = None,
        *,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        capacity: int = DEFAULT_CAPACITY,
        timeline: bool = True,
    ) -> None:
        self.sink: TraceSink = sink if sink is not None else EventTrace(capacity)
        self._emit = self.sink.emit  # bound once: emission is 2 calls/event
        self.sample_every = sample_every
        #: simulated cycle of the current dispatch (stamped by the executor).
        self.now = 0
        self.timeline: IntervalTimeline | None = None
        self._want_timeline = timeline
        self._machine = None
        self.mesh = None
        self._last_bank_acc: list[int] = []

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach(self, machine) -> "Observer":
        """Plant this observer on ``machine`` (and its ISA/DRAM)."""
        if self._machine is not None:
            raise RuntimeError("observer is already attached to a machine")
        self._machine = machine
        self.mesh = machine.mesh
        machine.obs = self
        machine.dram.obs = self
        if machine.isa is not None:
            machine.isa.obs = self
        cfg = machine.cfg
        if self._want_timeline:
            bank0 = machine.llc.banks[0]
            from repro.noc.traffic import CONTROL_BYTES, data_message_bytes

            self.timeline = IntervalTimeline(
                num_cores=cfg.num_cores,
                num_banks=cfg.num_banks,
                sample_every=self.sample_every,
                bank_capacity=bank0.num_sets * bank0.assoc,
                bytes_per_request=CONTROL_BYTES
                + data_message_bytes(cfg.block_bytes),
            )
            self._last_bank_acc = [0] * cfg.num_banks
            self._sample(machine)  # t=0 baseline
        return self

    def events(self):
        """Retained events, oldest first ([] for sinks that keep nothing)."""
        sink = self.sink
        return sink.events() if isinstance(sink, EventTrace) else []

    # ------------------------------------------------------------------
    # task / phase boundary hooks (the executor and machine call these)
    # ------------------------------------------------------------------

    def task_executed(self, core: int, name: str, start: int, duration: int,
                      tid: int) -> None:
        """One task ran on ``core`` from ``start`` for ``duration`` cycles."""
        emit = self._emit
        emit(TraceEvent(EventKind.TASK_START, start, core, name, duration,
                        {"tid": tid}))
        emit(TraceEvent(EventKind.TASK_END, start + duration, core, name))

    def phase_begin(self, index: int, num_tasks: int, ts: int) -> None:
        self._emit(TraceEvent(EventKind.PHASE_BEGIN, ts, -1, f"phase {index}",
                              0, {"tasks": num_tasks}))

    def phase_end(self, index: int, ts: int) -> None:
        self._emit(TraceEvent(EventKind.PHASE_END, ts, -1, f"phase {index}"))

    def on_task_boundary(self, machine, core: int) -> None:
        """Machine hook after each task's trace: attribute the task's
        per-bank access deltas to ``core`` and sample every N tasks."""
        tl = self.timeline
        if tl is None:
            return
        last = self._last_bank_acc
        row = tl.core_bank_requests[core] if core >= 0 else None
        banks = machine.llc.banks
        for b in range(len(last)):
            st = banks[b].stats
            acc = st.hits + st.misses
            delta = acc - last[b]
            if delta:
                last[b] = acc
                if row is not None:
                    row[b] += delta
        if machine.tasks_completed % self.sample_every == 0:
            self._sample(machine)

    def on_stats_reset(self, machine) -> None:
        """The warmup window was discarded: restart the trace with it."""
        sink = self.sink
        if isinstance(sink, EventTrace):
            sink.clear()
        if self.timeline is not None:
            self.timeline.clear()
            self._last_bank_acc = [0] * len(self._last_bank_acc)
            self._sample(machine)  # fresh baseline (caches stay warm)

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Cursors, attribution baseline, retained events and samples.

        Only the default :class:`EventTrace` sink round-trips; custom
        sinks (streaming writers) are external and are not restored.
        """
        sink = self.sink
        return {
            "now": self.now,
            "last_bank_acc": list(self._last_bank_acc),
            "sink": sink.state_dict() if isinstance(sink, EventTrace) else None,
            "timeline": (
                self.timeline.state_dict() if self.timeline is not None else None
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        self.now = int(state["now"])
        self._last_bank_acc = [int(v) for v in state["last_bank_acc"]]
        if state["sink"] is not None and isinstance(self.sink, EventTrace):
            self.sink.load_state_dict(state["sink"])
        if state["timeline"] is not None:
            if self.timeline is None:
                raise ValueError(
                    "snapshot has timeline samples but this observer was "
                    "built with timeline=False"
                )
            self.timeline.load_state_dict(state["timeline"])

    # ------------------------------------------------------------------
    # component event hooks (machine / ISA / injector / DRAM call these)
    # ------------------------------------------------------------------

    def flush_begin(self, level: str, tiles, blocks: int) -> None:
        self._emit(TraceEvent(EventKind.FLUSH_BEGIN, self.now, -1,
                              f"flush {level}", 0,
                              {"tiles": list(tiles), "blocks": blocks}))

    def flush_end(self, level: str, flushed: int, dirty: int) -> None:
        self._emit(TraceEvent(EventKind.FLUSH_END, self.now, -1,
                              f"flush {level}", 0,
                              {"flushed": flushed, "dirty": dirty}))

    def rrt_install(self, core: int, start: int, end: int,
                    bank_mask: int) -> None:
        self._emit(TraceEvent(EventKind.RRT_INSTALL, self.now, core,
                              "rrt install", 0,
                              {"start": start, "end": end,
                               "bank_mask": bank_mask}))

    def rrt_drop(self, core: int, start: int, end: int,
                 bank_mask: int) -> None:
        """An RRT register was dropped because the table is full."""
        self._emit(TraceEvent(EventKind.RRT_DROP, self.now, core,
                              "rrt drop", 0,
                              {"start": start, "end": end,
                               "bank_mask": bank_mask}))

    def rrt_evict(self, core: int, removed: int) -> None:
        """``removed`` entries left ``core``'s RRT via tdnuca_invalidate."""
        self._emit(TraceEvent(EventKind.RRT_EVICT, self.now, core,
                              "rrt evict", 0, {"removed": removed}))

    def nuca_remap(self, bank: int, report: dict[str, Any]) -> None:
        """A bank death forced the policy to remap around it."""
        self._emit(TraceEvent(EventKind.NUCA_REMAP, self.now, -1,
                              f"remap bank {bank}", 0,
                              {"bank": bank, **report}))

    def fault_fired(self, kind: EventKind, name: str,
                    args: dict[str, Any]) -> None:
        self._emit(TraceEvent(kind, self.now, -1, name, 0, args))

    def dram_retry(self, attempts: int, penalty: int, exhausted: bool) -> None:
        self._emit(TraceEvent(EventKind.DRAM_RETRY, self.now, -1,
                              "dram retry", 0,
                              {"attempts": attempts, "penalty": penalty,
                               "exhausted": exhausted}))

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def _sample(self, machine) -> None:
        tl = self.timeline
        acc: list[int] = []
        hits: list[int] = []
        occ: list[int] = []
        for bank in machine.llc.banks:
            st = bank.stats
            acc.append(st.hits + st.misses)
            hits.append(st.hits)
            occ.append(bank.occupancy)
        traffic = machine.traffic
        rrt_occ = (
            [rrt.occupancy for rrt in machine.rrts]
            if machine.rrts is not None
            else None
        )
        tl.samples.append(
            IntervalSample(
                tasks_completed=machine.tasks_completed,
                cycles=self.now,
                bank_accesses=acc,
                bank_hits=hits,
                bank_occupancy=occ,
                router_bytes=traffic.router_bytes,
                flit_hops=traffic.flit_hops,
                messages=traffic.messages,
                rrt_occupancy=rrt_occ,
            )
        )
