"""Streaming sinks: forward observer events to a callback as they happen.

The service's NDJSON progress endpoint needs live events rather than a
post-run ring buffer, and it needs them *bounded*: a million-task run
must not push a million lines at every polling client.  A
:class:`CallbackSink` forwards every phase/flush/fault/RRT event verbatim
but samples the high-frequency task events — one ``task_end`` in every
``task_sample_every`` (carrying the cumulative count) — so the stream
stays a progress feed, not a firehose.

The callback runs on the simulation thread; callers that cross threads
(the service appends into a lock-guarded buffer) must make it
thread-safe themselves.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.events import EventKind, TraceEvent

__all__ = ["CallbackSink", "event_to_dict"]

#: default task-event sampling period for streamed progress.
DEFAULT_TASK_SAMPLE_EVERY = 64


def event_to_dict(event: TraceEvent, tasks_done: int | None = None) -> dict[str, Any]:
    """A JSON-safe dict for one event (the NDJSON line shape)."""
    out = event.to_dict()
    if tasks_done is not None:
        out["tasks_done"] = tasks_done
    return out


class CallbackSink:
    """A :class:`~repro.obs.events.TraceSink` that forwards dicts to a callable.

    ``task_sample_every=N`` keeps every Nth ``task_end`` (plus the running
    task total) and drops ``task_start`` entirely; every other event kind
    passes through unsampled.  ``task_sample_every=1`` forwards every task
    boundary; ``0`` silences task events altogether.
    """

    __slots__ = ("callback", "task_sample_every", "tasks_seen", "forwarded")

    def __init__(
        self,
        callback: Callable[[dict[str, Any]], None],
        *,
        task_sample_every: int = DEFAULT_TASK_SAMPLE_EVERY,
    ) -> None:
        if task_sample_every < 0:
            raise ValueError("task_sample_every must be >= 0")
        self.callback = callback
        self.task_sample_every = task_sample_every
        self.tasks_seen = 0
        self.forwarded = 0

    def emit(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind is EventKind.TASK_START:
            return
        if kind is EventKind.TASK_END:
            every = self.task_sample_every
            if not every:
                return
            self.tasks_seen += 1
            if self.tasks_seen % every:
                return
            payload = event_to_dict(event, tasks_done=self.tasks_seen)
        else:
            payload = event_to_dict(event)
        self.forwarded += 1
        self.callback(payload)
