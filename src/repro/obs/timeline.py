"""Interval metrics: periodic snapshots of where data sits on the chip.

End-of-run aggregates cannot show a placement decision going wrong
mid-run.  The timeline samples cheap cumulative counters every ``N``
completed tasks — per-bank accesses/hits/occupancy, aggregate NoC bytes,
per-core RRT occupancy — into :class:`IntervalSample` records.  Between
samples the observer also attributes each task's per-bank LLC access
deltas to the core that ran it (a task runs on exactly one core, so the
delta of the cumulative bank counters over the task *is* that core's
contribution), building the ``core -> bank`` request matrix that per-link
NoC load heatmaps are derived from at render time via XY routing.

Everything here is O(num_banks) per task and O(num_banks + num_cores) per
sample; nothing touches the per-reference hot loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["IntervalSample", "IntervalTimeline"]


@dataclass(slots=True)
class IntervalSample:
    """One snapshot of cumulative machine counters.

    Bank series are cumulative since the start of the measured window
    (post-warmup); consumers diff consecutive samples for interval rates.
    ``bank_occupancy`` is instantaneous (valid blocks resident).
    """

    tasks_completed: int
    cycles: int
    bank_accesses: list[int]
    bank_hits: list[int]
    bank_occupancy: list[int]
    router_bytes: int
    flit_hops: int
    messages: int
    rrt_occupancy: list[int] | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "tasks": self.tasks_completed,
            "cycles": self.cycles,
            "bank_accesses": list(self.bank_accesses),
            "bank_hits": list(self.bank_hits),
            "bank_occupancy": list(self.bank_occupancy),
            "router_bytes": self.router_bytes,
            "flit_hops": self.flit_hops,
            "messages": self.messages,
        }
        if self.rrt_occupancy is not None:
            out["rrt_occupancy"] = list(self.rrt_occupancy)
        return out


@dataclass
class IntervalTimeline:
    """The sampled timeline plus the core->bank request attribution matrix."""

    num_cores: int
    num_banks: int
    sample_every: int
    #: blocks one LLC bank can hold (occupancy normalisation).
    bank_capacity: int = 0
    #: wire bytes one core->bank request/response pair contributes
    #: (request control message + block data message), used to turn the
    #: request matrix into per-link byte loads.
    bytes_per_request: int = 0
    samples: list[IntervalSample] = field(default_factory=list)
    #: ``core_bank_requests[core][bank]``: LLC accesses ``core`` made to
    #: ``bank`` over the measured window (task-boundary attribution).
    core_bank_requests: list[list[int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.sample_every <= 0:
            raise ValueError("sample_every must be positive")
        if not self.core_bank_requests:
            self.core_bank_requests = [
                [0] * self.num_banks for _ in range(self.num_cores)
            ]

    @property
    def num_samples(self) -> int:
        return len(self.samples)

    def clear(self) -> None:
        """Drop all samples and attribution (warmup-window reset)."""
        self.samples.clear()
        for row in self.core_bank_requests:
            for b in range(self.num_banks):
                row[b] = 0

    # --- checkpoint/restore --------------------------------------------

    def state_dict(self) -> dict:
        return {
            "samples": [
                (
                    s.tasks_completed,
                    s.cycles,
                    list(s.bank_accesses),
                    list(s.bank_hits),
                    list(s.bank_occupancy),
                    s.router_bytes,
                    s.flit_hops,
                    s.messages,
                    None if s.rrt_occupancy is None else list(s.rrt_occupancy),
                )
                for s in self.samples
            ],
            "core_bank_requests": [list(row) for row in self.core_bank_requests],
        }

    def load_state_dict(self, state: dict) -> None:
        self.samples = [
            IntervalSample(
                tasks_completed=int(tasks),
                cycles=int(cycles),
                bank_accesses=[int(v) for v in acc],
                bank_hits=[int(v) for v in hits],
                bank_occupancy=[int(v) for v in occ],
                router_bytes=int(rb),
                flit_hops=int(fh),
                messages=int(msgs),
                rrt_occupancy=None if rrt is None else [int(v) for v in rrt],
            )
            for tasks, cycles, acc, hits, occ, rb, fh, msgs, rrt in state["samples"]
        ]
        rows = state["core_bank_requests"]
        if len(rows) != self.num_cores or any(len(r) != self.num_banks for r in rows):
            raise ValueError("core_bank_requests shape mismatch in snapshot")
        self.core_bank_requests = [[int(v) for v in row] for row in rows]

    # --- derived views -------------------------------------------------

    def bank_access_deltas(self) -> list[list[int]]:
        """Per-interval per-bank access counts (one row per interval)."""
        out: list[list[int]] = []
        for prev, cur in zip(self.samples, self.samples[1:]):
            out.append(
                [c - p for p, c in zip(prev.bank_accesses, cur.bank_accesses)]
            )
        return out

    def interval_hit_rates(self) -> list[float]:
        """Aggregate LLC hit rate of each interval (0.0 when idle)."""
        rates: list[float] = []
        for prev, cur in zip(self.samples, self.samples[1:]):
            acc = sum(cur.bank_accesses) - sum(prev.bank_accesses)
            hits = sum(cur.bank_hits) - sum(prev.bank_hits)
            rates.append(hits / acc if acc else 0.0)
        return rates

    def link_loads(self, mesh) -> dict[tuple[int, int], int]:
        """Bytes crossing each mesh link, keyed by the (lo, hi) tile pair.

        Derived from the core->bank request matrix by XY-routing every
        (core, bank) flow — the same routing the simulator charges — and
        spreading that flow's bytes over the links of its route.
        """
        from repro.noc.routing import xy_route

        loads: dict[tuple[int, int], int] = {}
        per_request = self.bytes_per_request
        for core, row in enumerate(self.core_bank_requests):
            for bank, count in enumerate(row):
                if not count or core == bank:
                    continue
                route = xy_route(mesh, core, bank)
                nbytes = count * per_request
                for a, b in zip(route, route[1:]):
                    key = (a, b) if a < b else (b, a)
                    loads[key] = loads.get(key, 0) + nbytes
        return loads

    def to_dict(self) -> dict[str, Any]:
        return {
            "sample_every": self.sample_every,
            "bank_capacity_blocks": self.bank_capacity,
            "bytes_per_request": self.bytes_per_request,
            "samples": [s.to_dict() for s in self.samples],
            "core_bank_requests": [list(row) for row in self.core_bank_requests],
        }
