"""Task dataflow runtime — the Nanos++/OpenMP-4.0 stand-in.

Programs are sequences of *phases* separated by ``taskwait`` barriers (the
structure of the paper's OmpSs benchmarks).  Within a phase, tasks declare
``in``/``out``/``inout`` dependencies over memory regions; the TDG builder
derives RAW/WAR/WAW edges, the scheduler dispatches ready tasks to cores,
and the discrete-event executor advances simulated time, invoking the
TD-NUCA runtime extension hooks at task creation, start and end.
"""

from repro.deps import DepMode
from repro.runtime.executor import ExecutionStats, Executor
from repro.runtime.extensions import RuntimeExtension, TdNucaRuntime
from repro.runtime.scheduler import (
    FifoScheduler,
    LocalityScheduler,
    OrderedScheduler,
    RandomScheduler,
)
from repro.runtime.task import AccessChunk, Dependency, Program, Task, TaskState
from repro.runtime.tdg import TaskGraph
from repro.runtime.trace import build_trace

__all__ = [
    "DepMode",
    "Dependency",
    "AccessChunk",
    "Task",
    "TaskState",
    "Program",
    "TaskGraph",
    "FifoScheduler",
    "OrderedScheduler",
    "LocalityScheduler",
    "RandomScheduler",
    "Executor",
    "ExecutionStats",
    "RuntimeExtension",
    "TdNucaRuntime",
    "build_trace",
]
