"""Discrete-event execution of task programs on the simulated machine.

The executor models the OmpSs execution pattern the paper describes: the
creator thread (core 0) runs the (sequential) program, creating the tasks
of a phase one by one; worker cores pick ready tasks from the scheduler as
they become available; a ``taskwait`` barrier ends each phase.  Task
creation overlaps execution — a task only becomes dispatchable once the
creator has reached it *and* its dependencies are satisfied.

Each task's memory trace is applied to the shared cache hierarchy at its
dispatch time (task-atomic interleaving, see DESIGN.md); its duration is
the runtime-extension hook cycles plus the cycles the machine charges for
the trace.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.runtime.extensions import RuntimeExtension
from repro.runtime.scheduler import OrderedScheduler, Scheduler
from repro.runtime.task import Program, Task, TaskState
from repro.runtime.tdg import TaskGraph

__all__ = ["Executor", "ExecutionStats", "TraceMachine"]


class TraceMachine(Protocol):
    """What the executor needs from the machine model."""

    def run_task_trace(self, core: int, task: Task) -> int:
        """Apply ``task``'s memory trace for ``core``; returns cycles."""

    @property
    def num_cores(self) -> int: ...


@dataclass
class ExecutionStats:
    makespan_cycles: int = 0
    tasks_executed: int = 0
    phases: int = 0
    busy_cycles: list[int] = field(default_factory=list)
    #: cycles spent in runtime-extension hooks (software + ISA), total.
    extension_cycles: int = 0
    #: cycles core 0 spent creating tasks.
    creation_cycles: int = 0
    tdg_edges: int = 0

    @property
    def avg_utilization(self) -> float:
        if not self.makespan_cycles or not self.busy_cycles:
            return 0.0
        return sum(self.busy_cycles) / (len(self.busy_cycles) * self.makespan_cycles)


_AVAIL = 0
_FINISH = 1


class Executor:
    """List-scheduling DES over phases of a program."""

    #: creator-thread cycles to instantiate one task (allocation + TDG
    #: insertion), before extension hooks.
    CREATE_CYCLES_PER_TASK = 60

    def __init__(
        self,
        machine: TraceMachine,
        scheduler: Scheduler | None = None,
        extension: RuntimeExtension | None = None,
        overlap_mode: str = "exact",
        jitter: float = 0.08,
        jitter_seed: int = 0,
        observer=None,
    ) -> None:
        self.machine = machine
        self.scheduler = scheduler if scheduler is not None else OrderedScheduler()
        self.extension = extension if extension is not None else RuntimeExtension()
        self.overlap_mode = overlap_mode
        #: optional :class:`repro.obs.observer.Observer`: the executor
        #: stamps it with simulated dispatch times and emits task/phase
        #: events; None costs one attribute test per task.
        self.observer = observer
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        # Real runtimes are not cycle-deterministic: OS noise and contention
        # jitter task durations, which is what makes dynamic schedulers
        # migrate repeated computations across cores (the effect that
        # defeats OS page classification — Section II-C).  The jitter for a
        # given task depends only on its (stable) name, so every policy —
        # and every rebuild of the same program — sees the same
        # perturbation and comparisons stay fair.
        self.jitter = jitter
        self._jitter_seed = jitter_seed
        #: optional :class:`repro.snapshot.Checkpointer`: journals every
        #: dispatch and writes snapshots at task boundaries.  None costs
        #: one attribute test per dispatch, so the untraced hot path and
        #: ``scripts/perf_smoke.py``'s call ceiling are unaffected.
        self.checkpointer = None
        # Stats of the run in progress (the checkpointer serializes them).
        self._stats: ExecutionStats | None = None

    def _jitter_factor(self, name: str) -> float:
        if not self.jitter:
            return 1.0
        key = zlib.crc32(name.encode()) ^ (self._jitter_seed << 32)
        rng = np.random.default_rng(key)
        return 1.0 + self.jitter * (2.0 * rng.random() - 1.0)

    def run(self, program: Program, *, resume: dict | None = None) -> ExecutionStats:
        """Run ``program``; with ``resume``, continue a snapshotted run.

        ``resume`` is the ``{"execution", "progress"}`` slice of a snapshot
        payload whose machine/extension state has already been restored
        (see :meth:`resume` for the one-call form).  Phases the snapshot
        completed are skipped outright; the in-progress phase replays its
        journal (no machine work) up to the snapshotted dispatch and then
        continues live, which reproduces the event heap, scheduler queue
        and simulated clock exactly.
        """
        ncores = self.machine.num_cores
        obs = self.observer
        if resume is not None:
            stats = ExecutionStats(**resume["execution"])
            if len(stats.busy_cycles) != ncores:
                raise ValueError("snapshot core count does not match this machine")
            progress = resume["progress"]
            if stats.phases != progress["phase_index"]:
                raise ValueError("inconsistent snapshot: stats/progress disagree")
            now = progress["phase_start_now"]
        else:
            stats = ExecutionStats(busy_cycles=[0] * ncores)
            progress = None
            now = 0
        self._stats = stats
        nonempty = 0
        for phase in program.phases:
            if not phase:
                continue
            replay = None
            if progress is not None:
                if nonempty < progress["phase_index"]:
                    nonempty += 1
                    continue  # completed before the snapshot
                if nonempty == progress["phase_index"]:
                    replay = progress
            if obs is not None and replay is None:
                obs.phase_begin(stats.phases, len(phase), now)
            now = self._run_phase(phase, now, stats, replay=replay)
            if obs is not None:
                obs.phase_end(stats.phases, now)
            stats.phases += 1
            nonempty += 1
        stats.makespan_cycles = now
        return stats

    # --- snapshot API ---

    def save_snapshot(self, path=None):
        """Write a snapshot at the current task boundary; returns the path.

        Requires an attached checkpointer (which holds the run's identity
        metadata); only valid while a phase is in progress, i.e. from
        checkpointer triggers or extension hooks.
        """
        if self.checkpointer is None:
            raise RuntimeError("no checkpointer attached to this executor")
        return self.checkpointer.save(self, path)

    def resume(self, program: Program, payload: dict) -> ExecutionStats:
        """Restore a snapshot payload into this executor's machine and
        continue the interrupted ``program`` segment to completion.

        The caller is responsible for segment handling (warmup vs main)
        and for validating the payload's meta against this run — see
        ``repro.api._run_one``.
        """
        self.machine.load_state_dict(payload["machine"])
        self.extension.load_state_dict(payload["extension"])
        return self.run(
            program,
            resume={
                "execution": payload["execution"],
                "progress": payload["progress"],
            },
        )

    # --- one phase between taskwait barriers ---

    def _run_phase(
        self,
        phase: list[Task],
        start_time: int,
        stats: ExecutionStats,
        replay: dict | None = None,
    ) -> int:
        ncores = self.machine.num_cores
        graph = TaskGraph(self.overlap_mode)
        ext = self.extension
        ck = self.checkpointer

        # Replay mode: the first ``replay_n`` dispatches of this phase
        # happened before the snapshot.  Their machine effects and stats
        # are already in the restored state, so they are re-enacted from
        # the journal (recorded costs/durations, no _execute) purely to
        # rebuild the event heap, scheduler queue and task graph.
        if replay is not None:
            if len(replay["create_costs"]) != len(phase):
                raise ValueError(
                    "snapshot journal does not match this program phase "
                    f"({len(replay['create_costs'])} recorded creations, "
                    f"{len(phase)} tasks)"
                )
            rng_state = replay["scheduler_rng"]
            if rng_state is not None:
                rng = getattr(self.scheduler, "_rng", None)
                if rng is None:
                    raise ValueError(
                        "snapshot recorded scheduler RNG state but this "
                        "scheduler has none"
                    )
                rng.bit_generator.state = rng_state
            replay_durations = replay["durations"]
            replay_names = replay["task_names"]
            replay_n = replay["dispatch_count"]
            if ck is not None:
                ck.seed_phase(replay)
        else:
            replay_n = 0
            if ck is not None:
                ck.phase_begin(self, stats.phases, start_time)

        # Creator timeline: core 0 creates tasks sequentially from
        # ``start_time``; each task records its creation completion time.
        created_at: dict[int, int] = {}
        t_create = start_time
        if replay is not None:
            # Creation (and its stats) completed before the snapshot:
            # rebuild the graph with the recorded per-task costs.
            for task, create_cost in zip(phase, replay["create_costs"]):
                t_create += create_cost
                created_at[task.tid] = t_create
                graph.add_task(task)
            creation_end = t_create
        else:
            for task in phase:
                create_cost = self.CREATE_CYCLES_PER_TASK + ext.on_task_created(task)
                if ck is not None:
                    ck.note_create(create_cost)
                t_create += create_cost
                created_at[task.tid] = t_create
                graph.add_task(task)
            creation_end = t_create
            stats.creation_cycles += creation_end - start_time
            stats.busy_cycles[0] += creation_end - start_time
            stats.tdg_edges += graph.edges

        # Event heap: (time, seq, kind, payload).
        events: list[tuple[int, int, int, object]] = []
        seq = 0
        for task in graph.initial_ready():
            heapq.heappush(events, (created_at[task.tid], seq, _AVAIL, task))
            seq += 1

        idle: set[int] = set(range(1, ncores))
        idle_since = {c: start_time for c in range(1, ncores)}
        # Core 0 joins the workers once creation is done.
        heapq.heappush(events, (creation_end, seq, _AVAIL, None))
        seq += 1
        core0_joined = False

        finished = 0
        dispatched = 0
        now = start_time
        while events:
            now, _, kind, payload = heapq.heappop(events)
            if kind == _AVAIL:
                if payload is None:
                    idle.add(0)
                    idle_since[0] = now
                    core0_joined = True
                else:
                    self.scheduler.add_ready(payload)
            else:  # _FINISH
                core, task = payload
                idle.add(core)
                idle_since[core] = now
                finished += 1
                for succ in graph.mark_finished(task):
                    avail = max(now, created_at[succ.tid])
                    heapq.heappush(events, (avail, seq, _AVAIL, succ))
                    seq += 1
            # Dispatch ready tasks onto idle cores.
            while idle and self.scheduler.has_work():
                core = min(idle)
                task = self.scheduler.next_task(core)
                if task is None:
                    break
                idle.discard(core)
                if dispatched < replay_n:
                    # Pre-snapshot dispatch: consume the journaled duration.
                    if replay_names[dispatched] != task.name:
                        raise ValueError(
                            "snapshot journal diverged from this program at "
                            f"dispatch {dispatched}: recorded "
                            f"{replay_names[dispatched]!r}, got {task.name!r}"
                        )
                    duration = replay_durations[dispatched]
                    if ck is not None:
                        ck.record_dispatch(task.name, duration)
                else:
                    duration = self._execute(task, core, stats, now)
                dispatched += 1
                task.state = TaskState.RUNNING
                heapq.heappush(events, (now + duration, seq, _FINISH, (core, task)))
                seq += 1
                # The machine is quiescent here (trace applied, traffic
                # flushed): the one safe point to snapshot.  Replayed
                # dispatches never trigger — their journal entries were
                # recorded above.
                if ck is not None and dispatched > replay_n:
                    ck.after_dispatch(self, task.name, duration)
        if finished != len(phase):
            raise RuntimeError(
                f"phase deadlock: {finished}/{len(phase)} tasks finished"
            )
        del core0_joined
        return now

    def _execute(
        self, task: Task, core: int, stats: ExecutionStats, now: int = 0
    ) -> int:
        obs = self.observer
        if obs is not None:
            # Stamp the dispatch time first: every event emitted from
            # inside the machine/ISA during this task reads it.
            obs.now = now
        ext_cycles = self.extension.on_task_start(task, core)
        trace_cycles = self.machine.run_task_trace(core, task)
        ext_cycles += self.extension.on_task_end(task, core)
        duration = ext_cycles + trace_cycles + task.extra_compute_cycles
        duration = int(duration * self._jitter_factor(task.name))
        if duration <= 0:
            duration = 1  # a task always takes at least one cycle
        stats.tasks_executed += 1
        stats.extension_cycles += ext_cycles
        stats.busy_cycles[core] += duration
        if obs is not None:
            obs.task_executed(core, task.name, now, duration, task.tid)
        return duration
