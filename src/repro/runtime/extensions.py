"""Runtime-system extensions (Section III-C2 operational model).

:class:`TdNucaRuntime` is the paper's runtime extension: it maintains the
RTCacheDirectory across task creation/start/end, runs the Fig.-7 placement
decision for every dependency of every starting task, and drives the
hardware through the three ``tdnuca_*`` instructions:

* **task created**  — ``UseDesc += 1`` per dependency;
* **task starts**   — ``UseDesc -= 1``; lazily invalidate replicas when a
  replicated dependency is about to be written; decide placement; issue
  ``tdnuca_register`` with the BankMask; update ``MapMask``;
* **task ends**     — bypassed deps: flush L1 + de-register; local-bank
  deps: flush that LLC bank and the core's private cache + de-register;
  replicated deps: left in place for future tasks.

The ``execute_isa=False`` mode reproduces the Section V-E "runtime
extensions overhead" experiment: all software bookkeeping runs (and is
charged cycles), but no instruction reaches the hardware, so the cache
hierarchy behaves exactly as S-NUCA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.isa import TdNucaISA
from repro.core.policy import Placement, PlacementKind, decide_placement
from repro.core.rtdirectory import RTCacheDirectory
from repro.mem.region import Region
from repro.noc.topology import Mesh
from repro.runtime.task import Task

__all__ = ["RuntimeExtension", "TdNucaRuntime", "DependencyUsage"]


class RuntimeExtension:
    """No-op extension; the baseline runtimes (S-NUCA, R-NUCA) use this."""

    def on_task_created(self, task: Task) -> int:
        """Hook at task creation; returns creator-thread cycles."""
        return 0

    def on_task_start(self, task: Task, core: int) -> int:
        """Hook after scheduling, before execution; returns core cycles."""
        return 0

    def on_task_end(self, task: Task, core: int) -> int:
        """Hook at task completion; returns core cycles."""
        return 0

    def state_dict(self) -> dict:
        """Checkpoint payload; the no-op extension has no state."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        if state:
            raise ValueError("no-op runtime extension cannot load state")


@dataclass
class DependencyUsage:
    """Whole-run census of one dependency (feeds Fig. 3's right bars)."""

    region: Region
    uses: int = 0
    bypassed_uses: int = 0
    read_uses: int = 0
    write_uses: int = 0

    @property
    def always_bypassed(self) -> bool:
        return self.uses > 0 and self.bypassed_uses == self.uses

    def category(self) -> str:
        """``not_reused`` / ``in`` / ``out`` / ``both`` (paper Fig. 3)."""
        if self.always_bypassed:
            return "not_reused"
        if self.read_uses and self.write_uses:
            return "both"
        return "in" if self.read_uses else "out"


@dataclass
class TdNucaRuntimeStats:
    decisions: int = 0
    bypass_decisions: int = 0
    local_decisions: int = 0
    replicate_decisions: int = 0
    untracked_decisions: int = 0
    lazy_invalidations: int = 0
    #: software-side cycles (directory ops + decisions), excluding ISA.
    software_cycles: int = 0
    # RRT occupancy sampling (one sample per task start, all cores) for the
    # Section V-E occupancy study.
    occupancy_sample_sum: int = 0
    occupancy_samples: int = 0
    occupancy_max: int = 0

    @property
    def mean_rrt_occupancy(self) -> float:
        if not self.occupancy_samples:
            return 0.0
        return self.occupancy_sample_sum / self.occupancy_samples


class TdNucaRuntime(RuntimeExtension):
    """The TD-NUCA software layer."""

    #: cycles per RTCacheDirectory update (inc/dec/lookup).
    DIRECTORY_OP_CYCLES = 8
    #: cycles per placement decision (the Fig.-7 walk + mask build).
    DECISION_CYCLES = 20

    def __init__(
        self,
        mesh: Mesh,
        isa: TdNucaISA,
        bypass_only: bool = False,
        execute_isa: bool = True,
    ) -> None:
        self.mesh = mesh
        self.isa = isa
        self.bypass_only = bypass_only
        self.execute_isa = execute_isa
        self.directory = RTCacheDirectory()
        self.stats = TdNucaRuntimeStats()
        self.usage: dict[tuple[int, int], DependencyUsage] = {}
        self._active: dict[int, list[tuple[Region, Placement]]] = {}
        self._all_cores_mask = (1 << mesh.num_tiles) - 1

    # --- census helper ---

    def _usage(self, region: Region) -> DependencyUsage:
        key = (region.start, region.size)
        u = self.usage.get(key)
        if u is None:
            u = DependencyUsage(region)
            self.usage[key] = u
        return u

    # --- lifecycle hooks ---

    def on_task_created(self, task: Task) -> int:
        cycles = 0
        for dep in task.deps:
            self.directory.inc_use(dep.region)
            cycles += self.DIRECTORY_OP_CYCLES
        self.stats.software_cycles += cycles
        return cycles

    def on_task_start(self, task: Task, core: int) -> int:
        cycles = 0
        records: list[tuple[Region, Placement]] = []
        for dep in task.deps:
            entry = self.directory.dec_use(dep.region)
            cycles += self.DIRECTORY_OP_CYCLES

            # Lazy invalidation: a replicated (read-only) dependency is
            # about to be written -> drop every replica and RRT entry.
            if entry.replicated and dep.mode.writes:
                self.stats.lazy_invalidations += 1
                if self.execute_isa:
                    cycles += self.isa.tdnuca_invalidate(
                        core, dep.region, self._all_cores_mask
                    )
                    cycles += self.isa.tdnuca_flush(
                        core, dep.region, "l1", self._all_cores_mask
                    ).cycles
                    cycles += self.isa.tdnuca_flush(
                        core, dep.region, "llc", self._all_cores_mask
                    ).cycles
                entry.map_mask = 0
                entry.replicated = False

            placement = decide_placement(
                entry, dep.mode, core, self.mesh, self.bypass_only
            )
            cycles += self.DECISION_CYCLES
            self._count_decision(placement)

            usage = self._usage(dep.region)
            usage.uses += 1
            if placement.kind is PlacementKind.BYPASS:
                usage.bypassed_uses += 1
            if dep.mode.reads:
                usage.read_uses += 1
            if dep.mode.writes:
                usage.write_uses += 1

            if placement.kind is not PlacementKind.UNTRACKED:
                if placement.kind is PlacementKind.BYPASS and entry.map_mask:
                    # Last predicted use of a dependency that still has
                    # replicas (or a stale mapping) from earlier tasks:
                    # retire them everywhere before bypassing.  This is
                    # what bounds RRT occupancy in replication-heavy
                    # programs (the paper's LU peaks at 37 of 64 entries).
                    if self.execute_isa:
                        cycles += self.isa.tdnuca_invalidate(
                            core, dep.region, self._all_cores_mask
                        )
                        cycles += self.isa.tdnuca_flush(
                            core, dep.region, "llc", entry.map_mask
                        ).cycles
                if self.execute_isa:
                    cycles += self.isa.tdnuca_register(
                        core, dep.region, placement.bank_mask
                    )
                if placement.kind is PlacementKind.CLUSTER_REPLICATE:
                    entry.map_mask |= placement.bank_mask
                    entry.replicated = True
                else:
                    entry.map_mask = placement.bank_mask
                    entry.replicated = False
            entry.ever_written = entry.ever_written or dep.mode.writes
            records.append((dep.region, placement))
        self._active[task.tid] = records
        self.stats.software_cycles += cycles
        self._sample_occupancy()
        return cycles

    def _sample_occupancy(self) -> None:
        s = self.stats
        for rrt in self.isa.rrts:
            occ = rrt.occupancy
            s.occupancy_sample_sum += occ
            s.occupancy_samples += 1
            if occ > s.occupancy_max:
                s.occupancy_max = occ

    def on_task_end(self, task: Task, core: int) -> int:
        cycles = 0
        for region, placement in self._active.pop(task.tid, []):
            if placement.kind is PlacementKind.BYPASS:
                if self.execute_isa:
                    cycles += self.isa.tdnuca_flush(
                        core, region, "l1", 1 << core
                    ).cycles
                    cycles += self.isa.tdnuca_invalidate(core, region, 1 << core)
            elif placement.kind is PlacementKind.LOCAL_BANK:
                entry = self.directory.entry(region)
                bank_mask = placement.bank_mask
                if self.execute_isa:
                    cycles += self.isa.tdnuca_flush(
                        core, region, "llc", bank_mask
                    ).cycles
                    cycles += self.isa.tdnuca_flush(core, region, "l1", 1 << core).cycles
                    cycles += self.isa.tdnuca_invalidate(core, region, 1 << core)
                entry.map_mask = 0
            # CLUSTER_REPLICATE / UNTRACKED: mapping (if any) remains.
        self.stats.software_cycles += cycles
        return cycles

    def _count_decision(self, placement: Placement) -> None:
        s = self.stats
        s.decisions += 1
        if placement.kind is PlacementKind.BYPASS:
            s.bypass_decisions += 1
        elif placement.kind is PlacementKind.LOCAL_BANK:
            s.local_decisions += 1
        elif placement.kind is PlacementKind.CLUSTER_REPLICATE:
            s.replicate_decisions += 1
        else:
            s.untracked_decisions += 1

    def reset_stats(self) -> None:
        """Zero counters and the usage census (post-warmup measurement);
        the RTCacheDirectory itself persists."""
        self.stats = TdNucaRuntimeStats()
        self.usage.clear()

    # --- checkpoint/restore ---

    def state_dict(self) -> dict:
        """Directory, counters and usage census.  Snapshots happen only at
        task boundaries, where no task is in flight — ``_active`` must be
        empty (it is rebuilt per task, not restored)."""
        from dataclasses import asdict

        if self._active:
            raise RuntimeError(
                "cannot snapshot runtime state with tasks in flight"
            )
        return {
            "directory": self.directory.state_dict(),
            "stats": asdict(self.stats),
            "usage": [
                (u.region.start, u.region.size, u.uses, u.bypassed_uses,
                 u.read_uses, u.write_uses)
                for u in self.usage.values()
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        self.directory.load_state_dict(state["directory"])
        self.stats = TdNucaRuntimeStats(**state["stats"])
        self.usage = {
            (int(start), int(size)): DependencyUsage(
                Region(int(start), int(size)),
                int(uses), int(bypassed), int(reads), int(writes),
            )
            for start, size, uses, bypassed, reads, writes in state["usage"]
        }
        self._active = {}

    # --- OS thread migration (paper Section III-D) ---

    def on_thread_migration(self, src_core: int, dst_core: int) -> int:
        """The OS moved a thread: migrate its RRT entries to the new core
        and invalidate the old core's private cache for the regions it was
        tracking (the paper's prescription).  Returns cycles charged."""
        if src_core == dst_core:
            return 0
        cycles = 0
        entries = self.isa.rrts[src_core].entries()
        if self.execute_isa and self.isa.flush_executor is not None and entries:
            # Flush the tracked regions out of the source L1 first.  RRT
            # entries hold *physical* ranges, so the flush goes straight to
            # the executor rather than through the translating instruction.
            amap = self.isa.amap
            blocks: list[int] = []
            for e in entries:
                blocks.extend(
                    range(e.start >> amap.block_shift, ((e.end - 1) >> amap.block_shift) + 1)
                )
            flushed, _ = self.isa.flush_executor(blocks, "l1", (src_core,))
            cycles += flushed
        moved = self.isa.rrts[src_core].migrate_to(self.isa.rrts[dst_core])
        cycles += moved  # one cycle per migrated entry
        return cycles

    # --- Fig.-3 census output ---

    def dependency_categories(self) -> dict[str, list[Region]]:
        """Regions grouped by Fig.-3 category over the whole run."""
        out: dict[str, list[Region]] = {
            "not_reused": [],
            "in": [],
            "out": [],
            "both": [],
        }
        for usage in self.usage.values():
            out[usage.category()].append(usage.region)
        return out
