"""Multiprogramming support (paper Section III-D).

The paper's hardware extension tags RRT entries with the OS process ID so
several processes can use the RRTs concurrently without save/restore at
context switches.  :class:`MultiProcessRuntime` drives that: it keeps one
TD-NUCA runtime (RTCacheDirectory + decision logic) per process, and
before servicing any task it switches every core's RRT to the task's PID
— exactly the state a PID-tagged lookup implements in hardware.

:func:`merge_programs` co-schedules several programs into one: phase *i*
of the merged program is the union of each program's phase *i* (their
taskwait barriers are aligned), with every task tagged by its process.
The programs' address spaces must be disjoint, as separate OS processes'
physical footprints are.
"""

from __future__ import annotations

from repro.core.isa import TdNucaISA
from repro.noc.topology import Mesh
from repro.runtime.extensions import RuntimeExtension, TdNucaRuntime
from repro.runtime.task import Program, Task

__all__ = ["MultiProcessRuntime", "merge_programs"]


def merge_programs(programs: dict[int, Program], name: str = "merged") -> Program:
    """Co-schedule ``programs`` (keyed by PID) into one program.

    Raises ``ValueError`` if any two processes' dependency regions overlap
    (processes do not share physical memory).
    """
    if not programs:
        raise ValueError("no programs to merge")
    _check_disjoint(programs)
    merged = Program(name)
    depth = max(len(p.phases) for p in programs.values())
    for i in range(depth):
        phase = merged.new_phase()
        # Round-robin across processes, as concurrently created work
        # interleaves on a real machine.
        iters = {
            pid: iter(prog.phases[i])
            for pid, prog in programs.items()
            if i < len(prog.phases)
        }
        while iters:
            for pid in list(iters):
                task = next(iters[pid], None)
                if task is None:
                    del iters[pid]
                    continue
                task.pid = pid
                phase.append(task)
    # Warmup alignment: measured execution starts once every process has
    # finished initializing.
    merged.warmup_phases = max(p.warmup_phases for p in programs.values())
    return merged


def _check_disjoint(programs: dict[int, Program]) -> None:
    spans: list[tuple[int, int, int]] = []
    for pid, prog in programs.items():
        starts = [d.region.start for t in prog.tasks for d in t.deps]
        ends = [d.region.end for t in prog.tasks for d in t.deps]
        if starts:
            spans.append((min(starts), max(ends), pid))
    spans.sort()
    for (s1, e1, p1), (s2, e2, p2) in zip(spans, spans[1:]):
        if s2 < e1:
            raise ValueError(
                f"process {p1} and {p2} address spaces overlap "
                f"([{s1:#x},{e1:#x}) vs [{s2:#x},{e2:#x}))"
            )


class MultiProcessRuntime(RuntimeExtension):
    """Per-process TD-NUCA runtimes over shared, PID-tagged RRT hardware."""

    def __init__(
        self,
        mesh: Mesh,
        isa: TdNucaISA,
        pids: list[int],
        bypass_only: bool = False,
    ) -> None:
        if not pids:
            raise ValueError("need at least one process")
        self.isa = isa
        self.runtimes: dict[int, TdNucaRuntime] = {
            pid: TdNucaRuntime(mesh, isa, bypass_only=bypass_only) for pid in pids
        }
        self.context_switches = 0
        self._active_pid: int | None = None

    def _activate(self, pid: int) -> None:
        """Switch every core's RRT view to ``pid`` (no save/restore — the
        entries are tagged, which is the whole point of the extension)."""
        if pid == self._active_pid:
            return
        for rrt in self.isa.rrts:
            rrt.set_active_pid(pid)
        if self._active_pid is not None:
            self.context_switches += 1
        self._active_pid = pid

    def _runtime_of(self, task: Task) -> TdNucaRuntime:
        try:
            return self.runtimes[task.pid]
        except KeyError:
            raise KeyError(f"task {task.name!r} has unknown pid {task.pid}") from None

    # --- RuntimeExtension interface ---

    def on_task_created(self, task: Task) -> int:
        return self._runtime_of(task).on_task_created(task)

    def on_task_start(self, task: Task, core: int) -> int:
        self._activate(task.pid)
        return self._runtime_of(task).on_task_start(task, core)

    def on_task_end(self, task: Task, core: int) -> int:
        self._activate(task.pid)
        return self._runtime_of(task).on_task_end(task, core)

    # --- process lifecycle ---

    def terminate(self, pid: int) -> int:
        """Process exit: drop its RRT entries on every core; returns the
        number of entries freed."""
        self.runtimes.pop(pid, None)
        return sum(rrt.drop_pid(pid) for rrt in self.isa.rrts)

    def reset_stats(self) -> None:
        for rt in self.runtimes.values():
            rt.reset_stats()
