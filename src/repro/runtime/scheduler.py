"""Dynamic task schedulers.

The paper's point about dynamic schedulers is that they *move computation
(and therefore data) across cores*, which is precisely what defeats OS
first-touch page classification.  The default :class:`OrderedScheduler`
(breadth-first in program order) has exactly this property.  FIFO,
locality-aware and seeded-random schedulers are provided for ablations.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import deque

import numpy as np

from repro.runtime.task import Task

__all__ = [
    "Scheduler",
    "FifoScheduler",
    "OrderedScheduler",
    "LocalityScheduler",
    "RandomScheduler",
]


class Scheduler(ABC):
    """Ready-queue policy: tasks in, per-core dispatch out."""

    @abstractmethod
    def add_ready(self, task: Task) -> None:
        """Enqueue a task whose dependencies are satisfied."""

    @abstractmethod
    def next_task(self, core: int) -> Task | None:
        """Dequeue a task for ``core`` (None if nothing runnable)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of queued ready tasks."""

    def has_work(self) -> bool:
        return len(self) > 0


class FifoScheduler(Scheduler):
    """Single global FIFO ready queue (readiness order)."""

    def __init__(self) -> None:
        self._queue: deque[Task] = deque()

    def add_ready(self, task: Task) -> None:
        self._queue.append(task)

    def next_task(self, core: int) -> Task | None:
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


class OrderedScheduler(Scheduler):
    """Program-order dispatch: the ready task created earliest runs first.

    This is the behaviour of a breadth-first task runtime whose queue is
    ordered by task instantiation: a consumer that becomes ready runs ahead
    of producers created after it, keeping producer/consumer pairs close in
    time (which is also what bounds TD-NUCA's replica lifetimes).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, Task]] = []

    def add_ready(self, task: Task) -> None:
        heapq.heappush(self._heap, (task.tid, task))

    def next_task(self, core: int) -> Task | None:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[1]

    def __len__(self) -> int:
        return len(self._heap)


class LocalityScheduler(Scheduler):
    """Affinity queues per core with FIFO stealing.

    Tasks carrying an ``affinity`` hint go to that core's queue; a core
    drains its own queue first, then the global queue, then steals from the
    longest peer queue.
    """

    def __init__(self, num_cores: int) -> None:
        if num_cores <= 0:
            raise ValueError("num_cores must be positive")
        self.num_cores = num_cores
        self._local: list[deque[Task]] = [deque() for _ in range(num_cores)]
        self._global: deque[Task] = deque()

    def add_ready(self, task: Task) -> None:
        if task.affinity is not None and 0 <= task.affinity < self.num_cores:
            self._local[task.affinity].append(task)
        else:
            self._global.append(task)

    def next_task(self, core: int) -> Task | None:
        if self._local[core]:
            return self._local[core].popleft()
        if self._global:
            return self._global.popleft()
        victim = max(range(self.num_cores), key=lambda c: len(self._local[c]))
        if self._local[victim]:
            return self._local[victim].popleft()  # steal
        return None

    def __len__(self) -> int:
        return len(self._global) + sum(len(q) for q in self._local)


class RandomScheduler(Scheduler):
    """Uniform random dispatch (seeded, for scheduler-sensitivity ablation)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)
        self._queue: list[Task] = []

    def add_ready(self, task: Task) -> None:
        self._queue.append(task)

    def next_task(self, core: int) -> Task | None:
        if not self._queue:
            return None
        idx = int(self._rng.integers(len(self._queue)))
        self._queue[idx], self._queue[-1] = self._queue[-1], self._queue[idx]
        return self._queue.pop()

    def __len__(self) -> int:
        return len(self._queue)
