"""Tasks, dependencies and programs.

A :class:`Task` mirrors an OpenMP 4.0 task: a unit of work annotated with
``depend(in/out/inout: region)`` clauses.  Its memory behaviour is a list
of :class:`AccessChunk`\\ s — sequential sweeps over regions — from which
:mod:`repro.runtime.trace` builds the block-granularity trace.  If no
chunks are given, a default sweep is derived from the dependency modes
(read passes over ``in``/``inout``, write passes over ``out``/``inout``).

A :class:`Program` is a list of phases separated by ``taskwait`` barriers,
matching the structure of the paper's OmpSs benchmarks: the creator thread
creates every task of a phase, the pool drains, and only then is the next
phase created.  This is what makes ``UseDesc == 0`` a *prediction* about
future reuse rather than an oracle: uses in later phases are invisible at
decision time (Section II-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.deps import DepMode
from repro.mem.region import Region

__all__ = ["Dependency", "AccessChunk", "Task", "TaskState", "Program"]


@dataclass(frozen=True)
class Dependency:
    """One ``depend`` clause: an access mode over a region."""

    region: Region
    mode: DepMode

    def __post_init__(self) -> None:
        if not self.region:
            raise ValueError("dependency region must be non-empty")


@dataclass(frozen=True)
class AccessChunk:
    """A sequential sweep over ``region``: every block touched once per
    pass, reads or writes.

    ``rmw`` models a read-modify-write kernel: each block is read and then
    immediately written within the same pass (so the write hits the L1),
    rather than a full read sweep followed by a full write sweep that
    would re-miss a smaller-than-region L1.
    """

    region: Region
    write: bool
    passes: int = 1
    rmw: bool = False

    def __post_init__(self) -> None:
        if self.passes <= 0:
            raise ValueError("passes must be positive")


class TaskState(Enum):
    CREATED = "created"
    READY = "ready"
    RUNNING = "running"
    FINISHED = "finished"


_task_counter = 0


def _next_tid() -> int:
    global _task_counter
    _task_counter += 1
    return _task_counter


@dataclass
class Task:
    """One task instance."""

    name: str
    deps: tuple[Dependency, ...]
    #: explicit memory behaviour; derived from deps when empty.
    accesses: tuple[AccessChunk, ...] = ()
    #: passes used when deriving default read/write sweeps from deps.
    read_passes: int = 1
    write_passes: int = 1
    #: fixed extra compute cycles (beyond the per-access charge).
    extra_compute_cycles: int = 0
    #: per-access compute cycles; None uses the config default.  Workloads
    #: set this to model their arithmetic intensity (e.g. MD5 hashing is
    #: compute-bound, stencils are memory-bound).
    compute_per_access: int | None = None
    #: scheduler affinity hint (core id) or None.
    affinity: int | None = None
    #: owning process (multiprogramming extension, paper Section III-D).
    pid: int = 0
    tid: int = field(default_factory=_next_tid)
    state: TaskState = TaskState.CREATED

    def __post_init__(self) -> None:
        if self.read_passes <= 0 or self.write_passes <= 0:
            raise ValueError("passes must be positive")
        if self.extra_compute_cycles < 0:
            raise ValueError("extra_compute_cycles must be non-negative")

    def effective_accesses(self) -> tuple[AccessChunk, ...]:
        """The task's access chunks (derived from deps when not given).

        Derived order mirrors a read-compute-write kernel: one read sweep
        per readable dependency, then one write sweep per writable one.
        """
        if self.accesses:
            return self.accesses
        chunks: list[AccessChunk] = []
        for d in self.deps:
            if d.mode is DepMode.INOUT:
                chunks.append(AccessChunk(d.region, True, self.write_passes, rmw=True))
            elif d.mode is DepMode.IN:
                chunks.append(AccessChunk(d.region, False, self.read_passes))
        for d in self.deps:
            if d.mode is DepMode.OUT:
                chunks.append(AccessChunk(d.region, True, self.write_passes))
        return tuple(chunks)

    def footprint_bytes(self) -> int:
        """Bytes of all dependency regions (Table II "task size")."""
        return sum(d.region.size for d in self.deps)

    def dep_regions(self, mode: DepMode | None = None) -> list[Region]:
        return [d.region for d in self.deps if mode is None or d.mode is mode]


@dataclass
class Program:
    """Phases of tasks separated by taskwait barriers.

    The first ``warmup_phases`` phases are initialization (data population):
    they execute normally — warming caches and OS page classifications, as
    in the paper's full-system runs — but the harness resets all statistics
    afterwards, matching the paper's "entire post-initialisation parallel
    execution phase" measurement window.
    """

    name: str
    phases: list[list[Task]] = field(default_factory=list)
    warmup_phases: int = 0

    def new_phase(self) -> list[Task]:
        """Open a new phase (i.e. emit a ``taskwait``) and return it."""
        phase: list[Task] = []
        self.phases.append(phase)
        return phase

    def add(self, task: Task) -> Task:
        """Append ``task`` to the current (last) phase."""
        if not self.phases:
            self.new_phase()
        self.phases[-1].append(task)
        return task

    @property
    def tasks(self) -> list[Task]:
        """All tasks in program order."""
        return [t for phase in self.phases for t in phase]

    @property
    def num_tasks(self) -> int:
        return sum(len(p) for p in self.phases)

    def total_footprint_bytes(self) -> int:
        """Sum of unique dependency-region bytes across the program."""
        seen: set[tuple[int, int]] = set()
        total = 0
        for task in self.tasks:
            for dep in task.deps:
                key = (dep.region.start, dep.region.size)
                if key not in seen:
                    seen.add(key)
                    total += dep.region.size
        return total
