"""Task Dependency Graph construction.

Tasks are inserted in program order; edges are derived from their declared
dependencies exactly as a task-dataflow runtime does:

* RAW — a reader depends on the last writer of an overlapping region;
* WAW — a writer depends on the last writer;
* WAR — a writer depends on every reader since the last write.

Two overlap-detection modes are provided.  ``exact`` (default) keys regions
by ``(start, size)`` — O(1) per dependency, and sufficient for the paper's
benchmarks, whose array-section annotations tile the data identically across
tasks.  ``interval`` performs full interval-overlap analysis (O(regions)
per dependency) for programs with partially overlapping sections.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.deps import DepMode
from repro.mem.region import Region
from repro.runtime.task import Task, TaskState

__all__ = ["TaskGraph"]


@dataclass
class _RegionState:
    """Dataflow state of one region key."""

    region: Region
    last_writer: Task | None = None
    readers_since_write: list[Task] = field(default_factory=list)
    # Bounds denormalized from ``region`` so the interval-mode overlap
    # scan compares plain ints instead of calling Region properties.
    start: int = 0
    end: int = 0

    def __post_init__(self) -> None:
        self.start = self.region.start
        self.end = self.region.start + self.region.size


@dataclass
class _Node:
    task: Task
    pending: int = 0
    successors: list[Task] = field(default_factory=list)
    # Edge dedup: predecessor tids already linked.
    preds: set[int] = field(default_factory=set)


class TaskGraph:
    """Incremental TDG over one phase of a program."""

    #: interval-mode spatial index granularity (bytes per bucket).
    BUCKET_SHIFT = 16

    def __init__(self, overlap_mode: str = "exact") -> None:
        if overlap_mode not in ("exact", "interval"):
            raise ValueError("overlap_mode must be 'exact' or 'interval'")
        self.overlap_mode = overlap_mode
        self._regions: dict[tuple[int, int], _RegionState] = {}
        self._nodes: dict[int, _Node] = {}
        # Interval mode: bucket index over the address space so overlap
        # queries touch only nearby states instead of every region.
        self._buckets: dict[int, list[_RegionState]] = {}
        self.edges = 0

    # --- construction ---

    def _bucket_range(self, region: Region) -> range:
        return range(
            region.start >> self.BUCKET_SHIFT,
            ((region.end - 1) >> self.BUCKET_SHIFT) + 1,
        )

    def _states_overlapping(self, region: Region) -> list[_RegionState]:
        key = (region.start, region.size)
        if self.overlap_mode == "exact":
            state = self._regions.get(key)
            if state is None:
                state = _RegionState(region)
                self._regions[key] = state
            return [state]
        # Interval mode: candidates come from the buckets the region spans.
        out: list[_RegionState] = []
        seen: set[int] = set()
        r_start = region.start
        r_end = r_start + region.size
        nonempty = region.size > 0
        buckets = self._buckets
        bucket_range = range(
            r_start >> self.BUCKET_SHIFT,
            ((r_end - 1) >> self.BUCKET_SHIFT) + 1,
        )
        for b in bucket_range:
            for state in buckets.get(b, ()):
                # Inline Region.overlaps over the denormalized bounds.
                if (
                    nonempty
                    and state.start < r_end
                    and r_start < state.end
                    and state.end > state.start
                    and id(state) not in seen
                ):
                    seen.add(id(state))
                    out.append(state)
        if key not in self._regions:
            state = _RegionState(region)
            self._regions[key] = state
            for b in bucket_range:
                buckets.setdefault(b, []).append(state)
            out.append(state)
        return out

    def _link(self, pred: Task, succ_node: _Node) -> None:
        if pred.tid == succ_node.task.tid or pred.state is TaskState.FINISHED:
            return
        if pred.tid in succ_node.preds:
            return
        succ_node.preds.add(pred.tid)
        succ_node.pending += 1
        self._nodes[pred.tid].successors.append(succ_node.task)
        self.edges += 1

    def add_task(self, task: Task) -> None:
        """Insert ``task``, deriving edges from program order."""
        if task.tid in self._nodes:
            raise ValueError(f"task {task.tid} already in graph")
        node = _Node(task)
        self._nodes[task.tid] = node
        for dep in task.deps:
            for state in self._states_overlapping(dep.region):
                if dep.mode.reads and state.last_writer is not None:
                    self._link(state.last_writer, node)  # RAW
                if dep.mode.writes:
                    if state.last_writer is not None:
                        self._link(state.last_writer, node)  # WAW
                    for reader in state.readers_since_write:
                        self._link(reader, node)  # WAR
        # Second pass: update region states (a task reading and writing the
        # same region must not self-link).
        for dep in task.deps:
            for state in self._states_overlapping(dep.region):
                if dep.mode.writes:
                    state.last_writer = task
                    state.readers_since_write.clear()
                elif dep.mode is DepMode.IN:
                    state.readers_since_write.append(task)

    # --- execution-side interface ---

    def initial_ready(self) -> list[Task]:
        """Tasks with no pending predecessors, in insertion order."""
        ready = [n.task for n in self._nodes.values() if n.pending == 0]
        for t in ready:
            t.state = TaskState.READY
        return ready

    def mark_finished(self, task: Task) -> list[Task]:
        """Complete ``task``; returns newly ready successors."""
        node = self._nodes[task.tid]
        task.state = TaskState.FINISHED
        ready = []
        for succ in node.successors:
            snode = self._nodes[succ.tid]
            snode.pending -= 1
            if snode.pending == 0:
                succ.state = TaskState.READY
                ready.append(succ)
            elif snode.pending < 0:
                raise RuntimeError(f"negative pending count on task {succ.tid}")
        return ready

    @property
    def num_tasks(self) -> int:
        return len(self._nodes)

    def pending_of(self, task: Task) -> int:
        return self._nodes[task.tid].pending

    def successors_of(self, task: Task) -> list[Task]:
        return list(self._nodes[task.tid].successors)

    def all_finished(self) -> bool:
        return all(n.task.state is TaskState.FINISHED for n in self._nodes.values())
