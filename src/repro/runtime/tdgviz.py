"""Task-dependency-graph export (Graphviz DOT).

The paper's Fig. 2 shows a Cholesky TDG; :func:`program_to_dot` renders
any :class:`~repro.runtime.task.Program`'s dependency structure the same
way — one node per task (colored by kernel name), one edge per TDG
dependency — for rendering with ``dot -Tpdf``.
"""

from __future__ import annotations

from repro.runtime.task import Program, Task
from repro.runtime.tdg import TaskGraph

__all__ = ["program_to_dot", "tdg_edge_list"]

_PALETTE = (
    "#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3",
    "#fdb462", "#b3de69", "#fccde5", "#d9d9d9", "#bc80bd",
)


def _kernel_of(task: Task) -> str:
    """Kernel family = the task name up to its first bracket."""
    return task.name.split("[", 1)[0]


def tdg_edge_list(
    program: Program, overlap_mode: str = "exact", max_tasks: int | None = None
) -> list[tuple[Task, Task]]:
    """All (predecessor, successor) pairs of the program's per-phase TDGs."""
    edges: list[tuple[Task, Task]] = []
    remaining = max_tasks
    for phase in program.phases:
        tasks = phase if remaining is None else phase[:remaining]
        graph = TaskGraph(overlap_mode)
        for t in tasks:
            graph.add_task(t)
        for t in tasks:
            for succ in graph.successors_of(t):
                edges.append((t, succ))
        if remaining is not None:
            remaining -= len(tasks)
            if remaining <= 0:
                break
    return edges


def program_to_dot(
    program: Program,
    overlap_mode: str = "exact",
    max_tasks: int | None = 200,
    include_warmup: bool = False,
) -> str:
    """Render the program's TDG as Graphviz DOT.

    ``max_tasks`` caps the rendered node count (big programs make
    unreadable graphs); warmup/init phases are skipped by default.
    """
    phases = program.phases[0 if include_warmup else program.warmup_phases :]
    clipped = Program(program.name, phases)
    edges = tdg_edge_list(clipped, overlap_mode, max_tasks)

    shown: list[Task] = []
    remaining = max_tasks
    for phase in clipped.phases:
        take = phase if remaining is None else phase[:remaining]
        shown.extend(take)
        if remaining is not None:
            remaining -= len(take)
            if remaining <= 0:
                break
    shown_ids = {t.tid for t in shown}

    kernels = sorted({_kernel_of(t) for t in shown})
    color = {k: _PALETTE[i % len(_PALETTE)] for i, k in enumerate(kernels)}

    lines = [
        f'digraph "{program.name}" {{',
        "  rankdir=TB;",
        '  node [style=filled, fontname="Helvetica", shape=ellipse];',
    ]
    for t in shown:
        lines.append(
            f'  t{t.tid} [label="{t.name}", fillcolor="{color[_kernel_of(t)]}"];'
        )
    for pred, succ in edges:
        if pred.tid in shown_ids and succ.tid in shown_ids:
            lines.append(f"  t{pred.tid} -> t{succ.tid};")
    lines.append("}")
    return "\n".join(lines)
