"""Per-task memory trace generation.

A task's trace is the block-granularity sequence of virtual-block accesses
its kernel performs: one sequential sweep per :class:`AccessChunk`, each
pass touching every block of the chunk's region once.  Traces are built as
NumPy arrays (block numbers + write flags) so translation and census
bookkeeping stay vectorized; only the cache state machine consumes them
element-wise.
"""

from __future__ import annotations

import numpy as np

from repro.mem.address import AddressMap
from repro.runtime.task import Task

__all__ = ["TaskTrace", "build_trace", "build_trace_cached", "trace_signature"]


class TaskTrace:
    """Immutable (vblocks, writes) pair for one task execution."""

    __slots__ = ("vblocks", "writes")

    def __init__(self, vblocks: np.ndarray, writes: np.ndarray) -> None:
        if vblocks.shape != writes.shape:
            raise ValueError("vblocks and writes must have the same shape")
        self.vblocks = vblocks
        self.writes = writes

    def __len__(self) -> int:
        return len(self.vblocks)


def build_trace(task: Task, amap: AddressMap) -> TaskTrace:
    """Expand ``task``'s access chunks into a block trace.

    Every block *overlapping* a chunk's region is touched (partial first and
    last blocks included — the program really does access those bytes; only
    TD-NUCA *management* excludes them, per Section III-D).
    """
    parts: list[np.ndarray] = []
    flags: list[np.ndarray] = []
    for chunk in task.effective_accesses():
        rng = chunk.region.blocks(amap)
        if not len(rng):
            continue
        sweep = np.arange(rng.start, rng.stop, dtype=np.int64)
        if chunk.rmw:
            # read b0, write b0, read b1, write b1, ... per pass
            sweep = np.repeat(sweep, 2)
            pass_flags = np.tile(np.array([False, True]), len(rng))
        else:
            pass_flags = np.full(len(sweep), chunk.write, dtype=bool)
        if chunk.passes > 1:
            sweep = np.tile(sweep, chunk.passes)
            pass_flags = np.tile(pass_flags, chunk.passes)
        parts.append(sweep)
        flags.append(pass_flags)
    if not parts:
        empty = np.empty(0, dtype=np.int64)
        return TaskTrace(empty, np.empty(0, dtype=bool))
    return TaskTrace(np.concatenate(parts), np.concatenate(flags))


def trace_signature(task: Task) -> tuple:
    """Hashable key capturing everything :func:`build_trace` reads.

    Two tasks with equal signatures produce identical traces for a given
    address map, so the expansion can be shared: task-dataflow programs
    re-execute the same kernel shapes over and over (every Jacobi sweep,
    every k-means assign phase), and re-materializing the same NumPy
    arrays per task instance is pure interpreter overhead.
    """
    return tuple(
        (c.region.start, c.region.size, c.write, c.passes, c.rmw)
        for c in task.effective_accesses()
    )


#: signature-cache ceiling; programs with more distinct kernel shapes than
#: this evict their least-recently-used expansions (correctness is
#: unaffected, only sharing).
_TRACE_CACHE_MAX = 4096


class TraceCache:
    """Bounded LRU of expanded traces, shared across machines and kernels.

    Keyed by (address-map geometry, task signature), so one process-wide
    instance serves every machine: a sweep that runs the same workload
    under several policies — or the verify kernel running two backends
    over one machine — expands each distinct kernel shape once.  Traces
    are immutable, so sharing is safe; the bound keeps long sweeps from
    growing the cache without limit, and eviction is oldest-unused-first
    rather than the old clear-everything overflow behavior.
    """

    __slots__ = ("max_entries", "hits", "misses", "_entries")

    def __init__(self, max_entries: int = _TRACE_CACHE_MAX) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: dict[tuple, TaskTrace] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def get_or_build(self, task: Task, amap: AddressMap) -> TaskTrace:
        entries = self._entries
        key = (
            (amap.block_bytes, amap.page_bytes, amap.physical_address_bits),
            trace_signature(task),
        )
        trace = entries.pop(key, None)
        if trace is None:
            self.misses += 1
            if len(entries) >= self.max_entries:
                # dicts iterate in insertion order; with the pop/reinsert
                # on every hit below, the first key is the LRU entry.
                del entries[next(iter(entries))]
            trace = build_trace(task, amap)
        else:
            self.hits += 1
        entries[key] = trace  # (re)insert at the most-recent position
        return trace


#: the process-wide instance every machine uses by default.
shared_trace_cache = TraceCache()


def build_trace_cached(
    task: Task,
    amap: AddressMap,
    cache: TraceCache | dict[tuple, TaskTrace] | None = None,
) -> TaskTrace:
    """Memoized :func:`build_trace`.

    With no ``cache`` (or a :class:`TraceCache`), the geometry-keyed
    shared LRU is used.  A plain dict keeps the old per-caller behavior
    (keyed by task signature alone — the caller owns one address map),
    now with LRU eviction instead of clear-on-overflow.  Returned traces
    are shared and must be treated as immutable, which every consumer
    already does — translation and census read them, nothing writes.
    """
    if cache is None:
        cache = shared_trace_cache
    if isinstance(cache, TraceCache):
        return cache.get_or_build(task, amap)
    sig = trace_signature(task)
    trace = cache.pop(sig, None)
    if trace is None:
        if len(cache) >= _TRACE_CACHE_MAX:
            del cache[next(iter(cache))]
        trace = build_trace(task, amap)
    cache[sig] = trace
    return trace
