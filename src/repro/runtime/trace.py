"""Per-task memory trace generation.

A task's trace is the block-granularity sequence of virtual-block accesses
its kernel performs: one sequential sweep per :class:`AccessChunk`, each
pass touching every block of the chunk's region once.  Traces are built as
NumPy arrays (block numbers + write flags) so translation and census
bookkeeping stay vectorized; only the cache state machine consumes them
element-wise.
"""

from __future__ import annotations

import numpy as np

from repro.mem.address import AddressMap
from repro.runtime.task import Task

__all__ = ["TaskTrace", "build_trace", "build_trace_cached", "trace_signature"]


class TaskTrace:
    """Immutable (vblocks, writes) pair for one task execution."""

    __slots__ = ("vblocks", "writes")

    def __init__(self, vblocks: np.ndarray, writes: np.ndarray) -> None:
        if vblocks.shape != writes.shape:
            raise ValueError("vblocks and writes must have the same shape")
        self.vblocks = vblocks
        self.writes = writes

    def __len__(self) -> int:
        return len(self.vblocks)


def build_trace(task: Task, amap: AddressMap) -> TaskTrace:
    """Expand ``task``'s access chunks into a block trace.

    Every block *overlapping* a chunk's region is touched (partial first and
    last blocks included — the program really does access those bytes; only
    TD-NUCA *management* excludes them, per Section III-D).
    """
    parts: list[np.ndarray] = []
    flags: list[np.ndarray] = []
    for chunk in task.effective_accesses():
        rng = chunk.region.blocks(amap)
        if not len(rng):
            continue
        sweep = np.arange(rng.start, rng.stop, dtype=np.int64)
        if chunk.rmw:
            # read b0, write b0, read b1, write b1, ... per pass
            sweep = np.repeat(sweep, 2)
            pass_flags = np.tile(np.array([False, True]), len(rng))
        else:
            pass_flags = np.full(len(sweep), chunk.write, dtype=bool)
        if chunk.passes > 1:
            sweep = np.tile(sweep, chunk.passes)
            pass_flags = np.tile(pass_flags, chunk.passes)
        parts.append(sweep)
        flags.append(pass_flags)
    if not parts:
        empty = np.empty(0, dtype=np.int64)
        return TaskTrace(empty, np.empty(0, dtype=bool))
    return TaskTrace(np.concatenate(parts), np.concatenate(flags))


def trace_signature(task: Task) -> tuple:
    """Hashable key capturing everything :func:`build_trace` reads.

    Two tasks with equal signatures produce identical traces for a given
    address map, so the expansion can be shared: task-dataflow programs
    re-execute the same kernel shapes over and over (every Jacobi sweep,
    every k-means assign phase), and re-materializing the same NumPy
    arrays per task instance is pure interpreter overhead.
    """
    return tuple(
        (c.region.start, c.region.size, c.write, c.passes, c.rmw)
        for c in task.effective_accesses()
    )


#: signature-cache ceiling; programs with more distinct kernel shapes than
#: this simply stop sharing (correctness is unaffected).
_TRACE_CACHE_MAX = 4096


def build_trace_cached(
    task: Task, amap: AddressMap, cache: dict[tuple, TaskTrace]
) -> TaskTrace:
    """Memoized :func:`build_trace`.

    ``cache`` is owned by the caller (one per machine) because traces
    depend on the address map's block geometry.  Returned traces are
    shared and must be treated as immutable, which every consumer already
    does — translation and census read them, nothing writes.
    """
    sig = trace_signature(task)
    trace = cache.get(sig)
    if trace is None:
        if len(cache) >= _TRACE_CACHE_MAX:
            cache.clear()
        trace = build_trace(task, amap)
        cache[sig] = trace
    return trace
