"""Per-task memory trace generation.

A task's trace is the block-granularity sequence of virtual-block accesses
its kernel performs: one sequential sweep per :class:`AccessChunk`, each
pass touching every block of the chunk's region once.  Traces are built as
NumPy arrays (block numbers + write flags) so translation and census
bookkeeping stay vectorized; only the cache state machine consumes them
element-wise.
"""

from __future__ import annotations

import numpy as np

from repro.mem.address import AddressMap
from repro.runtime.task import Task

__all__ = ["TaskTrace", "build_trace"]


class TaskTrace:
    """Immutable (vblocks, writes) pair for one task execution."""

    __slots__ = ("vblocks", "writes")

    def __init__(self, vblocks: np.ndarray, writes: np.ndarray) -> None:
        if vblocks.shape != writes.shape:
            raise ValueError("vblocks and writes must have the same shape")
        self.vblocks = vblocks
        self.writes = writes

    def __len__(self) -> int:
        return len(self.vblocks)


def build_trace(task: Task, amap: AddressMap) -> TaskTrace:
    """Expand ``task``'s access chunks into a block trace.

    Every block *overlapping* a chunk's region is touched (partial first and
    last blocks included — the program really does access those bytes; only
    TD-NUCA *management* excludes them, per Section III-D).
    """
    parts: list[np.ndarray] = []
    flags: list[np.ndarray] = []
    for chunk in task.effective_accesses():
        rng = chunk.region.blocks(amap)
        if not len(rng):
            continue
        sweep = np.arange(rng.start, rng.stop, dtype=np.int64)
        if chunk.rmw:
            # read b0, write b0, read b1, write b1, ... per pass
            sweep = np.repeat(sweep, 2)
            pass_flags = np.tile(np.array([False, True]), len(rng))
        else:
            pass_flags = np.full(len(sweep), chunk.write, dtype=bool)
        if chunk.passes > 1:
            sweep = np.tile(sweep, chunk.passes)
            pass_flags = np.tile(pass_flags, chunk.passes)
        parts.append(sweep)
        flags.append(pass_flags)
    if not parts:
        empty = np.empty(0, dtype=np.int64)
        return TaskTrace(empty, np.empty(0, dtype=bool))
    return TaskTrace(np.concatenate(parts), np.concatenate(flags))
