"""Declarative scenario layer: one canonical run description.

A :class:`Scenario` captures everything that defines a simulation —
machine geometry, workload mix, NUCA policy, fault schedule,
multiprogrammed co-runners, kernel choice, trace/checkpoint options and
seeds — as one versioned, schema-validated value.  ``Session.run/sweep``,
the CLI (``repro run scenario.yaml``, ``repro scenario ...``) and the
service specs all compile down to it, so the same logical run expressed
any of those ways produces an identical ``config_sha256`` and
byte-identical statistics.

Scenarios serialize to YAML or JSON; a curated library ships under
``scenarios/`` at the repository root and is loadable by name via
:func:`load_scenario` / :func:`scenario_names`.
"""

from repro.scenario.model import (
    SCHEMA_VERSION,
    CheckpointSpec,
    CoRunner,
    MachineSpec,
    Scenario,
    ScenarioError,
    TraceSpec,
    parse_scenario,
    scenario_from_legacy_body,
)
from repro.scenario.loader import (
    library_dir,
    load_scenario,
    scenario_names,
)
from repro.scenario.runner import rebase_program, run_multiprog

__all__ = [
    "SCHEMA_VERSION",
    "Scenario",
    "ScenarioError",
    "MachineSpec",
    "CoRunner",
    "TraceSpec",
    "CheckpointSpec",
    "parse_scenario",
    "scenario_from_legacy_body",
    "load_scenario",
    "scenario_names",
    "library_dir",
    "rebase_program",
    "run_multiprog",
]
