"""Loading scenarios from files and the curated library.

YAML parsing is gated on PyYAML being importable: the package never hard
-depends on it (JSON scenarios always work), but a ``.yaml`` file without
the parser fails with an actionable message rather than an ImportError
five frames deep.

Library resolution for ``load_scenario("stress-8x8")``: an explicit path
wins; otherwise a ``scenarios/`` directory in the current working
directory, then the repository's curated library next to this package.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.scenario.model import Scenario, ScenarioError, parse_scenario

__all__ = ["load_scenario", "scenario_names", "library_dir", "loads_scenario"]

_SUFFIXES = (".yaml", ".yml", ".json")


def _yaml():
    try:
        import yaml
    except ImportError:  # pragma: no cover - environment without PyYAML
        return None
    return yaml


def library_dir() -> Path:
    """The curated scenario library shipped at the repository root."""
    return Path(__file__).resolve().parents[3] / "scenarios"


def _library_dirs() -> list[Path]:
    dirs = [Path.cwd() / "scenarios", library_dir()]
    seen: set[Path] = set()
    out = []
    for d in dirs:
        if d not in seen and d.is_dir():
            seen.add(d)
            out.append(d)
    return out


def scenario_names() -> list[str]:
    """Names of every library scenario (sorted, deduplicated — a cwd
    ``scenarios/`` shadows the shipped library file of the same name)."""
    names: dict[str, Path] = {}
    for d in _library_dirs():
        for path in sorted(d.iterdir()):
            if path.suffix in _SUFFIXES and path.stem not in names:
                names[path.stem] = path
    return sorted(names)


def _resolve_library(name: str) -> Path:
    candidates = []
    for d in _library_dirs():
        for suffix in _SUFFIXES:
            path = d / f"{name}{suffix}"
            if path.is_file():
                return path
        candidates.append(str(d))
    known = scenario_names()
    raise ScenarioError(
        f"no scenario named {name!r} in {' or '.join(candidates) or 'the library'}"
        + (f"; known scenarios: {', '.join(known)}" if known else ""),
        source=name,
    )


def loads_scenario(text: str, *, source: str = "") -> Scenario:
    """Parse scenario text (YAML when available, JSON always)."""
    yaml = _yaml()
    if yaml is not None:
        try:
            raw = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ScenarioError(f"invalid YAML: {exc}", source=source) from exc
    else:
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(
                f"invalid JSON (PyYAML is not installed, so only JSON "
                f"scenarios can be read): {exc}",
                source=source,
            ) from exc
    return parse_scenario(raw, source=source)


def load_scenario(name_or_path: str | Path) -> Scenario:
    """Load a scenario by library name or file path.

    Anything that looks like a file — an existing path, or a string with a
    scenario suffix or a directory separator — is read as a file; anything
    else is resolved against the library (cwd ``scenarios/`` first, then
    the shipped library).
    """
    path = Path(name_or_path)
    looks_like_file = (
        path.suffix in _SUFFIXES
        or "/" in str(name_or_path)
        or path.is_file()
    )
    if looks_like_file:
        if not path.is_file():
            raise ScenarioError("scenario file not found", source=str(path))
    else:
        path = _resolve_library(str(name_or_path))
    if path.suffix in (".yaml", ".yml") and _yaml() is None:
        raise ScenarioError(
            "PyYAML is not installed; install it or convert the scenario "
            "to JSON",
            source=str(path),
        )
    try:
        text = path.read_text()
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario: {exc}", source=str(path)) from exc
    return loads_scenario(text, source=str(path))


def dump_scenario(scenario: Scenario) -> str:
    """Serialize to library text (YAML when available, else JSON)."""
    data: dict[str, Any] = scenario.to_dict()
    yaml = _yaml()
    if yaml is not None:
        return yaml.safe_dump(data, sort_keys=False)
    return json.dumps(data, indent=2) + "\n"
