"""The :class:`Scenario` dataclass and its schema.

A scenario is the single source of truth for one logical experiment.  The
on-disk form is a YAML/JSON mapping with a ``scenario: 1`` version stamp;
:func:`parse_scenario` turns it into a validated :class:`Scenario`, and
:meth:`Scenario.to_config` is the *only* place a scenario becomes a
:class:`~repro.config.SystemConfig` — Session, CLI and service all call
it, which is what makes their fingerprints agree.

Compatibility invariant: for the default machine (4x4 mesh, 2x2 clusters,
no RRT override) ``to_config`` performs exactly the replaces the legacy
``scaled_config + replace(fault_spec, strict, kernel)`` paths performed,
in the same order, so ``config_sha256`` of every pre-scenario run is
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.config import SystemConfig, scaled_config

__all__ = [
    "SCHEMA_VERSION",
    "ScenarioError",
    "MachineSpec",
    "CoRunner",
    "TraceSpec",
    "CheckpointSpec",
    "Scenario",
    "parse_scenario",
    "scenario_from_legacy_body",
]

#: on-disk schema version; bumped only on incompatible changes.
SCHEMA_VERSION = 1

#: virtual-address stride between multiprogrammed processes: each
#: co-runner is rebased into its own slice so address spaces are disjoint
#: (separate OS processes), far above any workload's natural footprint.
PID_ADDRESS_STRIDE = 1 << 36


class ScenarioError(ValueError):
    """A scenario failed validation.

    ``field`` names the offending key (dotted path, e.g. ``machine.mesh``)
    and ``source`` the file or label it came from, so tooling — and the
    CI smoke job — can point at exactly what to fix.
    """

    def __init__(self, message: str, *, field: str = "", source: str = "") -> None:
        self.message = message
        self.field = field
        self.source = source
        prefix = ""
        if source:
            prefix += f"{source}: "
        if field:
            prefix += f"{field}: "
        super().__init__(prefix + message)

    def with_source(self, source: str) -> "ScenarioError":
        """The same error, attributed to ``source`` (no-op if already set)."""
        if self.source or not source:
            return self
        return ScenarioError(self.message, field=self.field, source=source)


def _parse_geometry(value: Any, what: str) -> tuple[int, int]:
    """Accept ``"8x8"``, ``[8, 8]`` or ``{"width": 8, "height": 8}``."""
    if isinstance(value, str):
        parts = value.lower().split("x")
        if len(parts) == 2 and all(p.strip().isdigit() for p in parts):
            return int(parts[0]), int(parts[1])
        raise ScenarioError(
            f"expected WIDTHxHEIGHT (e.g. '8x8'), got {value!r}", field=what
        )
    if isinstance(value, (list, tuple)) and len(value) == 2:
        try:
            return int(value[0]), int(value[1])
        except (TypeError, ValueError):
            pass
    if isinstance(value, dict) and set(value) == {"width", "height"}:
        try:
            return int(value["width"]), int(value["height"])
        except (TypeError, ValueError):
            pass
    raise ScenarioError(
        f"expected WIDTHxHEIGHT string, [width, height] pair or "
        f"{{width, height}} mapping, got {value!r}",
        field=what,
    )


@dataclass(frozen=True)
class MachineSpec:
    """Machine geometry: experiment scale plus mesh/cluster shape."""

    scale: int = 64
    mesh_width: int = 4
    mesh_height: int = 4
    cluster_width: int = 2
    cluster_height: int = 2
    #: RRT entries per core; ``None`` keeps the Table-I 64 (RRT-pressure
    #: studies shrink it at high core counts).
    rrt_entries: int | None = None

    @property
    def is_default_geometry(self) -> bool:
        return (
            self.mesh_width == 4
            and self.mesh_height == 4
            and self.cluster_width == 2
            and self.cluster_height == 2
            and self.rrt_entries is None
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"scale": self.scale}
        if (self.mesh_width, self.mesh_height) != (4, 4):
            out["mesh"] = f"{self.mesh_width}x{self.mesh_height}"
        if (self.cluster_width, self.cluster_height) != (2, 2):
            out["cluster"] = f"{self.cluster_width}x{self.cluster_height}"
        if self.rrt_entries is not None:
            out["rrt_entries"] = self.rrt_entries
        return out


@dataclass(frozen=True)
class CoRunner:
    """One multiprogrammed process: a workload under its own PID.

    ``seed`` defaults to the scenario seed; distinct seeds decorrelate
    identical co-runners.
    """

    workload: str
    seed: int | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"workload": self.workload}
        if self.seed is not None:
            out["seed"] = self.seed
        return out


@dataclass(frozen=True)
class TraceSpec:
    """Observability options (events + interval timeline)."""

    enabled: bool = False
    sample_every: int = 64
    out: str | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"enabled": self.enabled}
        if self.sample_every != 64:
            out["sample_every"] = self.sample_every
        if self.out is not None:
            out["out"] = self.out
        return out


@dataclass(frozen=True)
class CheckpointSpec:
    """Task-boundary snapshot options (sweeps only)."""

    every: int = 0
    deadline: float | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"every": self.every}
        if self.deadline is not None:
            out["deadline"] = self.deadline
        return out


@dataclass(frozen=True)
class Scenario:
    """One logical experiment, fully described.

    Exactly one of three shapes (``kind``):

    * **run** — ``workload`` + ``policy``: a single simulation.
    * **sweep** — ``workloads`` x ``policies``: a grid through the
      crash-tolerant harness (or the service).
    * **multiprog** — ``corunners`` + ``policy``: several processes
      co-scheduled on one machine through PID-tagged RRTs
      (:mod:`repro.runtime.multiprog`).
    """

    name: str
    workload: str | None = None
    policy: str | None = None
    workloads: tuple[str, ...] = ()
    policies: tuple[str, ...] = ()
    corunners: tuple[CoRunner, ...] = ()
    machine: MachineSpec = field(default_factory=MachineSpec)
    faults: str = ""
    strict: bool = False
    kernel: str = "auto"
    seed: int = 0
    trace: TraceSpec = field(default_factory=TraceSpec)
    checkpoint: CheckpointSpec = field(default_factory=CheckpointSpec)
    description: str = ""
    #: file the scenario was loaded from ("" for programmatic scenarios);
    #: excluded from to_dict/equality-relevant identity.
    source: str = ""

    @property
    def kind(self) -> str:
        if self.corunners:
            return "multiprog"
        if self.workloads or self.policies:
            return "sweep"
        return "run"

    # --- validation -----------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ScenarioError` on any inconsistency, naming the
        field and listing valid registry entries for bad names."""
        err = lambda msg, fld: ScenarioError(msg, field=fld, source=self.source)  # noqa: E731
        if not self.name:
            raise err("scenario needs a non-empty name", "name")
        shapes = sum(
            (
                bool(self.workload),
                bool(self.workloads or self.policies),
                bool(self.corunners),
            )
        )
        if shapes == 0:
            raise err(
                "scenario needs one of 'workload', 'sweep', or 'multiprog'",
                "workload",
            )
        if shapes > 1:
            raise err(
                "'workload', 'sweep' and 'multiprog' are mutually exclusive",
                "workload",
            )
        if self.kind == "run":
            self._check_workload(self.workload, "workload")
            self._check_policy(self.policy, "policy")
        elif self.kind == "sweep":
            if not self.workloads or not self.policies:
                raise err(
                    "sweep needs non-empty 'workloads' and 'policies' lists",
                    "sweep",
                )
            if self.policy is not None:
                raise err("sweep uses 'sweep.policies', not 'policy'", "policy")
            for wl in self.workloads:
                self._check_workload(wl, "sweep.workloads")
            for pol in self.policies:
                self._check_policy(pol, "sweep.policies")
        else:  # multiprog
            if len(self.corunners) < 2:
                raise err(
                    "multiprog needs at least two co-runners (one process "
                    "is just a run)",
                    "multiprog",
                )
            self._check_policy(self.policy, "policy")
            for co in self.corunners:
                self._check_workload(co.workload, "multiprog.workload")
        m = self.machine
        if not isinstance(m.scale, int) or m.scale < 1:
            raise err(
                f"scale must be a positive integer, got {m.scale!r}",
                "machine.scale",
            )
        if self.seed is True or self.seed is False or not isinstance(self.seed, int):
            raise err(f"seed must be an integer, got {self.seed!r}", "seed")
        if self.trace.sample_every < 1:
            raise err("sample_every must be positive", "trace.sample_every")
        if self.checkpoint.every < 0:
            raise err("checkpoint.every must be non-negative", "checkpoint.every")
        # Compile the config now: geometry, fault-spec and kernel errors
        # surface at validation time with the scenario's source attached,
        # not deep inside a worker.
        try:
            self.to_config()
        except ScenarioError:
            raise
        except ValueError as exc:
            raise ScenarioError(str(exc), field="machine", source=self.source) from exc

    def _check_workload(self, name: str | None, fld: str) -> None:
        from repro.workloads.registry import workload_names

        known = workload_names(include_extra=True)
        if not name:
            raise ScenarioError(
                f"missing workload; valid workloads: {', '.join(known)}",
                field=fld,
                source=self.source,
            )
        if name not in known:
            raise ScenarioError(
                f"unknown workload {name!r}; valid workloads: {', '.join(known)}",
                field=fld,
                source=self.source,
            )

    def _check_policy(self, name: str | None, fld: str) -> None:
        from repro.sim.machine import POLICIES

        if not name:
            raise ScenarioError(
                f"missing policy; valid policies: {', '.join(POLICIES)}",
                field=fld,
                source=self.source,
            )
        if name not in POLICIES:
            raise ScenarioError(
                f"unknown policy {name!r}; valid policies: {', '.join(POLICIES)}",
                field=fld,
                source=self.source,
            )

    # --- compilation ----------------------------------------------------

    def to_config(self) -> SystemConfig:
        """Compile to a validated :class:`SystemConfig`.

        The one place scenario becomes machine description.  For the
        default geometry the replace sequence is byte-for-byte what the
        legacy Session/CLI/service paths did, so ``config_sha256`` of
        existing runs is unchanged; non-default meshes additionally pick
        up their calibrated latency table
        (:func:`repro.sim.latency.latency_for_mesh`).
        """
        m = self.machine
        try:
            cfg = scaled_config(1.0 / m.scale)
        except (ValueError, ZeroDivisionError) as exc:
            raise ScenarioError(
                str(exc), field="machine.scale", source=self.source
            ) from exc
        if not m.is_default_geometry:
            from repro.sim.latency import latency_for_mesh

            changes: dict[str, Any] = {
                "mesh_width": m.mesh_width,
                "mesh_height": m.mesh_height,
                "cluster_width": m.cluster_width,
                "cluster_height": m.cluster_height,
                "latency": latency_for_mesh(m.mesh_width, m.mesh_height),
            }
            if m.rrt_entries is not None:
                changes["rrt_entries"] = m.rrt_entries
            cfg = replace(cfg, **changes)
        if self.faults or self.strict or self.kernel != "auto":
            cfg = replace(
                cfg,
                fault_spec=self.faults,
                strict_invariants=self.strict,
                kernel=self.kernel,
            )
        try:
            cfg.validate()
        except ValueError as exc:
            raise ScenarioError(
                str(exc), field="machine", source=self.source
            ) from exc
        return cfg

    @classmethod
    def from_config(
        cls, cfg: SystemConfig, *, name: str = "adhoc", **fields: Any
    ) -> "Scenario | None":
        """Recover the scenario whose :meth:`to_config` reproduces ``cfg``
        exactly, or ``None`` when ``cfg`` is not scenario-expressible
        (hand-tuned cache sizes, custom latency tables, ...).

        This is how ``Session.run(**kwargs)`` stays a thin shim: a session
        holding a derivable config routes through the scenario layer; an
        arbitrary config keeps the direct path.
        """
        if cfg.capacity_scale <= 0:
            return None
        scale = round(1.0 / cfg.capacity_scale)
        if scale < 1:
            return None
        machine = MachineSpec(
            scale=scale,
            mesh_width=cfg.mesh_width,
            mesh_height=cfg.mesh_height,
            cluster_width=cfg.cluster_width,
            cluster_height=cfg.cluster_height,
            rrt_entries=None if cfg.rrt_entries == 64 else cfg.rrt_entries,
        )
        candidate = cls(
            name=name,
            machine=machine,
            faults=cfg.fault_spec,
            strict=cfg.strict_invariants,
            kernel=cfg.kernel,
            **fields,
        )
        try:
            if candidate.to_config() != cfg:
                return None
        except ValueError:
            return None
        return candidate

    # --- serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The canonical on-disk mapping (round-trips through
        :func:`parse_scenario`).  Defaults are omitted so the dict stays
        diff-friendly; ``source`` is transport metadata, not identity."""
        out: dict[str, Any] = {"scenario": SCHEMA_VERSION, "name": self.name}
        if self.description:
            out["description"] = self.description
        if self.kind == "run":
            out["workload"] = self.workload
            out["policy"] = self.policy
        elif self.kind == "sweep":
            out["sweep"] = {
                "workloads": list(self.workloads),
                "policies": list(self.policies),
            }
        else:
            out["policy"] = self.policy
            out["multiprog"] = [co.to_dict() for co in self.corunners]
        out["machine"] = self.machine.to_dict()
        if self.faults:
            out["faults"] = self.faults
        if self.strict:
            out["strict"] = True
        if self.kernel != "auto":
            out["kernel"] = self.kernel
        if self.seed:
            out["seed"] = self.seed
        if self.trace != TraceSpec():
            out["trace"] = self.trace.to_dict()
        if self.checkpoint != CheckpointSpec():
            out["checkpoint"] = self.checkpoint.to_dict()
        return out


_TOP_KEYS = {
    "scenario",
    "name",
    "description",
    "workload",
    "policy",
    "sweep",
    "multiprog",
    "machine",
    "faults",
    "strict",
    "kernel",
    "seed",
    "trace",
    "checkpoint",
}


def _require_mapping(raw: Any, what: str, source: str) -> dict[str, Any]:
    if not isinstance(raw, dict):
        raise ScenarioError(
            f"expected a mapping, got {type(raw).__name__}",
            field=what,
            source=source,
        )
    return raw


def _reject_unknown(raw: dict[str, Any], allowed: set[str], where: str,
                    source: str) -> None:
    unknown = sorted(set(raw) - allowed)
    if unknown:
        raise ScenarioError(
            f"unknown key(s) {', '.join(map(repr, unknown))}; "
            f"valid keys: {', '.join(sorted(allowed))}",
            field=f"{where}.{unknown[0]}" if where else unknown[0],
            source=source,
        )


def _parse_machine(raw: Any, source: str) -> MachineSpec:
    raw = _require_mapping(raw, "machine", source)
    _reject_unknown(
        raw, {"scale", "mesh", "cluster", "rrt_entries"}, "machine", source
    )
    mesh = (4, 4)
    cluster = (2, 2)
    if "mesh" in raw:
        mesh = _parse_geometry(raw["mesh"], "machine.mesh")
    if "cluster" in raw:
        cluster = _parse_geometry(raw["cluster"], "machine.cluster")
    scale = raw.get("scale", 64)
    rrt = raw.get("rrt_entries")
    if rrt is not None and (not isinstance(rrt, int) or rrt < 1):
        raise ScenarioError(
            f"rrt_entries must be a positive integer, got {rrt!r}",
            field="machine.rrt_entries",
            source=source,
        )
    return MachineSpec(
        scale=scale,
        mesh_width=mesh[0],
        mesh_height=mesh[1],
        cluster_width=cluster[0],
        cluster_height=cluster[1],
        rrt_entries=rrt,
    )


def _parse_trace(raw: Any, source: str) -> TraceSpec:
    if isinstance(raw, bool):
        return TraceSpec(enabled=raw)
    raw = _require_mapping(raw, "trace", source)
    _reject_unknown(raw, {"enabled", "sample_every", "out"}, "trace", source)
    return TraceSpec(
        enabled=bool(raw.get("enabled", True)),
        sample_every=int(raw.get("sample_every", 64)),
        out=raw.get("out"),
    )


def _parse_checkpoint(raw: Any, source: str) -> CheckpointSpec:
    raw = _require_mapping(raw, "checkpoint", source)
    _reject_unknown(raw, {"every", "deadline"}, "checkpoint", source)
    deadline = raw.get("deadline")
    return CheckpointSpec(
        every=int(raw.get("every", 0)),
        deadline=float(deadline) if deadline is not None else None,
    )


def parse_scenario(raw: Any, *, source: str = "") -> Scenario:
    """Parse and validate one scenario mapping.

    ``source`` (a filename or label) is attached to every error so the
    message names exactly which file and field is wrong.
    """
    try:
        return _parse_scenario(raw, source)
    except ScenarioError as exc:
        wrapped = exc.with_source(source)
        if wrapped is exc:
            raise
        raise wrapped from None


def _parse_scenario(raw: Any, source: str) -> Scenario:
    raw = _require_mapping(raw, "", source)
    _reject_unknown(raw, _TOP_KEYS, "", source)
    version = raw.get("scenario", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ScenarioError(
            f"unsupported schema version {version!r} (this build reads "
            f"version {SCHEMA_VERSION})",
            field="scenario",
            source=source,
        )
    name = raw.get("name", "")
    if not isinstance(name, str) or not name:
        raise ScenarioError(
            "scenario needs a non-empty string 'name'", field="name",
            source=source,
        )
    workloads: tuple[str, ...] = ()
    policies: tuple[str, ...] = ()
    corunners: tuple[CoRunner, ...] = ()
    if "sweep" in raw:
        sweep = _require_mapping(raw["sweep"], "sweep", source)
        _reject_unknown(sweep, {"workloads", "policies"}, "sweep", source)
        wl_list = sweep.get("workloads")
        pol_list = sweep.get("policies")
        if not isinstance(wl_list, list) or not isinstance(pol_list, list):
            raise ScenarioError(
                "sweep needs 'workloads' and 'policies' lists",
                field="sweep",
                source=source,
            )
        workloads = tuple(str(w) for w in wl_list)
        policies = tuple(str(p) for p in pol_list)
    if "multiprog" in raw:
        progs = raw["multiprog"]
        if not isinstance(progs, list):
            raise ScenarioError(
                "multiprog must be a list of co-runners",
                field="multiprog",
                source=source,
            )
        parsed = []
        for i, entry in enumerate(progs):
            if isinstance(entry, str):
                parsed.append(CoRunner(entry))
                continue
            entry = _require_mapping(entry, f"multiprog[{i}]", source)
            _reject_unknown(
                entry, {"workload", "seed"}, f"multiprog[{i}]", source
            )
            if "workload" not in entry:
                raise ScenarioError(
                    "co-runner needs a 'workload'",
                    field=f"multiprog[{i}].workload",
                    source=source,
                )
            seed = entry.get("seed")
            parsed.append(
                CoRunner(str(entry["workload"]),
                         int(seed) if seed is not None else None)
            )
        corunners = tuple(parsed)
    scenario = Scenario(
        name=name,
        description=str(raw.get("description", "")),
        workload=raw.get("workload"),
        policy=raw.get("policy"),
        workloads=workloads,
        policies=policies,
        corunners=corunners,
        machine=_parse_machine(raw.get("machine", {}), source),
        faults=str(raw.get("faults", "")),
        strict=bool(raw.get("strict", False)),
        kernel=str(raw.get("kernel", "auto")),
        seed=raw.get("seed", 0),
        trace=_parse_trace(raw.get("trace", {"enabled": False}), source)
        if "trace" in raw
        else TraceSpec(),
        checkpoint=_parse_checkpoint(raw["checkpoint"], source)
        if "checkpoint" in raw
        else CheckpointSpec(),
        source=source,
    )
    scenario.validate()
    return scenario


def scenario_from_legacy_body(raw: dict[str, Any], *, source: str = "") -> Scenario:
    """Translate a legacy flat service body (``workload``/``policy``/
    ``scale``/``faults``/...) into a :class:`Scenario`.

    The shim behind the service's deprecation path: old JSON submissions
    keep working, compiled through the same :meth:`Scenario.to_config`,
    with ``request_key``/``config_sha256`` unchanged.
    """
    kind = raw.get("kind", "run")
    machine = MachineSpec(scale=int(raw.get("scale", 64)))
    common: dict[str, Any] = dict(
        machine=machine,
        faults=str(raw.get("faults", "")),
        strict=bool(raw.get("strict", False)),
        kernel=str(raw.get("kernel", "auto")),
        seed=raw.get("seed", 0),
        source=source,
    )
    if kind == "run":
        scenario = Scenario(
            name=f"{raw.get('workload', '?')}-{raw.get('policy', '?')}",
            workload=raw.get("workload"),
            policy=raw.get("policy"),
            **common,
        )
    elif kind == "sweep":
        workloads = raw.get("workloads") or ()
        policies = raw.get("policies") or ()
        scenario = Scenario(
            name="legacy-sweep",
            workloads=tuple(str(w) for w in workloads),
            policies=tuple(str(p) for p in policies),
            **common,
        )
    else:
        raise ScenarioError(
            f"unknown job kind {kind!r} (expected 'run' or 'sweep')",
            field="kind",
            source=source,
        )
    scenario.validate()
    return scenario
