"""Executing multiprogrammed scenarios.

Every workload generator allocates from the same virtual base
(:class:`~repro.mem.allocator.VirtualAllocator` starts at 0x1000), so
co-scheduling two benchmarks naively violates
:func:`~repro.runtime.multiprog.merge_programs`'s disjointness contract.
:func:`rebase_program` gives each process its own virtual-address slice
(``pid * PID_ADDRESS_STRIDE`` — separate OS processes do not share
physical memory), and :func:`run_multiprog` wires the merged program
through :class:`~repro.runtime.multiprog.MultiProcessRuntime` exactly the
way :func:`repro.api._run_one` wires a single-process run, warmup
handling included.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.mem.region import Region
from repro.runtime.task import AccessChunk, Dependency, Program
from repro.scenario.model import PID_ADDRESS_STRIDE, Scenario, ScenarioError

__all__ = ["rebase_program", "run_multiprog", "PID_ADDRESS_STRIDE"]


def rebase_program(program: Program, offset: int) -> Program:
    """Shift every region of ``program`` by ``offset`` bytes, in place.

    Regions are frozen, so each distinct ``(start, size, name)`` value is
    rebuilt exactly once and shared by every dependency and access chunk
    that referenced it — value-identical regions stay value-identical
    after the move, which is what the RRT's region-keyed bookkeeping
    requires.  Returns ``program`` for chaining.
    """
    if offset < 0:
        raise ValueError("rebase offset must be non-negative")
    if offset == 0:
        return program
    moved: dict[Region, Region] = {}

    def move(region: Region) -> Region:
        out = moved.get(region)
        if out is None:
            out = Region(region.start + offset, region.size, region.name)
            moved[region] = out
        return out

    for task in program.tasks:
        task.deps = tuple(
            Dependency(move(d.region), d.mode) for d in task.deps
        )
        if task.accesses:
            task.accesses = tuple(
                AccessChunk(move(c.region), c.write, c.passes, c.rmw)
                for c in task.accesses
            )
    return program


def run_multiprog(scenario: Scenario, cfg: SystemConfig | None = None, *,
                  observer=None):
    """Run a ``kind == "multiprog"`` scenario; returns the
    :class:`~repro.experiments.runner.ExperimentResult`.

    Each co-runner builds its workload at its own seed, is rebased into a
    disjoint address slice and merged round-robin; TD-NUCA policies run
    per-process runtimes over shared PID-tagged RRTs
    (:class:`~repro.runtime.multiprog.MultiProcessRuntime`), the baseline
    policies need no per-process state.  Statistics follow the paper's
    measurement window: warmup phases run, then all counters reset.
    """
    from repro.experiments.runner import ExperimentResult, build_runtime
    from repro.runtime import Executor, FifoScheduler
    from repro.runtime.multiprog import MultiProcessRuntime, merge_programs
    from repro.runtime.task import Program as _Program
    from repro.sim.machine import build_machine
    from repro.workloads.registry import get_workload

    if scenario.kind != "multiprog":
        raise ScenarioError(
            f"run_multiprog needs a multiprog scenario, got kind "
            f"{scenario.kind!r}",
            field="multiprog",
            source=scenario.source,
        )
    policy = scenario.policy
    if policy == "tdnuca-noisa":
        raise ScenarioError(
            "tdnuca-noisa has no PID-tagged RRT hardware to share; "
            "multiprog supports tdnuca, tdnuca-bypass-only and the "
            "baseline policies",
            field="policy",
            source=scenario.source,
        )
    cfg = cfg if cfg is not None else scenario.to_config()
    cfg.validate()

    programs: dict[int, Program] = {}
    labels: dict[int, str] = {}
    for i, co in enumerate(scenario.corunners):
        pid = i + 1
        wl = get_workload(co.workload)
        seed = co.seed if co.seed is not None else scenario.seed
        program = wl.build(cfg, seed)
        programs[pid] = rebase_program(program, pid * PID_ADDRESS_STRIDE)
        labels[pid] = wl.name
    merged = merge_programs(programs, name=scenario.name)

    machine = build_machine(cfg, policy, seed=scenario.seed)
    if observer is not None:
        observer.attach(machine)
    if policy in ("tdnuca", "tdnuca-bypass-only"):
        extension = MultiProcessRuntime(
            machine.mesh,
            machine.isa,
            pids=sorted(programs),
            bypass_only=policy == "tdnuca-bypass-only",
        )
    else:
        extension = build_runtime(machine, policy)
    # FIFO dispatch follows the merged round-robin creation order, so the
    # processes genuinely interleave on the cores.
    executor = Executor(
        machine, scheduler=FifoScheduler(), extension=extension,
        observer=observer,
    )

    if merged.warmup_phases:
        warmup = _Program(merged.name, merged.phases[: merged.warmup_phases])
        main = _Program(merged.name, merged.phases[merged.warmup_phases:])
        executor.run(warmup)
        machine.reset_stats()
        if isinstance(extension, MultiProcessRuntime):
            extension.reset_stats()
        exec_stats = executor.run(main)
    else:
        exec_stats = executor.run(merged)

    result = ExperimentResult(
        workload="+".join(labels[pid] for pid in sorted(labels)),
        policy=policy,
        machine=machine.collect_stats(),
        execution=exec_stats,
    )
    if machine.census is not None:
        result.rnuca_census = machine.census.rnuca_census()
        result.unique_blocks = machine.census.unique_blocks
    if isinstance(extension, MultiProcessRuntime):
        result.isa = machine.isa.stats if machine.isa is not None else None
        result.extra["context_switches"] = extension.context_switches
        result.extra["per_pid"] = {
            pid: {
                "workload": labels[pid],
                "decisions": rt.stats.decisions,
                "bypass_decisions": rt.stats.bypass_decisions,
                "replicate_decisions": rt.stats.replicate_decisions,
                "local_decisions": rt.stats.local_decisions,
            }
            for pid, rt in sorted(extension.runtimes.items())
        }
    return result
