"""Simulation-as-a-service: a stdlib-only asyncio job server.

The service fronts :class:`repro.api.Session` with an HTTP API designed
around failure: every job runs under a wall-clock budget with bounded
retries (exponential backoff + jitter), a saturated queue sheds load with
``503 Retry-After`` instead of piling up, long jobs are preempted at task
boundaries through the :mod:`repro.snapshot` machinery and requeued, and
identical requests are answered from a content-addressed result cache
keyed on ``config_sha256`` — never simulated twice.  Every response is a
typed envelope carrying the package version; no failure path leaks a
stack trace.

Layout:

* :mod:`repro.service.envelope` — the response envelope and error taxonomy.
* :mod:`repro.service.cache`    — CRC-validated content-addressed results.
* :mod:`repro.service.queue`    — bounded queue, retries, breaker, eviction,
  poison quarantine.
* :mod:`repro.service.workers`  — the crash-isolated worker pool: one spawn
  subprocess per attempt, heartbeat leases, memory rlimits.
* :mod:`repro.service.server`   — the asyncio HTTP front end.
* :mod:`repro.service.client`   — the retrying client behind ``repro submit``.

Failure *injection* for all of it is the deterministic failpoint registry
(:mod:`repro.failpoints`), exercised by ``pytest -m chaos`` and the CI
service smoke.

See DESIGN.md §11 for the failure-mode inventory and
``scripts/service_smoke.py`` for the kill-9/cache-hit chaos gate run in CI.
"""

from repro.service.cache import ResultCache, request_key
from repro.service.client import ServiceClient
from repro.service.envelope import ServiceError, error_envelope, ok_envelope
from repro.service.queue import JobQueue, RunSpec, SweepSpec
from repro.service.server import ServiceServer
from repro.service.workers import WorkerDied, WorkerPool

__all__ = [
    "JobQueue",
    "ResultCache",
    "RunSpec",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "SweepSpec",
    "WorkerDied",
    "WorkerPool",
    "error_envelope",
    "ok_envelope",
    "request_key",
]
