"""Content-addressed result cache keyed on the request's config fingerprint.

A cache entry maps one fully-resolved simulation request — the
``config_sha256`` the snapshot layer already computes (covering machine
geometry, fault schedule, and invariant mode) plus workload, policy, and
seed — to the canonical flattened result dict.  Because simulation is
deterministic for a given key, identical requests across users are never
simulated twice: the first run pays, everyone after reads.

Entry files use the snapshot framing (magic, version, CRC32 header over a
canonical-JSON payload) and are written through
:func:`repro.ioutils.atomic_write`, so ``kill -9`` mid-store leaves either
no entry or a complete one.  Reads CRC-validate; a corrupt entry (bit
rot, truncated copy) is quarantined to ``<name>.corrupt`` with a
structured warning and reported as a miss, so the caller recomputes
instead of serving garbage.

Fleet tier
----------
When constructed with ``fleet_dir`` (fleet mode), the cache is two-tier:
the private per-host directory in front of a shared directory all hosts
publish into.  Reads fall back to the shared tier (promoting valid
entries locally); writes land locally and are then *published* to the
shared tier through :func:`repro.ioutils.atomic_publish` — an exclusive
link of a complete, fsynced file — so of N hosts racing the same key
exactly one entry appears and it is never torn.  A publish is preceded
by the caller's fence check (``fence=...``): a stale owner whose claim
was reclaimed is counted in ``fleet_fenced`` and its bytes never reach
the shared tier.  Losing the exclusive-link race is *not* an error:
simulation is deterministic, so the winner's bytes are the loser's bytes.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import threading
import warnings
import zlib
from pathlib import Path
from typing import Any, Callable

from repro import failpoints
from repro.ioutils import atomic_publish, atomic_write
from repro.snapshot import config_sha256

__all__ = ["ResultCache", "request_key", "CACHE_MAGIC", "CACHE_VERSION"]

#: file magic for a cached result (distinct from the RPROSNAP snapshots).
CACHE_MAGIC = b"RPROCRES"

#: bump on any incompatible entry layout change; old versions are treated
#: as misses (and quarantined) rather than loaded wrongly.
CACHE_VERSION = 1

_HEADER = struct.Struct("<II")  # version, crc32(payload)


def request_key(cfg, workload: str, policy: str, seed: int) -> str:
    """The content address of one simulation request.

    Built from ``config_sha256(cfg)`` — which already folds in capacities,
    latencies, the fault schedule, and strict-invariant mode — plus the
    (workload, policy, seed) cell, so two requests share a key exactly
    when their simulations are guaranteed byte-identical.
    """
    blob = f"{config_sha256(cfg)}|{workload}|{policy}|{seed}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """CRC-validated, atomically-written result store under one directory.

    Thread-safe: the service's worker threads store entries while the
    asyncio loop reads them.  Counters (:attr:`hits`, :attr:`misses`,
    :attr:`corrupt`, :attr:`stores`) feed the health endpoint and the CI
    smoke's "zero new simulation work on a duplicate submit" assertion.
    """

    def __init__(
        self, root: str | Path, *, fleet_dir: str | Path | None = None
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fleet_dir = Path(fleet_dir) if fleet_dir is not None else None
        if self.fleet_dir is not None:
            self.fleet_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.stores = 0
        # fleet-tier counters (surfaced in stats() only in fleet mode)
        self.fleet_hits = 0
        self.fleet_stores = 0
        self.fleet_fenced = 0
        self.fleet_corrupt = 0
        self._lock = threading.Lock()

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.rcache"

    def fleet_path_for(self, key: str) -> Path:
        if self.fleet_dir is None:
            raise ValueError("cache has no fleet tier")
        return self.fleet_dir / f"{key}.rcache"

    # ------------------------------------------------------------------

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached result for ``key``, or ``None`` on miss.

        A corrupt entry is renamed to ``<name>.corrupt`` (kept for
        forensics), counted, warned about, and reported as a miss — the
        degradation path is always "recompute", never "serve garbage".
        """
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            result = self._fleet_get(key)
            if result is None:
                with self._lock:
                    self.misses += 1
            return result
        try:
            entry = self._decode(path, raw)
        except ValueError as exc:
            self._quarantine(path, exc)
            return self._fleet_get(key)
        if entry.get("key") != key:
            # Entry content does not match its address (renamed file?):
            # treat exactly like corruption.
            self._quarantine(path, ValueError(f"{path}: key mismatch"))
            return self._fleet_get(key)
        with self._lock:
            self.hits += 1
        return entry["result"]

    def _fleet_get(self, key: str) -> dict[str, Any] | None:
        """Shared-tier read: validate, count, and promote to the local
        tier (byte-for-byte, so the promoted copy carries the same CRC)."""
        if self.fleet_dir is None:
            return None
        path = self.fleet_path_for(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        try:
            entry = self._decode(path, raw)
            if entry.get("key") != key:
                raise ValueError(f"{path}: key mismatch")
        except ValueError as exc:
            # A torn/corrupt shared entry is quarantined *in the shared
            # tier* so every host stops tripping over it; the publisher
            # slot reopens and the next owner republishes clean bytes.
            quarantine = path.with_name(path.name + ".corrupt")
            try:
                os.replace(path, quarantine)
                where = f"quarantined to {quarantine}"
            except OSError:
                where = "could not be quarantined"
            with self._lock:
                self.fleet_corrupt += 1
            warnings.warn(
                f"ignoring corrupt fleet cache entry ({exc}); {where}; "
                f"recomputing",
                stacklevel=3,
            )
            return None
        with self._lock:
            self.fleet_hits += 1
        try:
            with atomic_write(self.path_for(key), "wb") as fh:
                fh.write(raw)
        except OSError:
            pass  # promotion is an optimisation, never load-bearing
        return entry["result"]

    def put(self, key: str, result: dict[str, Any],
            meta: dict[str, Any] | None = None, *,
            fence: Callable[[], bool] | None = None) -> Path:
        """Store ``result`` under ``key`` atomically; returns the path.

        In fleet mode the entry is also published to the shared tier —
        but only if ``fence`` (when given) still approves: a stale owner
        whose claim was reclaimed is counted in :attr:`fleet_fenced` and
        its bytes never leave the host.  Losing the exclusive-publish
        race to a peer is silent by design (deterministic bytes).
        """
        entry = {
            "key": key,
            "meta": dict(meta or {}),
            "result": result,
        }
        payload = json.dumps(entry, sort_keys=True).encode("utf-8")
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        # Chaos site: mangling the payload *after* the CRC models a torn
        # write — the next read must quarantine the entry, not serve it.
        payload = failpoints.mangle("cache.write.torn", payload, key=key)
        path = self.path_for(key)
        with atomic_write(path, "wb") as fh:
            fh.write(CACHE_MAGIC)
            fh.write(_HEADER.pack(CACHE_VERSION, crc))
            fh.write(payload)
        with self._lock:
            self.stores += 1
        if self.fleet_dir is not None:
            self._fleet_publish(key, entry, fence)
        return path

    def _fleet_publish(
        self,
        key: str,
        entry: dict[str, Any],
        fence: Callable[[], bool] | None,
    ) -> None:
        payload = json.dumps(entry, sort_keys=True).encode("utf-8")
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        # Chaos site: a torn *shared* publish.  CRC is computed first, so
        # the mangled entry is detectable by every reader and quarantined
        # fleet-wide rather than served.
        payload = failpoints.mangle("fleet.publish.torn", payload, key=key)
        # The fence check sits as close to the publish as possible: after
        # it passes, the only remaining race is against a *legitimate*
        # owner publishing the same deterministic bytes, and the
        # exclusive link lets exactly one of those land.
        if fence is not None and not fence():
            with self._lock:
                self.fleet_fenced += 1
            return
        blob = CACHE_MAGIC + _HEADER.pack(CACHE_VERSION, crc) + payload
        if atomic_publish(self.fleet_path_for(key), blob):
            with self._lock:
                self.fleet_stores += 1

    def __contains__(self, key: str) -> bool:
        if self.path_for(key).is_file():
            return True
        return (
            self.fleet_dir is not None
            and self.fleet_path_for(key).is_file()
        )

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.rcache"))

    def stats(self) -> dict[str, int]:
        with self._lock:
            out = {
                "hits": self.hits,
                "misses": self.misses,
                "corrupt": self.corrupt,
                "stores": self.stores,
                "entries": len(self),
            }
            if self.fleet_dir is not None:
                out["fleet_hits"] = self.fleet_hits
                out["fleet_stores"] = self.fleet_stores
                out["fleet_fenced"] = self.fleet_fenced
                out["fleet_corrupt"] = self.fleet_corrupt
                out["fleet_entries"] = sum(
                    1 for _ in self.fleet_dir.glob("*.rcache")
                )
        return out

    # ------------------------------------------------------------------

    @staticmethod
    def _decode(path: Path, raw: bytes) -> dict[str, Any]:
        header_len = len(CACHE_MAGIC) + _HEADER.size
        if len(raw) < header_len:
            raise ValueError(
                f"{path}: truncated cache entry "
                f"({len(raw)} bytes, header needs {header_len})"
            )
        if raw[: len(CACHE_MAGIC)] != CACHE_MAGIC:
            raise ValueError(
                f"{path}: not a cache entry (magic "
                f"{raw[:len(CACHE_MAGIC)]!r}, expected {CACHE_MAGIC!r})"
            )
        version, crc = _HEADER.unpack_from(raw, len(CACHE_MAGIC))
        if version != CACHE_VERSION:
            raise ValueError(
                f"{path}: unsupported cache entry version {version} "
                f"(this build reads version {CACHE_VERSION})"
            )
        payload = raw[header_len:]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise ValueError(f"{path}: checksum mismatch (corrupt payload)")
        try:
            entry = json.loads(payload)
        except ValueError as exc:
            raise ValueError(f"{path}: unreadable payload: {exc}") from exc
        if not isinstance(entry, dict) or "result" not in entry:
            raise ValueError(f"{path}: payload is not a cache entry")
        return entry

    def _quarantine(self, path: Path, exc: Exception) -> None:
        quarantine = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantine)
            where = f"quarantined to {quarantine}"
        except OSError:
            where = "could not be quarantined"
        with self._lock:
            self.corrupt += 1
            self.misses += 1
        warnings.warn(
            f"ignoring corrupt cache entry ({exc}); {where}; recomputing",
            stacklevel=3,
        )
