"""A small retrying HTTP client for the simulation service.

Used by the ``repro submit`` CLI and the smoke/chaos tests.  Connection
failures — including connection-refused from a host that is restarting
or dead — and retryable envelopes (``saturated``/``draining``/
``timeout``) are retried under a bounded attempt budget with
**decorrelated jitter** (each delay is drawn from
``[backoff, 3 * previous_delay]``, capped), which spreads a thundering
herd of retrying clients better than correlated exponential backoff;
the server's ``Retry-After`` hint is honoured when one is given.  A
non-retryable error envelope is raised as the corresponding typed
:class:`~repro.service.envelope.ServiceError` — the caller never parses
HTTP status codes.

Fleet failover: extra ``failover=[(host, port), ...]`` targets are
rotated to whenever the current target fails at the connection level, so
a killed fleet host degrades into a retry against its peers instead of a
hard error.  The shared result store makes the failed-over *submission*
cheap (a duplicate submit is a store hit), but job *records* live on the
host that accepted them — a ``job_id`` minted by a dead host is gone
with it; resubmit and let the store answer.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Iterable, Iterator

from repro.service.envelope import ServiceError

__all__ = ["ServiceClient"]

#: upper bound for one retry sleep (seconds).
MAX_RETRY_DELAY = 30.0


class ServiceClient:
    """Talk to a :class:`~repro.service.server.ServiceServer` (or several)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        *,
        retries: int = 4,
        backoff: float = 0.2,
        timeout: float = 30.0,
        jitter_seed: int | None = None,
        failover: Iterable[tuple[str, int]] = (),
    ) -> None:
        self.retries = retries
        self.backoff = backoff
        self.timeout = timeout
        self._rng = random.Random(jitter_seed)
        self._targets: list[tuple[str, int]] = [(host, port), *failover]
        self._target_idx = 0

    @property
    def host(self) -> str:
        return self._targets[self._target_idx][0]

    @property
    def port(self) -> int:
        return self._targets[self._target_idx][1]

    def _rotate_target(self) -> None:
        """Point at the next failover target (no-op with a single one)."""
        self._target_idx = (self._target_idx + 1) % len(self._targets)

    def _next_delay(self, prev: float | None) -> float:
        """Decorrelated jitter: uniform over ``[backoff, 3 * prev]``.

        Successive delays random-walk upward (bounded by
        :data:`MAX_RETRY_DELAY`) while staying uncorrelated between
        clients — N clients refused by the same restarting host do not
        come back as one synchronized wave.
        """
        if self.backoff <= 0:
            return 0.0
        high = max(self.backoff, 3.0 * (prev if prev else self.backoff))
        return min(MAX_RETRY_DELAY, self._rng.uniform(self.backoff, high))

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _once(
        self, method: str, path: str, body: dict[str, Any] | None
    ) -> dict[str, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
        finally:
            conn.close()
        try:
            envelope = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(
                "internal",
                f"server returned non-JSON response (status {resp.status})",
            ) from exc
        if envelope.get("ok"):
            return envelope
        raise ServiceError.from_dict(envelope.get("error") or {})

    def request(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        """One API call with retries; returns the whole ``ok`` envelope.

        Connection-level failures (refused, reset, timeout) are
        retryable, not terminal: the target rotates to the next failover
        host (if any) and the attempt repeats after a decorrelated-jitter
        delay, up to the bounded attempt budget.
        """
        attempt = 0
        prev_delay: float | None = None
        while True:
            attempt += 1
            try:
                return self._once(method, path, body)
            except ServiceError as err:
                if not err.retryable or attempt > self.retries:
                    raise
                delay = err.retry_after
            except (ConnectionError, OSError, http.client.HTTPException) as exc:
                if attempt > self.retries:
                    raise ServiceError(
                        "internal",
                        f"cannot reach service at {self.host}:{self.port} "
                        f"after {attempt} attempts: {exc}",
                    ) from exc
                self._rotate_target()
                delay = None
            if delay is None:
                delay = self._next_delay(prev_delay)
            prev_delay = delay
            time.sleep(delay)

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self.request("GET", "/v1/health")["data"]

    def submit_run(self, **spec: Any) -> dict[str, Any]:
        """Submit one run; returns the job record."""
        return self.request("POST", "/v1/run", spec)["data"]["job"]

    def submit_sweep(self, **spec: Any) -> dict[str, Any]:
        """Submit a sweep; returns the job record."""
        return self.request("POST", "/v1/sweep", spec)["data"]["job"]

    def submit_scenario(self, scenario) -> dict[str, Any]:
        """Submit a :class:`~repro.scenario.Scenario` (by value or
        curated-library name); returns the job record.

        The canonical submission path: the body is ``{"scenario": ...}``
        and the endpoint follows the scenario's kind.  Multiprog
        scenarios are rejected by the server (run those locally via
        ``repro.run_scenario``).
        """
        if isinstance(scenario, str):
            body: Any = scenario
            from repro.scenario import load_scenario

            kind = load_scenario(scenario).kind
        else:
            body = scenario.to_dict()
            kind = scenario.kind
        endpoint = "/v1/sweep" if kind == "sweep" else "/v1/run"
        return self.request(
            "POST", endpoint, {"scenario": body}
        )["data"]["job"]

    def job(self, job_id: str) -> dict[str, Any]:
        return self.request("GET", f"/v1/jobs/{job_id}")["data"]["job"]

    def result(self, job_id: str) -> dict[str, Any]:
        """The finished job's envelope data: ``{"job": ..., "result": ...}``."""
        return self.request("GET", f"/v1/jobs/{job_id}/result")["data"]

    def wait(
        self, job_id: str, *, timeout: float = 300.0, poll: float = 0.1
    ) -> dict[str, Any]:
        """Poll until the job settles; returns the final job record.

        A ``failed`` job raises its stored typed error; ``preempted``
        raises a retryable ``draining`` error (resubmit to a live server —
        the cache and spool make the retry cheap).
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            state = job["state"]
            if state == "done":
                return job
            if state == "failed":
                raise ServiceError.from_dict(job.get("error") or {})
            if state == "preempted":
                raise ServiceError(
                    "draining",
                    f"job {job_id} was preempted by server shutdown; "
                    "resubmit to resume from its checkpoint",
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    "timeout",
                    f"job {job_id} still {state!r} after {timeout}s of waiting",
                )
            time.sleep(poll)

    def iter_events(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Yield the job's NDJSON progress events (hello envelope first).

        *Establishing* the stream retries connection failures under the
        same policy as :meth:`request`; once streaming, a dropped
        connection surfaces to the caller (events are progress telemetry,
        and replaying them from another host would duplicate history).
        """
        attempt = 0
        prev_delay: float | None = None
        while True:
            attempt += 1
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                conn.request("GET", f"/v1/jobs/{job_id}/events")
                resp = conn.getresponse()
            except (ConnectionError, OSError, http.client.HTTPException) as exc:
                conn.close()
                if attempt > self.retries:
                    raise ServiceError(
                        "internal",
                        f"cannot reach service at {self.host}:{self.port} "
                        f"after {attempt} attempts: {exc}",
                    ) from exc
                self._rotate_target()
                delay = self._next_delay(prev_delay)
                prev_delay = delay
                time.sleep(delay)
                continue
            break
        try:
            if resp.status != 200:
                raw = resp.read()
                try:
                    envelope = json.loads(raw)
                except json.JSONDecodeError:
                    envelope = {}
                raise ServiceError.from_dict(envelope.get("error") or {})
            for raw_line in resp:
                raw_line = raw_line.strip()
                if raw_line:
                    yield json.loads(raw_line)
        finally:
            conn.close()
