"""A small retrying HTTP client for the simulation service.

Used by the ``repro submit`` CLI and the smoke/chaos tests.  Connection
failures and retryable envelopes (``saturated``/``draining``/``timeout``)
are retried with the same capped exponential backoff + full jitter the
sweep harness uses (:func:`repro.experiments.harness.retry_delay`),
honouring the server's ``Retry-After`` hint when one is given.  A
non-retryable error envelope is raised as the corresponding typed
:class:`~repro.service.envelope.ServiceError` — the caller never parses
HTTP status codes.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Iterator

from repro.experiments.harness import retry_delay
from repro.service.envelope import ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talk to a :class:`~repro.service.server.ServiceServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        *,
        retries: int = 4,
        backoff: float = 0.2,
        timeout: float = 30.0,
        jitter_seed: int | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.retries = retries
        self.backoff = backoff
        self.timeout = timeout
        self._rng = random.Random(jitter_seed)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _once(
        self, method: str, path: str, body: dict[str, Any] | None
    ) -> dict[str, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
        finally:
            conn.close()
        try:
            envelope = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(
                "internal",
                f"server returned non-JSON response (status {resp.status})",
            ) from exc
        if envelope.get("ok"):
            return envelope
        raise ServiceError.from_dict(envelope.get("error") or {})

    def request(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        """One API call with retries; returns the whole ``ok`` envelope."""
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._once(method, path, body)
            except ServiceError as err:
                if not err.retryable or attempt > self.retries:
                    raise
                delay = err.retry_after
            except (ConnectionError, OSError, http.client.HTTPException) as exc:
                if attempt > self.retries:
                    raise ServiceError(
                        "internal",
                        f"cannot reach service at {self.host}:{self.port} "
                        f"after {attempt} attempts: {exc}",
                    ) from exc
                delay = None
            if delay is None:
                delay = retry_delay(attempt, self.backoff, rng=self._rng)
            time.sleep(delay)

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self.request("GET", "/v1/health")["data"]

    def submit_run(self, **spec: Any) -> dict[str, Any]:
        """Submit one run; returns the job record."""
        return self.request("POST", "/v1/run", spec)["data"]["job"]

    def submit_sweep(self, **spec: Any) -> dict[str, Any]:
        """Submit a sweep; returns the job record."""
        return self.request("POST", "/v1/sweep", spec)["data"]["job"]

    def submit_scenario(self, scenario) -> dict[str, Any]:
        """Submit a :class:`~repro.scenario.Scenario` (by value or
        curated-library name); returns the job record.

        The canonical submission path: the body is ``{"scenario": ...}``
        and the endpoint follows the scenario's kind.  Multiprog
        scenarios are rejected by the server (run those locally via
        ``repro.run_scenario``).
        """
        if isinstance(scenario, str):
            body: Any = scenario
            from repro.scenario import load_scenario

            kind = load_scenario(scenario).kind
        else:
            body = scenario.to_dict()
            kind = scenario.kind
        endpoint = "/v1/sweep" if kind == "sweep" else "/v1/run"
        return self.request(
            "POST", endpoint, {"scenario": body}
        )["data"]["job"]

    def job(self, job_id: str) -> dict[str, Any]:
        return self.request("GET", f"/v1/jobs/{job_id}")["data"]["job"]

    def result(self, job_id: str) -> dict[str, Any]:
        """The finished job's envelope data: ``{"job": ..., "result": ...}``."""
        return self.request("GET", f"/v1/jobs/{job_id}/result")["data"]

    def wait(
        self, job_id: str, *, timeout: float = 300.0, poll: float = 0.1
    ) -> dict[str, Any]:
        """Poll until the job settles; returns the final job record.

        A ``failed`` job raises its stored typed error; ``preempted``
        raises a retryable ``draining`` error (resubmit to a live server —
        the cache and spool make the retry cheap).
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            state = job["state"]
            if state == "done":
                return job
            if state == "failed":
                raise ServiceError.from_dict(job.get("error") or {})
            if state == "preempted":
                raise ServiceError(
                    "draining",
                    f"job {job_id} was preempted by server shutdown; "
                    "resubmit to resume from its checkpoint",
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    "timeout",
                    f"job {job_id} still {state!r} after {timeout}s of waiting",
                )
            time.sleep(poll)

    def iter_events(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Yield the job's NDJSON progress events (hello envelope first)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            resp = conn.getresponse()
            if resp.status != 200:
                raw = resp.read()
                try:
                    envelope = json.loads(raw)
                except json.JSONDecodeError:
                    envelope = {}
                raise ServiceError.from_dict(envelope.get("error") or {})
            for raw_line in resp:
                raw_line = raw_line.strip()
                if raw_line:
                    yield json.loads(raw_line)
        finally:
            conn.close()
