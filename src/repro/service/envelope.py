"""Typed response envelopes and the service error taxonomy.

Every HTTP response body the service produces — success or failure — is
one envelope::

    {"ok": true,  "version": "1.3.0", "data":  {...}}
    {"ok": false, "version": "1.3.0", "error": {"type": ..., "message": ...,
                                                "retryable": ...}}

``version`` is the single package version from ``repro.__version__`` so a
client can detect a mid-deploy skew from any response.  Failures carry a
machine-readable ``type`` from the closed taxonomy below instead of a
stack trace; ``retryable`` tells the client whether backing off and
resubmitting can possibly help (the retrying client honours it).
"""

from __future__ import annotations

from typing import Any

import repro

__all__ = [
    "ERROR_TYPES",
    "ServiceError",
    "ok_envelope",
    "error_envelope",
]

#: the closed error taxonomy: type -> (HTTP status, retryable).
ERROR_TYPES: dict[str, tuple[int, bool]] = {
    "invalid-request": (400, False),   # malformed body, unknown workload...
    "not-found": (404, False),         # unknown job id or route
    "method-not-allowed": (405, False),
    "saturated": (503, True),          # breaker open: back off, retry later
    "draining": (503, True),           # server is shutting down gracefully
    "timeout": (504, True),            # the job exceeded its wall budget
    "job-failed": (500, False),        # simulation raised a permanent error
    "poisoned": (500, False),          # job quarantined: kept killing workers
    "internal": (500, True),           # unexpected server-side failure
}


class ServiceError(Exception):
    """A failure with a typed envelope representation.

    Raised inside the server (handlers turn it into the matching HTTP
    status) and re-raised by the client when an error envelope comes back.
    """

    def __init__(
        self,
        type_: str,
        message: str,
        *,
        retry_after: float | None = None,
    ) -> None:
        if type_ not in ERROR_TYPES:
            raise ValueError(f"unknown service error type {type_!r}")
        super().__init__(message)
        self.type = type_
        self.message = message
        self.status, self.retryable = ERROR_TYPES[type_]
        #: seconds the client should wait before retrying (503 responses
        #: surface it as a ``Retry-After`` header too).
        self.retry_after = retry_after

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "type": self.type,
            "message": self.message,
            "retryable": self.retryable,
        }
        if self.retry_after is not None:
            out["retry_after"] = round(self.retry_after, 3)
        return out

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "ServiceError":
        type_ = raw.get("type", "internal")
        if type_ not in ERROR_TYPES:
            type_ = "internal"
        return cls(
            type_,
            str(raw.get("message", "unknown error")),
            retry_after=raw.get("retry_after"),
        )


def ok_envelope(data: Any) -> dict[str, Any]:
    """Wrap a successful payload in the versioned envelope."""
    return {"ok": True, "version": repro.__version__, "data": data}


def error_envelope(err: ServiceError) -> dict[str, Any]:
    """Wrap a :class:`ServiceError` in the versioned envelope."""
    return {"ok": False, "version": repro.__version__, "error": err.to_dict()}
