"""Shared-directory fleet coordination: leases, fencing epochs, stealing.

This module lets N ``repro serve`` processes — on one box or over a
shared filesystem (NFS) — operate as **one logical service** whose crash
domain is the fleet, not the host.  Everything is plain files under one
``--fleet-dir``; there is no network protocol between hosts and no
coordinator to elect.  The layout::

    fleet-dir/
      hosts/<host>.json      host leases (heartbeat sequence numbers)
      claims/<key>.json      job ownership (owner, fencing epoch, spec)
      claims/<key>.e<N>      epoch markers (exclusive reclaim arbitration)
      queue/<host>/<key>.json  per-host shards of queued jobs (steal targets)
      results/               the shared :class:`ResultCache` fleet tier
      spool/                 shared snapshot spool (byte-identical resume)
      poison/<key>.json      fleet-wide poison quarantine bundles

The correctness rules, in order of importance:

* **Clock discipline** — hosts never compare wall clocks.  A lease
  carries a monotonically increasing ``seq``; each peer remembers, on its
  *own* ``time.monotonic()`` clock, when it last saw a lease's ``seq``
  advance.  A host is *suspect* past ``lease_timeout`` of observed
  silence and *dead* past twice that, so an NTP step can never make a
  healthy peer look dead (the same discipline PR 7's worker leases now
  use in-process).  Wall-clock stamps in the files are diagnostics only.
* **Fencing epochs** — a claim carries an integer ``epoch`` that only
  ever increases for a given key.  Taking over a dead owner's claim is
  arbitrated by exclusively creating (``os.link``) an epoch marker file
  ``<key>.e<N>``: exactly one contender wins epoch N.  A stale owner that
  wakes up after reclamation fails its fence check (claim file no longer
  names it at its epoch) and must abandon the job without publishing.
* **Single-writer publish** — results enter the shared store via
  :func:`repro.ioutils.atomic_publish` (write-fsync-link), so a torn or
  duplicate publish is structurally impossible: readers observe either
  no entry or one complete, CRC-framed entry, and of N racing writers
  exactly one lands.  Fencing is therefore belt *and* suspenders: even
  the unfenced race window between check and link can only produce the
  deterministic, byte-identical bytes a correct owner would have written.
* **Work conservation** — queued jobs are visible in the submitting
  host's queue shard; an idle peer steals from a loaded or dead one, but
  only ever *through* the claim protocol, so no job runs twice.  A dead
  host's in-flight claims are reclaimed the same way and resumed from the
  shared spool snapshot (identity-checked via ``config_sha256``).
* **Fleet-wide poison** — a claim records how many owners died holding
  it (``host_deaths``); at ``poison_after`` the job is quarantined for
  the whole fleet with a diagnostic bundle under ``poison/``, exactly as
  PR 7 quarantines jobs that kill multiple workers within one host.

Failure injection: ``fleet.claim.stall`` (inside the claim window),
``fleet.lease.skew`` (stalls heartbeats so a live host looks dead),
``fleet.publish.torn`` (mangles a shared-store publish, which the CRC
framing must catch), ``fleet.steal.race`` (widens the pick-then-claim
window).  All stdlib-only, like the rest of the service stack.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro import failpoints
from repro.ioutils import atomic_publish, atomic_write

__all__ = [
    "DEFAULT_HOST_LEASE_TIMEOUT",
    "ClaimHandle",
    "FleetNode",
    "claim_matches",
    "default_host_id",
    "fleet_status",
    "job_key",
]

#: observed heartbeat silence after which a host lease is suspect; dead
#: (and its work reclaimable) past twice this.
DEFAULT_HOST_LEASE_TIMEOUT = 15.0

#: a host is dead — claims reclaimable, shard stealable — past
#: ``DEAD_FACTOR * lease_timeout`` of observed heartbeat silence.
DEAD_FACTOR = 2.0

#: how many epoch steps a taker may walk past a wedged marker in one
#: call (each step requires the marker to have been stale a full
#: lease_timeout on the local monotonic clock).
_MAX_EPOCH_WALK = 8


def job_key(spec_dict: dict[str, Any]) -> str:
    """Stable fleet-wide identity of a submission (16 hex chars).

    Built over the spec's canonical wire dict, so the same scenario
    submitted to any host — or re-read from a claim file — claims the
    same key.  (The same construction the poison registry uses.)
    """
    blob = json.dumps(spec_dict, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def default_host_id() -> str:
    """``<hostname>-<pid>``: unique per server process, stable within it."""
    return f"{socket.gethostname()}-{os.getpid()}"


def _read_json(path: Path) -> dict[str, Any] | None:
    """Tolerant read: a missing or mid-rename file is simply not there."""
    try:
        raw = path.read_bytes()
    except OSError:
        return None
    try:
        doc = json.loads(raw)
    except ValueError:
        return None
    return doc if isinstance(doc, dict) else None


def claim_matches(
    fleet_dir: str | Path, key: str, owner: str, epoch: int
) -> bool:
    """The fence predicate: does ``claims/<key>.json`` still name this
    (owner, epoch)?  Called from worker children immediately before a
    shared-store publish; importable without a :class:`FleetNode`."""
    claim = _read_json(Path(fleet_dir) / "claims" / f"{key}.json")
    return (
        claim is not None
        and claim.get("owner") == owner
        and claim.get("epoch") == epoch
    )


@dataclass(frozen=True)
class ClaimHandle:
    """Proof of ownership of one job key at one fencing epoch."""

    key: str
    epoch: int
    spec: dict[str, Any]


class FleetNode:
    """One host's view of, and hand in, the shared fleet directory.

    Thread-safe: the server's asyncio loop drives the periodic tick
    (heartbeat/scan/reclaim/steal) while supervision threads report
    fence losses; counters and the peer table share one lock.  All file
    operations are small JSON reads and atomic writes.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        host_id: str | None = None,
        lease_timeout: float = DEFAULT_HOST_LEASE_TIMEOUT,
        addr: str = "",
        poison_after: int = 3,
        steal_margin: int = 1,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if poison_after < 1:
            raise ValueError("poison_after must be >= 1")
        self.root = Path(root)
        self.host_id = host_id or default_host_id()
        if "/" in self.host_id or self.host_id.startswith("."):
            raise ValueError(
                f"host_id {self.host_id!r} must be a plain file name"
            )
        self.lease_timeout = lease_timeout
        self.addr = addr
        self.poison_after = poison_after
        #: a live peer is only stolen from when its backlog exceeds ours
        #: by more than this margin (dead peers are always fair game).
        self.steal_margin = steal_margin
        self.hosts_dir = self.root / "hosts"
        self.claims_dir = self.root / "claims"
        self.queue_root = self.root / "queue"
        self.results_dir = self.root / "results"
        self.spool_dir = self.root / "spool"
        self.poison_dir = self.root / "poison"
        for d in (
            self.hosts_dir, self.claims_dir, self.queue_root / self.host_id,
            self.results_dir, self.spool_dir, self.poison_dir,
        ):
            d.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._seq = 0
        self._registered = False
        #: claims this process holds: key -> ClaimHandle.
        self._held: dict[str, ClaimHandle] = {}
        #: peer observation table: host -> [last seq, monotonic at change].
        self._peers: dict[str, list[float]] = {}
        #: epoch markers we are waiting out: path -> first-seen monotonic.
        self._stale_markers: dict[str, float] = {}
        self._last_scan: dict[str, str] = {}
        # gauges (all monotonic counters except claims_held)
        self.claims_won = 0
        self.claim_conflicts = 0
        self.steals = 0
        self.steal_races = 0
        self.reclaims = 0
        self.releases = 0
        self.fenced = 0
        self.poisoned_fleet = 0

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    def host_path(self, host: str) -> Path:
        return self.hosts_dir / f"{host}.json"

    def claim_path(self, key: str) -> Path:
        return self.claims_dir / f"{key}.json"

    def queue_entry_path(self, host: str, key: str) -> Path:
        return self.queue_root / host / f"{key}.json"

    def poison_path(self, key: str) -> Path:
        return self.poison_dir / f"{key}.json"

    # ------------------------------------------------------------------
    # host lease
    # ------------------------------------------------------------------

    def register(self) -> None:
        """Write the initial host lease; idempotent."""
        self._registered = True
        self._write_lease()

    def heartbeat(self) -> None:
        """Advance the lease's ``seq``; peers observing the advance on
        their own monotonic clocks is what 'alive' means."""
        failpoints.fire("fleet.lease.skew", host=self.host_id)
        with self._lock:
            self._seq += 1
        self._write_lease()

    def _write_lease(self) -> None:
        lease = {
            "host_id": self.host_id,
            "pid": os.getpid(),
            "addr": self.addr,
            "seq": self._seq,
            "lease_timeout": self.lease_timeout,
            # wall-clock stamps are DIAGNOSTIC ONLY (repro fleet status);
            # liveness is judged from seq advances on observer clocks.
            "stamped_at": time.time(),
        }
        with atomic_write(self.host_path(self.host_id)) as fh:
            json.dump(lease, fh, sort_keys=True)

    def deregister(self) -> None:
        """Remove the host lease (clean shutdown).  Claims are released
        separately by the queue's drain path, before this."""
        self._registered = False
        try:
            self.host_path(self.host_id).unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # failure detection
    # ------------------------------------------------------------------

    def scan(self) -> dict[str, str]:
        """Refresh the peer table; returns ``host -> state``.

        States: ``alive`` (seq advanced within ``lease_timeout`` of *our*
        monotonic observation), ``suspect`` (silent past it), ``dead``
        (silent past ``DEAD_FACTOR`` times it — reclaimable).  A host
        first seen now starts ``alive``: we cannot know how long it was
        silent before we started watching.
        """
        now = time.monotonic()
        states: dict[str, str] = {}
        seen: set[str] = set()
        for path in sorted(self.hosts_dir.glob("*.json")):
            lease = _read_json(path)
            if lease is None:
                continue
            host = str(lease.get("host_id") or path.stem)
            seen.add(host)
            if host == self.host_id:
                states[host] = "alive"
                continue
            seq = float(lease.get("seq", 0))
            with self._lock:
                view = self._peers.get(host)
                if view is None or seq > view[0]:
                    self._peers[host] = [seq, now]
                    age = 0.0
                else:
                    age = now - view[1]
            if age <= self.lease_timeout:
                states[host] = "alive"
            elif age <= DEAD_FACTOR * self.lease_timeout:
                states[host] = "suspect"
            else:
                states[host] = "dead"
        with self._lock:
            for host in list(self._peers):
                if host not in seen:
                    del self._peers[host]
            self._last_scan = states
        return states

    def host_state(self, host: str) -> str:
        """Last-scanned state; ``gone`` when the lease file is absent
        (clean shutdown — or a crash severe enough to predate watching),
        ``alive`` for a present-but-not-yet-scanned lease (conservative:
        never reclaim from a host we have not observed being silent)."""
        if host == self.host_id:
            return "alive"
        if not self.host_path(host).is_file():
            return "gone"
        return self._last_scan.get(host, "alive")

    # ------------------------------------------------------------------
    # claims: the lease-fenced ownership protocol
    # ------------------------------------------------------------------

    def held(self, key: str) -> ClaimHandle | None:
        with self._lock:
            return self._held.get(key)

    def try_claim(
        self, key: str, spec: dict[str, Any], *, origin: str = "submit"
    ) -> ClaimHandle | None:
        """Acquire ownership of ``key``; ``None`` when someone else owns
        it (or won the race).  Never blocks beyond file I/O; callers poll.
        """
        if self.poison_path(key).is_file():
            return None
        held = self.held(key)
        if held is not None:
            return held
        path = self.claim_path(key)
        existing = _read_json(path)
        if existing is None and not path.is_file():
            failpoints.fire(
                "fleet.claim.stall", key=key, host=self.host_id, origin=origin
            )
            claim = self._claim_doc(key, spec, epoch=1, host_deaths=0)
            if atomic_publish(path, _dump(claim)):
                return self._record_claim(key, 1, spec)
            existing = _read_json(path)
            if existing is None:
                return None  # raced and lost; the winner is mid-write
        if existing is None:
            return None
        owner = existing.get("owner")
        if owner == self.host_id:
            # A previous incarnation of this host id (we crashed and came
            # back): fall through to takeover so the epoch still fences
            # any straggler child from the old process.
            return self._take_over(key, existing, origin=origin)
        if owner:
            if self.host_state(str(owner)) not in ("dead", "gone"):
                with self._lock:
                    self.claim_conflicts += 1
                return None
            return self._take_over(key, existing, origin=origin)
        # released claim (owner drained): take over without a death mark.
        return self._take_over(key, existing, origin=origin, death=False)

    def _claim_doc(
        self, key: str, spec: dict[str, Any], *, epoch: int, host_deaths: int,
        prev_owner: str | None = None,
    ) -> dict[str, Any]:
        return {
            "key": key,
            "spec": spec,
            "owner": self.host_id,
            "epoch": epoch,
            "host_deaths": host_deaths,
            "prev_owner": prev_owner,
            "claimed_at": time.time(),  # diagnostic only
        }

    def _record_claim(
        self, key: str, epoch: int, spec: dict[str, Any]
    ) -> ClaimHandle:
        handle = ClaimHandle(key=key, epoch=epoch, spec=spec)
        with self._lock:
            self._held[key] = handle
            self.claims_won += 1
        return handle

    def _take_over(
        self,
        key: str,
        existing: dict[str, Any],
        *,
        origin: str,
        death: bool = True,
    ) -> ClaimHandle | None:
        """Bump the fencing epoch and seize a dead/released claim.

        Arbitration: exactly one contender exclusively creates the epoch
        marker ``<key>.e<N>``; losers back off and re-observe.  A marker
        whose winner died before rewriting the claim would wedge the key,
        so a marker observed unchanged for a full ``lease_timeout`` lets
        the next contender walk one epoch higher — the claim *file*
        remains the single fencing truth either way.
        """
        base_epoch = int(existing.get("epoch", 0))
        spec = existing.get("spec") or {}
        now = time.monotonic()
        for step in range(1, _MAX_EPOCH_WALK + 1):
            epoch = base_epoch + step
            marker = self.claims_dir / f"{key}.e{epoch}"
            failpoints.fire(
                "fleet.claim.stall", key=key, host=self.host_id, origin=origin
            )
            if atomic_publish(marker, self.host_id.encode("utf-8")):
                host_deaths = int(existing.get("host_deaths", 0))
                if death and existing.get("owner"):
                    host_deaths += 1
                claim = self._claim_doc(
                    key, spec, epoch=epoch, host_deaths=host_deaths,
                    prev_owner=existing.get("owner") or None,
                )
                with atomic_write(self.claim_path(key)) as fh:
                    fh.write(_dump(claim).decode("utf-8"))
                with self._lock:
                    self._stale_markers.pop(str(marker), None)
                return self._record_claim(key, epoch, spec)
            # Marker already exists: someone else is (or was) taking this
            # epoch.  Only walk past it once it has sat there a full
            # lease_timeout on OUR clock with the claim file unchanged.
            with self._lock:
                first_seen = self._stale_markers.setdefault(str(marker), now)
            if now - first_seen < self.lease_timeout:
                with self._lock:
                    self.claim_conflicts += 1
                return None
        return None

    def fence_ok(self, handle: ClaimHandle) -> bool:
        """Is this handle still the fleet's notion of the owner?"""
        return claim_matches(self.root, handle.key, self.host_id, handle.epoch)

    def release(
        self, handle: ClaimHandle, *, done: bool,
        requeue: bool = False,
    ) -> None:
        """Give up a claim.

        ``done=True`` (job settled: result published or failed
        deterministically) deletes the claim file — the shared store now
        answers the key.  ``done=False`` (drain) rewrites it ownerless at
        the same epoch so a peer takes it over with a fenced epoch bump;
        ``requeue=True`` additionally re-publishes the queue entry so an
        idle peer finds the work without waiting for a resubmission.
        """
        with self._lock:
            self._held.pop(handle.key, None)
            self.releases += 1
        path = self.claim_path(handle.key)
        current = _read_json(path)
        if (
            current is None
            or current.get("owner") != self.host_id
            or current.get("epoch") != handle.epoch
        ):
            with self._lock:
                self.fenced += 1
            return  # no longer ours to release
        if done:
            try:
                path.unlink()
            except OSError:
                pass
            return
        doc = dict(current)
        doc["owner"] = None
        doc["released_at"] = time.time()  # diagnostic only
        with atomic_write(path) as fh:
            fh.write(_dump(doc).decode("utf-8"))
        if requeue:
            self.enqueue(handle.key, handle.spec, job_id=None)

    def note_fenced(self, n: int = 1) -> None:
        """Record fence losses observed elsewhere (worker children report
        theirs through the attempt pipe)."""
        with self._lock:
            self.fenced += n

    # ------------------------------------------------------------------
    # queue shards + work stealing
    # ------------------------------------------------------------------

    def enqueue(
        self, key: str, spec: dict[str, Any], *, job_id: str | None
    ) -> None:
        """Publish a queued job into this host's shard (steal target)."""
        entry = {
            "key": key,
            "spec": spec,
            "job_id": job_id,
            "host": self.host_id,
            "submitted_at": time.time(),  # diagnostic only
        }
        with atomic_write(self.queue_entry_path(self.host_id, key)) as fh:
            json.dump(entry, fh, sort_keys=True)

    def remove_queue_entry(self, key: str, host: str | None = None) -> None:
        try:
            self.queue_entry_path(host or self.host_id, key).unlink()
        except OSError:
            pass

    def queue_depths(self) -> dict[str, int]:
        depths: dict[str, int] = {}
        for shard in sorted(self.queue_root.iterdir()):
            if shard.is_dir():
                depths[shard.name] = sum(1 for _ in shard.glob("*.json"))
        return depths

    def steal(
        self, own_depth: int, *, limit: int = 1
    ) -> list[tuple[ClaimHandle, dict[str, Any]]]:
        """Claim up to ``limit`` queued jobs from loaded or dead peers.

        Bounded and lease-mediated: every steal goes through
        :meth:`try_claim`, so a raced steal (the owner dequeued it, or
        another thief got there first) is a no-op, never a double run.
        """
        stolen: list[tuple[ClaimHandle, dict[str, Any]]] = []
        depths = self.queue_depths()
        victims = sorted(
            (h for h in depths if h != self.host_id),
            key=lambda h: -depths[h],
        )
        for victim in victims:
            if len(stolen) >= limit:
                break
            state = self.host_state(victim)
            if state not in ("dead", "gone") and (
                depths[victim] <= own_depth + self.steal_margin
            ):
                continue
            for path in sorted(
                (self.queue_root / victim).glob("*.json")
            ):
                if len(stolen) >= limit:
                    break
                entry = _read_json(path)
                if entry is None:
                    continue
                key = str(entry.get("key") or path.stem)
                failpoints.fire(
                    "fleet.steal.race", key=key, host=self.host_id,
                    victim=victim,
                )
                handle = self.try_claim(
                    key, entry.get("spec") or {}, origin="steal"
                )
                if handle is None:
                    with self._lock:
                        self.steal_races += 1
                    continue
                try:
                    path.unlink()
                except OSError:
                    pass
                with self._lock:
                    self.steals += 1
                stolen.append((handle, entry))
        return stolen

    # ------------------------------------------------------------------
    # reclamation + fleet-wide poison
    # ------------------------------------------------------------------

    def reclaim_dead(
        self, *, limit: int = 4
    ) -> list[tuple[ClaimHandle, dict[str, Any]]]:
        """Take over up to ``limit`` claims whose owner's lease is dead.

        Each takeover bumps the fencing epoch and increments the claim's
        ``host_deaths``; a claim that has now killed ``poison_after``
        hosts is quarantined fleet-wide instead of being resumed again.
        The caller resumes the returned jobs from the shared spool —
        byte-identically, because the snapshot layer identity-checks
        ``config_sha256`` before restoring.
        """
        reclaimed: list[tuple[ClaimHandle, dict[str, Any]]] = []
        for path in sorted(self.claims_dir.glob("*.json")):
            if len(reclaimed) >= limit:
                break
            claim = _read_json(path)
            if claim is None:
                continue
            owner = claim.get("owner")
            if not owner:
                continue  # released; flows back through queue entries
            if owner == self.host_id and self.held(str(claim.get("key"))):
                continue
            if owner != self.host_id and self.host_state(str(owner)) not in (
                "dead", "gone",
            ):
                continue
            key = str(claim.get("key") or path.stem)
            if int(claim.get("host_deaths", 0)) + 1 >= self.poison_after:
                self._poison_from_claim(key, claim)
                continue
            handle = self._take_over(key, claim, origin="reclaim")
            if handle is None:
                continue
            with self._lock:
                self.reclaims += 1
            # the dead owner's queue entry (if any) is now ours
            self.remove_queue_entry(key, host=str(owner))
            reclaimed.append((handle, claim))
        return reclaimed

    def _poison_from_claim(self, key: str, claim: dict[str, Any]) -> None:
        bundle = {
            "kind": "fleet-poison-quarantine",
            "job_key": key,
            "spec": claim.get("spec"),
            "host_deaths": int(claim.get("host_deaths", 0)) + 1,
            "last_owner": claim.get("owner"),
            "epoch": claim.get("epoch"),
            "quarantined_by": self.host_id,
            "quarantined_at": time.time(),
        }
        if atomic_publish(self.poison_path(key), _dump(bundle, indent=2)):
            with self._lock:
                self.poisoned_fleet += 1
        try:
            self.claim_path(key).unlink()
        except OSError:
            pass
        self.remove_queue_entry(key, host=str(claim.get("owner") or ""))

    def poison(self, key: str, bundle: dict[str, Any]) -> Path:
        """Quarantine ``key`` fleet-wide (first writer wins); used by the
        queue when local worker-death poisoning trips, so no *other* host
        re-runs a job this host already diagnosed as poison."""
        path = self.poison_path(key)
        if atomic_publish(path, _dump(bundle, indent=2)):
            with self._lock:
                self.poisoned_fleet += 1
        return path

    def poisoned(self, key: str) -> Path | None:
        path = self.poison_path(key)
        return path if path.is_file() else None

    # ------------------------------------------------------------------
    # gauges
    # ------------------------------------------------------------------

    def status(self) -> dict[str, Any]:
        states = dict(self._last_scan) or self.scan()
        with self._lock:
            return {
                "host_id": self.host_id,
                "lease_timeout": self.lease_timeout,
                "hosts": {
                    "alive": sum(1 for s in states.values() if s == "alive"),
                    "suspect": sum(
                        1 for s in states.values() if s == "suspect"
                    ),
                    "dead": sum(1 for s in states.values() if s == "dead"),
                },
                "claims_held": len(self._held),
                "claims_won": self.claims_won,
                "claim_conflicts": self.claim_conflicts,
                "steals": self.steals,
                "steal_races": self.steal_races,
                "reclaims": self.reclaims,
                "releases": self.releases,
                "fenced_writes": self.fenced,
                "poisoned_fleet": self.poisoned_fleet,
            }


def _dump(doc: dict[str, Any], indent: int | None = None) -> bytes:
    return json.dumps(doc, sort_keys=True, indent=indent).encode("utf-8")


# ---------------------------------------------------------------------------
# offline inspection (repro fleet status)
# ---------------------------------------------------------------------------


def fleet_status(fleet_dir: str | Path) -> dict[str, Any]:
    """Inspect a fleet directory from the filesystem alone — no server
    needed, so a dead fleet is diagnosable post-mortem.

    Lease ages here come from the *diagnostic* wall-clock stamps (an
    offline reader has no heartbeat history to observe); the live
    protocol never uses them.
    """
    root = Path(fleet_dir)
    if not root.is_dir():
        raise FileNotFoundError(f"no fleet directory at {root}")
    now = time.time()
    hosts = []
    for path in sorted((root / "hosts").glob("*.json")):
        lease = _read_json(path)
        if lease is None:
            continue
        hosts.append({
            "host_id": lease.get("host_id", path.stem),
            "pid": lease.get("pid"),
            "addr": lease.get("addr", ""),
            "seq": lease.get("seq", 0),
            "lease_timeout": lease.get("lease_timeout"),
            "stamped_age_s": round(
                max(0.0, now - float(lease.get("stamped_at", now))), 1
            ),
        })
    claims = []
    for path in sorted((root / "claims").glob("*.json")):
        claim = _read_json(path)
        if claim is None:
            continue
        spec = claim.get("spec") or {}
        claims.append({
            "key": claim.get("key", path.stem),
            "owner": claim.get("owner"),
            "epoch": claim.get("epoch"),
            "host_deaths": claim.get("host_deaths", 0),
            "label": _spec_label(spec),
        })
    queued: dict[str, int] = {}
    queue_root = root / "queue"
    if queue_root.is_dir():
        for shard in sorted(queue_root.iterdir()):
            if shard.is_dir():
                queued[shard.name] = sum(1 for _ in shard.glob("*.json"))
    poison = sorted(p.stem for p in (root / "poison").glob("*.json"))
    results = (
        sum(1 for _ in (root / "results").glob("*.rcache"))
        if (root / "results").is_dir() else 0
    )
    snapshots = (
        sum(1 for _ in (root / "spool").glob("*.snap"))
        if (root / "spool").is_dir() else 0
    )
    return {
        "fleet_dir": str(root),
        "hosts": hosts,
        "claims": claims,
        "queued": queued,
        "poison": poison,
        "results": results,
        "snapshots": snapshots,
    }


def _spec_label(spec: dict[str, Any]) -> str:
    if spec.get("kind") == "sweep":
        return (
            f"sweep:{len(spec.get('workloads', []))}"
            f"x{len(spec.get('policies', []))}"
        )
    return f"{spec.get('workload', '?')}/{spec.get('policy', '?')}"
