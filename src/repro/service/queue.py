"""Bounded asyncio job queue: retries, backoff, breaker, eviction, cache.

One :class:`JobQueue` owns every job the server accepts.  The robustness
contract, piece by piece:

* **Bounded admission** — a :class:`CircuitBreaker` watches queue depth;
  past ``max_pending`` it opens and submissions are shed with a typed
  ``saturated`` error (HTTP 503 + ``Retry-After``) until the backlog
  drains below the low-water mark.  The server never builds an unbounded
  queue it can only fall over under.
* **Content-addressed dedup** — before any work, each cell of a job is
  looked up in the :class:`~repro.service.cache.ResultCache` under
  :func:`~repro.service.cache.request_key`; duplicate submissions of an
  identical config perform exactly zero new simulation.
* **Bounded retries with backoff + jitter** — transient failures re-run
  the attempt after :func:`repro.experiments.harness.retry_delay`
  (exponential, capped, jittered); permanent errors
  (:data:`~repro.experiments.harness.PERMANENT_ERRORS`) fail immediately
  with a typed ``job-failed`` envelope.
* **Wall-clock budgets and eviction** — every attempt runs under a
  :class:`~repro.snapshot.Checkpointer` deadline, so a job past its
  time slice (``evict_after``) preempts itself *at a task boundary*,
  leaves a resumable snapshot in the spool, and goes to the back of the
  queue; a job past its total ``timeout`` fails (typed ``timeout``) but
  its snapshot survives, so a resubmission resumes instead of restarting.
* **Graceful drain** — :meth:`JobQueue.drain` (the SIGTERM path) preempts
  every in-flight job to its snapshot and refuses new work; ``kill -9``
  loses nothing already cached because cache and spool writes are atomic.

Simulations run on a supervised **process-per-attempt worker pool**
(:class:`~repro.service.workers.WorkerPool`): each attempt is a
spawn-isolated subprocess holding a heartbeat lease, so a segfault, OOM,
or hang costs one attempt, never the server.  On top of the pool this
module adds:

* **Crash requeue** — a :class:`~repro.service.workers.WorkerDied`
  requeues the job (resuming byte-identically from its last spool
  snapshot) under a budget that always reaches the poison threshold.
* **Poison quarantine** — a job whose attempts kill ``poison_after``
  workers is quarantined with a diagnostic bundle under
  ``spool/poison/`` and rejected (typed ``poisoned``) for the rest of
  this server's lifetime, instead of crash-looping the pool.
* **Graceful degradation** — bursts of worker deaths shed pool
  concurrency toward 1; healthy completions restore it.

In **fleet mode** (constructed with a
:class:`~repro.service.fleet.FleetNode`) the queue additionally:

* claims every job through the fleet's lease-fenced ownership protocol
  before running it (``_acquire_claim``) — a job someone else owns is
  awaited, not re-run, and completes from the shared store;
* publishes queued jobs into this host's fleet queue shard so idle
  peers can steal them;
* runs a periodic fleet tick (heartbeat, peer scan, reclaim of dead
  hosts' claims, bounded steal) that adopts orphaned work as
  client-invisible **ghost jobs**, resumed byte-identically from the
  shared spool snapshot;
* carries poison quarantine fleet-wide: a job that kills
  ``poison_after`` *hosts* (claim-tracked) or workers is rejected by
  every host, not just this one.

Failure injection for all of the above goes through the deterministic
failpoint registry (:mod:`repro.failpoints`); the old ad-hoc env hooks
remain as deprecated aliases.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import random
import threading
import time
import uuid
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro import failpoints
from repro.experiments.harness import PERMANENT_ERRORS, retry_delay
from repro.ioutils import atomic_write
from repro.service.cache import ResultCache, request_key
from repro.service.envelope import ServiceError
from repro.service.fleet import FleetNode
from repro.service.workers import (
    HARD_TIMEOUT_GRACE,
    WorkerDied,
    WorkerJobError,
    WorkerPool,
)
from repro.sim.machine import POLICIES
from repro.snapshot import PreemptedError, SnapshotMismatchError

__all__ = [
    "RunSpec",
    "SweepSpec",
    "Job",
    "JobQueue",
    "CircuitBreaker",
    "EventBuffer",
    "SLOW_ENV",
    "CRASH_ENV",
]

#: deprecated chaos hook (now an alias for the ``queue.attempt.slow``
#: failpoint): seconds every job attempt sleeps before simulating.
SLOW_ENV = "REPRO_SERVICE_SLOW"

#: deprecated chaos hook (now an alias for the ``queue.attempt.crash``
#: failpoint): a job label whose worker process exits before running.
CRASH_ENV = "REPRO_SERVICE_CRASH"

#: job states.  ``preempted`` is terminal for this server instance but not
#: for the work: the snapshot in the spool resumes it on resubmission.
JOB_STATES = ("queued", "running", "done", "failed", "preempted")


def _machine_spec(scale: int, mesh, cluster, rrt_entries):
    from repro.scenario.model import MachineSpec

    mesh = mesh or (4, 4)
    cluster = cluster or (2, 2)
    return MachineSpec(
        scale=scale,
        mesh_width=mesh[0],
        mesh_height=mesh[1],
        cluster_width=cluster[0],
        cluster_height=cluster[1],
        rrt_entries=rrt_entries,
    )


def _geometry_dict(spec) -> dict[str, Any]:
    """Geometry keys for ``to_dict`` — emitted ONLY when non-default, so
    the serialized form (and therefore poison keys and legacy readers) of
    every pre-scenario spec is byte-identical to what it always was."""
    out: dict[str, Any] = {}
    if spec.mesh is not None:
        out["mesh"] = list(spec.mesh)
    if spec.cluster is not None:
        out["cluster"] = list(spec.cluster)
    if spec.rrt_entries is not None:
        out["rrt_entries"] = spec.rrt_entries
    return out


@dataclass(frozen=True)
class RunSpec:
    """One (workload, policy) simulation request.

    A thin, wire-stable veneer over :class:`repro.scenario.Scenario`:
    validation and config compilation both route through the scenario it
    denotes, so a service submission fingerprints identically to the same
    run expressed as a YAML scenario, CLI flags or Session kwargs.
    """

    workload: str
    policy: str
    seed: int = 0
    scale: int = 64
    faults: str = ""
    strict: bool = False
    #: simulation backend; never changes results, so it is deliberately
    #: absent from the result-cache request key (see ``request_key``).
    kernel: str = "auto"
    #: scale-out geometry; ``None`` keeps the paper's 4x4 mesh / 2x2
    #: clusters / 64-entry RRTs (and keeps ``to_dict`` byte-identical to
    #: the pre-scenario wire format).
    mesh: tuple[int, int] | None = None
    cluster: tuple[int, int] | None = None
    rrt_entries: int | None = None

    kind = "run"

    def scenario(self):
        """The :class:`~repro.scenario.Scenario` this spec denotes."""
        from repro.scenario.model import Scenario

        return Scenario(
            name=self.label,
            workload=self.workload,
            policy=self.policy,
            machine=_machine_spec(
                self.scale, self.mesh, self.cluster, self.rrt_entries
            ),
            faults=self.faults,
            strict=self.strict,
            kernel=self.kernel,
            seed=self.seed,
        )

    def validate(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        if not isinstance(self.scale, int) or isinstance(self.scale, bool):
            raise ValueError(
                f"scale must be a positive integer, got {self.scale!r}"
            )
        # Scenario validation compiles the config too, so a nonsense fault
        # spec or geometry is rejected at submission, not inside a worker.
        self.scenario().validate()

    def config(self):
        return self.scenario().to_config()

    def cells(self) -> list[tuple[str, str]]:
        return [(self.workload, self.policy)]

    @property
    def label(self) -> str:
        return f"{self.workload}/{self.policy}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "workload": self.workload,
            "policy": self.policy,
            "seed": self.seed,
            "scale": self.scale,
            "faults": self.faults,
            "strict": self.strict,
            "kernel": self.kernel,
            **_geometry_dict(self),
        }


@dataclass(frozen=True)
class SweepSpec:
    """A workloads x policies grid; each cell caches independently."""

    workloads: tuple[str, ...]
    policies: tuple[str, ...]
    seed: int = 0
    scale: int = 64
    faults: str = ""
    strict: bool = False
    kernel: str = "auto"
    mesh: tuple[int, int] | None = None
    cluster: tuple[int, int] | None = None
    rrt_entries: int | None = None

    kind = "sweep"

    def scenario(self):
        from repro.scenario.model import Scenario

        return Scenario(
            name=self.label,
            workloads=tuple(self.workloads),
            policies=tuple(self.policies),
            machine=_machine_spec(
                self.scale, self.mesh, self.cluster, self.rrt_entries
            ),
            faults=self.faults,
            strict=self.strict,
            kernel=self.kernel,
            seed=self.seed,
        )

    def validate(self) -> None:
        if not self.workloads or not self.policies:
            raise ValueError("sweep needs at least one workload and one policy")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        if not isinstance(self.scale, int) or isinstance(self.scale, bool):
            raise ValueError(
                f"scale must be a positive integer, got {self.scale!r}"
            )
        self.scenario().validate()

    def config(self):
        return self.scenario().to_config()

    def cells(self) -> list[tuple[str, str]]:
        return [(wl, pol) for wl in self.workloads for pol in self.policies]

    @property
    def label(self) -> str:
        return f"sweep:{len(self.workloads)}x{len(self.policies)}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "workloads": list(self.workloads),
            "policies": list(self.policies),
            "seed": self.seed,
            "scale": self.scale,
            "faults": self.faults,
            "strict": self.strict,
            "kernel": self.kernel,
            **_geometry_dict(self),
        }


def spec_from_scenario(scenario) -> RunSpec | SweepSpec:
    """Lower a :class:`~repro.scenario.Scenario` to a service spec.

    Multiprogrammed scenarios are rejected with a clear message — they
    need the merged-program execution path, which runs through
    ``Session``/``repro run``, not the cell-cached service.
    """
    m = scenario.machine
    geometry: dict[str, Any] = {}
    if (m.mesh_width, m.mesh_height) != (4, 4):
        geometry["mesh"] = (m.mesh_width, m.mesh_height)
    if (m.cluster_width, m.cluster_height) != (2, 2):
        geometry["cluster"] = (m.cluster_width, m.cluster_height)
    if m.rrt_entries is not None:
        geometry["rrt_entries"] = m.rrt_entries
    common = dict(
        seed=scenario.seed,
        scale=m.scale,
        faults=scenario.faults,
        strict=scenario.strict,
        kernel=scenario.kernel,
        **geometry,
    )
    if scenario.kind == "run":
        spec: RunSpec | SweepSpec = RunSpec(
            scenario.workload, scenario.policy, **common
        )
    elif scenario.kind == "sweep":
        spec = SweepSpec(
            tuple(scenario.workloads), tuple(scenario.policies), **common
        )
    else:
        raise ValueError(
            f"multiprog scenario {scenario.name!r} cannot run through the "
            "service (co-runners share one merged machine, which defeats "
            "per-cell caching); run it with 'repro run' or "
            "repro.run_scenario()"
        )
    spec.validate()
    return spec


def _parse_wire_geometry(raw: dict[str, Any]) -> dict[str, Any]:
    from repro.scenario.model import _parse_geometry

    out: dict[str, Any] = {}
    if raw.get("mesh") is not None:
        out["mesh"] = _parse_geometry(raw["mesh"], "mesh")
    if raw.get("cluster") is not None:
        out["cluster"] = _parse_geometry(raw["cluster"], "cluster")
    if raw.get("rrt_entries") is not None:
        rrt = raw["rrt_entries"]
        if not isinstance(rrt, int) or rrt < 1:
            raise ValueError(
                f"rrt_entries must be a positive integer, got {rrt!r}"
            )
        out["rrt_entries"] = rrt
    return out


def spec_from_dict(raw: dict[str, Any], *,
                   warn_legacy: bool = False) -> RunSpec | SweepSpec:
    """Parse a submission body into a validated spec.

    The canonical body is ``{"scenario": {...}}`` (a scenario mapping) or
    ``{"scenario": "name"}`` (a curated-library name).  The legacy flat
    form (``workload``/``policy``/``scale``/... at top level) is still
    accepted and translated through the same :class:`Scenario` path;
    ``warn_legacy=True`` (the server's external boundary) additionally
    emits a :class:`DeprecationWarning` — internal round-trips (worker
    payloads, poison keys) stay silent and byte-stable.

    Raises plain :class:`ValueError` with a message naming the problem;
    the server maps it to a typed ``invalid-request`` envelope.
    """
    if not isinstance(raw, dict):
        raise ValueError("request body must be a JSON object")
    kind = raw.get("kind", "run")
    if "scenario" in raw:
        from repro.scenario.loader import load_scenario
        from repro.scenario.model import parse_scenario

        body = raw["scenario"]
        if isinstance(body, str):
            scenario = load_scenario(body)
        else:
            scenario = parse_scenario(body, source="request")
        # multiprog falls through to spec_from_scenario's rejection, which
        # explains where such scenarios *can* run.
        if ("kind" in raw and scenario.kind != kind
                and scenario.kind != "multiprog"):
            raise ValueError(
                f"scenario {scenario.name!r} is a {scenario.kind} but was "
                f"submitted to the {kind} endpoint"
            )
        return spec_from_scenario(scenario)
    if warn_legacy:
        import warnings

        warnings.warn(
            "flat service request bodies are deprecated; submit "
            "{'scenario': {...}} or {'scenario': '<library-name>'} instead",
            DeprecationWarning,
            stacklevel=2,
        )
    common = {
        "seed": raw.get("seed", 0),
        "scale": raw.get("scale", 64),
        "faults": raw.get("faults", ""),
        "strict": bool(raw.get("strict", False)),
        "kernel": str(raw.get("kernel", "auto")),
        **_parse_wire_geometry(raw),
    }
    if kind == "run":
        if "workload" not in raw or "policy" not in raw:
            raise ValueError("run request needs 'workload' and 'policy'")
        spec: RunSpec | SweepSpec = RunSpec(
            str(raw["workload"]), str(raw["policy"]), **common
        )
    elif kind == "sweep":
        workloads = raw.get("workloads")
        policies = raw.get("policies")
        if not isinstance(workloads, list) or not isinstance(policies, list):
            raise ValueError(
                "sweep request needs 'workloads' and 'policies' lists"
            )
        spec = SweepSpec(
            tuple(str(w) for w in workloads),
            tuple(str(p) for p in policies),
            **common,
        )
    else:
        raise ValueError(f"unknown job kind {kind!r} (expected 'run' or 'sweep')")
    spec.validate()
    return spec


class EventBuffer:
    """Thread-safe, bounded, cursor-addressed progress feed.

    Worker threads append; the NDJSON endpoint reads with
    :meth:`since` and polls until :attr:`closed`.  Past ``capacity`` the
    oldest events are discarded (counted in :attr:`dropped`) — a slow
    consumer can lose history, never correctness.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.dropped = 0
        self._items: list[dict[str, Any]] = []
        self._base = 0  # cursor of _items[0]
        self._lock = threading.Lock()
        self._closed = False

    def append(self, item: dict[str, Any]) -> None:
        with self._lock:
            self._items.append(item)
            overflow = len(self._items) - self.capacity
            if overflow > 0:
                del self._items[:overflow]
                self._base += overflow
                self.dropped += overflow

    def since(self, cursor: int) -> tuple[list[dict[str, Any]], int]:
        """Events at or after ``cursor`` plus the next cursor to poll from."""
        with self._lock:
            start = max(0, cursor - self._base)
            items = self._items[start:]
            return items, self._base + len(self._items)

    def close(self) -> None:
        with self._lock:
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed


@dataclass
class Job:
    """One accepted submission and everything that happened to it."""

    id: str
    spec: RunSpec | SweepSpec
    state: str = "queued"
    attempts: int = 0
    evictions: int = 0
    worker_deaths: int = 0   # attempts that killed their worker process
    cache_hits: int = 0      # cells answered from the cache
    simulated: int = 0       # cells this job actually simulated
    cells_done: int = 0
    cells_total: int = 1
    error: dict[str, Any] | None = None
    result: dict[str, Any] | None = None
    resumed_from_task: int | None = None
    snapshot: str | None = None
    #: how this job entered the queue: ``submit`` (a client), ``reclaim``
    #: (adopted from a dead peer's claim) or ``steal`` (pulled from a
    #: loaded peer's shard).  Non-submit jobs are "ghosts": client-
    #: invisible, but visible in stats for the chaos asserts.
    origin: str = "submit"
    #: the fleet :class:`~repro.service.fleet.ClaimHandle` this job runs
    #: under (fleet mode only); the single release token.
    fleet_claim: Any = None
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    spent: float = 0.0       # wall seconds across attempts
    events: EventBuffer = field(default_factory=EventBuffer)
    #: completed cell results carried across evictions/retries.
    partial: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: the in-flight attempt's preempt target — an
    #: :class:`~repro.service.workers.AttemptHandle` (or anything with a
    #: signal-safe ``request_preempt()``), set by the supervision thread.
    current_ck: Any = None

    def to_dict(self) -> dict[str, Any]:
        """The job record served by status endpoints (result separate)."""
        out: dict[str, Any] = {
            "id": self.id,
            "kind": self.spec.kind,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "attempts": self.attempts,
            "evictions": self.evictions,
            "worker_deaths": self.worker_deaths,
            "cache_hits": self.cache_hits,
            "simulated": self.simulated,
            "cells_done": self.cells_done,
            "cells_total": self.cells_total,
            "spent_s": round(self.spent, 3),
        }
        if self.error is not None:
            out["error"] = self.error
        if self.resumed_from_task is not None:
            out["resumed_from_task"] = self.resumed_from_task
        if self.snapshot is not None:
            out["snapshot"] = self.snapshot
        if self.origin != "submit":
            out["origin"] = self.origin
        return out

    @property
    def cache_hit(self) -> bool:
        """True when no cell of this job needed new simulation."""
        return self.simulated == 0 and self.state == "done"


class CircuitBreaker:
    """Depth-watching load shedder with hysteresis.

    ``open`` when the backlog reaches ``max_pending``; stays open (shedding
    with ``Retry-After``) until the backlog drains to ``low_water`` so the
    server recovers before accepting more, instead of flapping.
    """

    def __init__(self, max_pending: int, low_water: int | None = None) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.max_pending = max_pending
        self.low_water = (
            max(0, max_pending // 2) if low_water is None else low_water
        )
        if self.low_water >= max_pending:
            raise ValueError("low_water must be below max_pending")
        self.state = "closed"
        self.trips = 0
        self.shed = 0

    def admit(self, depth: int) -> None:
        """Raise a typed ``saturated`` error instead of admitting, when shedding."""
        if self.state == "closed":
            if depth >= self.max_pending:
                self.state = "open"
                self.trips += 1
        elif depth <= self.low_water:
            self.state = "closed"
        if self.state == "open":
            self.shed += 1
            raise ServiceError(
                "saturated",
                f"job queue is saturated ({depth} jobs pending, "
                f"limit {self.max_pending}); retry later",
                retry_after=round(0.5 + 0.25 * depth, 3),
            )


class JobQueue:
    """The job engine behind :class:`~repro.service.server.ServiceServer`."""

    def __init__(
        self,
        *,
        workers: int = 2,
        max_pending: int = 32,
        timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.25,
        evict_after: float | None = None,
        checkpoint_every: int = 0,
        spool_dir: str | Path,
        cache: ResultCache | None = None,
        jitter_seed: int | None = None,
        lease_timeout: float = 30.0,
        worker_mem_mb: int | None = None,
        poison_after: int = 3,
        degrade_after: int = 2,
        degrade_window: float = 60.0,
        fleet: FleetNode | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff < 0:
            raise ValueError("backoff must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        if evict_after is not None and evict_after <= 0:
            raise ValueError("evict_after must be positive")
        if poison_after < 1:
            raise ValueError("poison_after must be >= 1")
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.evict_after = evict_after
        #: also snapshot every N completed tasks, so even ``kill -9``
        #: (which never reaches the drain path) resumes from the last
        #: periodic snapshot instead of restarting.
        self.checkpoint_every = checkpoint_every
        self.lease_timeout = lease_timeout
        self.worker_mem_mb = worker_mem_mb
        #: worker deaths a single job may cause before it is quarantined.
        self.poison_after = poison_after
        self.degrade_after = degrade_after
        self.degrade_window = degrade_window
        self.spool = Path(spool_dir)
        self.spool.mkdir(parents=True, exist_ok=True)
        self.cache = cache
        self.fleet = fleet
        #: ghost jobs adopted from peers (reclaims + steals).
        self.adopted = 0
        self.breaker = CircuitBreaker(max_pending)
        self.jobs: dict[str, Job] = {}
        #: poison-quarantined spec keys -> diagnostic bundle path.
        self.poisoned: dict[str, str] = {}
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.evicted = 0
        self.preempted = 0
        self.worker_deaths = 0
        self.simulations_run = 0
        self.draining = False
        self.pool: WorkerPool | None = None
        self._rng = random.Random(jitter_seed)
        self._inflight = 0
        self._ready: asyncio.Queue[str] | None = None
        self._tasks: list[asyncio.Task] = []
        self._pool: Any = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self._ready = asyncio.Queue()
        # Supervision slots: each thread blocks in WorkerPool.run_attempt
        # babysitting one child process; simulation itself runs in the
        # children, crash-isolated from this server.
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-job"
        )
        self.pool = WorkerPool(
            self.workers,
            lease_timeout=self.lease_timeout,
            mem_limit_mb=self.worker_mem_mb,
            spool=self.spool,
            cache_dir=None if self.cache is None else self.cache.root,
            checkpoint_every=self.checkpoint_every,
            degrade_after=self.degrade_after,
            degrade_window=self.degrade_window,
            fleet_dir=None if self.fleet is None else self.fleet.root,
            fleet_host=None if self.fleet is None else self.fleet.host_id,
        )
        self._tasks = [
            asyncio.create_task(self._worker_loop(), name=f"jobworker-{i}")
            for i in range(self.workers)
        ]
        if self.fleet is not None:
            self.pool.on_fenced = self.fleet.note_fenced
            self.fleet.register()
            self._tasks.append(
                asyncio.create_task(self._fleet_loop(), name="fleet-tick")
            )

    async def drain(self, grace: float = 10.0) -> int:
        """Graceful shutdown: checkpoint in-flight work, stop the workers.

        Every running job's attempt handle gets a preempt request (the
        supervisor forwards it to the child as SIGTERM); workers then
        stop at their next task boundary with a snapshot in the spool.
        Jobs still queued are marked ``preempted`` without a snapshot (a
        resubmission simply reruns them — and hits the cache for every
        cell that finished).  The join is **bounded**: at the grace
        deadline any still-running child — hung, dying, or mid-crash —
        is SIGKILLed and its job settled, so drain always returns within
        ``grace`` plus epsilon.  Returns the number of jobs that did not
        complete.
        """
        self.draining = True
        failpoints.fire("queue.drain.stall")
        deadline = time.monotonic() + grace
        while True:
            # Re-request every iteration: a worker mid-attempt may create
            # its handle *after* drain started, and a requeued job's next
            # attempt gets a fresh handle too.
            running = False
            for job in self.jobs.values():
                if job.state == "running":
                    running = True
                    ck = job.current_ck
                    if ck is not None:
                        ck.request_preempt()
            if not running or time.monotonic() >= deadline:
                break
            await asyncio.sleep(0.05)
        stopped = 0
        for job in self.jobs.values():
            if job.state in ("queued", "running"):
                job.state = "preempted"
                job.events.append({"kind": "preempted", "reason": "draining"})
                job.events.close()
                self.preempted += 1
                stopped += 1
            elif job.state == "preempted":
                stopped += 1
        if self.pool is not None:
            self.pool.kill_all()
        for task in self._tasks:
            task.cancel()
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        if self.fleet is not None:
            # Hand unfinished work back to the fleet: every claim this
            # host still holds is released ownerless (same epoch, so the
            # adopter's takeover still bumps it) and re-published into the
            # queue shard for peers to find; then the lease goes away so
            # peers see a clean departure, not a death.
            for job in self.jobs.values():
                handle, job.fleet_claim = job.fleet_claim, None
                if handle is not None:
                    self.fleet.release(handle, done=False, requeue=True)
            self.fleet.deregister()
        return stopped

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def depth(self) -> int:
        return sum(
            1 for j in self.jobs.values() if j.state in ("queued", "running")
        )

    def submit(self, spec: RunSpec | SweepSpec) -> Job:
        """Admit a job (or answer it from cache); raises :class:`ServiceError`.

        The all-cells-cached fast path completes the job synchronously —
        a duplicate submission never even enters the queue.
        """
        if self.draining:
            raise ServiceError(
                "draining", "server is shutting down; resubmit elsewhere",
                retry_after=5.0,
            )
        if self._ready is None:
            raise ServiceError("internal", "job queue is not started")
        poison_key = self._poison_key(spec)
        if poison_key in self.poisoned:
            raise ServiceError(
                "poisoned",
                f"job {spec.label!r} (key {poison_key}) is quarantined: it "
                f"repeatedly killed its worker process; diagnostic bundle "
                f"at {self.poisoned[poison_key]}",
            )
        if self.fleet is not None:
            fleet_bundle = self.fleet.poisoned(poison_key)
            if fleet_bundle is not None:
                raise ServiceError(
                    "poisoned",
                    f"job {spec.label!r} (key {poison_key}) is quarantined "
                    f"fleet-wide as poison; diagnostic bundle at "
                    f"{fleet_bundle}",
                )
        job = Job(
            id=uuid.uuid4().hex[:12], spec=spec,
            cells_total=len(spec.cells()),
        )
        if self._cache_fast_path(job):
            self.submitted += 1
            self.jobs[job.id] = job
            return job
        self.breaker.admit(self.depth())
        self.submitted += 1
        self.jobs[job.id] = job
        job.events.append({"kind": "queued", "label": spec.label})
        if self.fleet is not None:
            # Visible in this host's fleet queue shard from this moment:
            # an idle peer may steal it, in which case _acquire_claim
            # below waits for the thief and completes from the store.
            self.fleet.enqueue(poison_key, spec.to_dict(), job_id=job.id)
        self._ready.put_nowait(job.id)
        return job

    def get(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError("not-found", f"unknown job id {job_id!r}")
        return job

    def stats(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "depth": self.depth(),
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "evicted": self.evicted,
            "preempted": self.preempted,
            "worker_deaths": self.worker_deaths,
            "poisoned": len(self.poisoned),
            "simulations_run": self.simulations_run,
            "pool": None if self.pool is None else self.pool.stats(),
            "breaker": {
                "state": self.breaker.state,
                "max_pending": self.breaker.max_pending,
                "trips": self.breaker.trips,
                "shed": self.breaker.shed,
            },
            "draining": self.draining,
            **(
                {
                    "adopted": self.adopted,
                    "ghost_jobs": [
                        {
                            "id": j.id,
                            "origin": j.origin,
                            "state": j.state,
                            "resumed_from_task": j.resumed_from_task,
                        }
                        for j in self.jobs.values()
                        if j.origin != "submit"
                    ],
                }
                if self.fleet is not None else {}
            ),
        }

    def _cache_fast_path(self, job: Job) -> bool:
        """Complete ``job`` immediately iff every cell is already cached."""
        if self.cache is None:
            return False
        cfg = job.spec.config()
        cells = job.spec.cells()
        keys = {
            cell: request_key(cfg, cell[0], cell[1], job.spec.seed)
            for cell in cells
        }
        if not all(keys[cell] in self.cache for cell in cells):
            return False
        for cell in cells:
            cached = self.cache.get(keys[cell])
            if cached is None:  # corrupt entry surfaced mid-check: recompute
                return False
            job.partial[f"{cell[0]}/{cell[1]}"] = cached
            job.cache_hits += 1
            job.cells_done += 1
            job.events.append(
                {"kind": "cell_done", "cell": f"{cell[0]}/{cell[1]}",
                 "cache_hit": True}
            )
        self._finish_ok(job)
        return True

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    async def _worker_loop(self) -> None:
        assert self._ready is not None
        while True:
            job_id = await self._ready.get()
            job = self.jobs.get(job_id)
            if job is None or job.state != "queued":
                continue
            # Degradation gate: under a burst of worker deaths the pool
            # sheds concurrency below the configured width; loops past
            # the current width idle instead of spawning.
            while (
                self.pool is not None
                and self._inflight >= self.pool.concurrency
                and not self.draining
            ):
                await asyncio.sleep(0.05)
            self._inflight += 1
            try:
                await self._run_job(job)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - never kill the loop
                self._fail(job, ServiceError(
                    "internal", f"{type(exc).__name__}: {exc}"
                ))
            finally:
                self._inflight -= 1

    async def _fleet_loop(self) -> None:
        """Periodic fleet duties: heartbeat, peer scan, reclaim, steal.

        Runs at a quarter of the host lease timeout so a peer observes
        several missed beats before declaring us suspect.  Failures in a
        tick are contained — a transient shared-filesystem error must
        never take the serving loop down with it.
        """
        assert self.fleet is not None
        period = max(0.05, self.fleet.lease_timeout / 4)
        while True:
            await asyncio.sleep(period)
            try:
                self._fleet_tick()
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - tick must survive
                import warnings

                warnings.warn(f"fleet tick failed: {exc}", stacklevel=2)

    def _fleet_tick(self) -> None:
        assert self.fleet is not None
        self.fleet.heartbeat()
        self.fleet.scan()
        if self.draining:
            return
        for handle, claim in self.fleet.reclaim_dead():
            self._adopt(handle, claim.get("spec"), origin="reclaim")
        if self.depth() == 0:
            # Idle: pull at most one job per tick from a dead or clearly
            # more-loaded peer; bounded so a thundering herd of idle
            # hosts cannot strip a healthy peer bare in one beat.
            for handle, entry in self.fleet.steal(self.depth(), limit=1):
                self._adopt(handle, entry.get("spec"), origin="steal")

    def _adopt(self, handle: Any, spec_dict: Any, origin: str) -> None:
        """Admit a reclaimed/stolen claim as a client-invisible ghost job.

        The ghost resumes from the shared spool snapshot exactly like a
        local crash retry would: the snapshot is keyed by ``request_key``
        and identity-checked on load, so resuming a dead peer's work is
        byte-identical to the peer having finished it.
        """
        assert self.fleet is not None and self._ready is not None
        try:
            spec = spec_from_dict(dict(spec_dict or {}))
        except (ValueError, TypeError) as exc:
            # Unparseable claim (version skew, corruption): settle it so
            # the fleet stops re-adopting it every tick.
            import warnings

            warnings.warn(
                f"dropping unparseable fleet claim {handle.key}: {exc}",
                stacklevel=2,
            )
            self.fleet.release(handle, done=True)
            return
        job = Job(
            id=uuid.uuid4().hex[:12], spec=spec,
            cells_total=len(spec.cells()),
            origin=origin, fleet_claim=handle,
        )
        self.adopted += 1
        self.jobs[job.id] = job
        job.events.append(
            {"kind": "adopted", "origin": origin, "epoch": handle.epoch,
             "key": handle.key}
        )
        if self._cache_fast_path(job):
            handle, job.fleet_claim = job.fleet_claim, None
            self.fleet.release(handle, done=True)
            return
        self._ready.put_nowait(job.id)

    async def _run_job(self, job: Job) -> None:
        job.state = "running"
        if job.started is None:
            job.started = time.time()
        try:
            if self.fleet is not None and not await self._acquire_claim(job):
                return  # settled without running: remote result, poison…
            await self._run_attempts(job)
        finally:
            self._settle_fleet(job)

    async def _acquire_claim(self, job: Job) -> bool:
        """Fleet mode: own the job before running it; ``False`` = settled.

        Loops until one of: we win the claim (run it), the result shows
        up in the shared store (a peer — possibly a thief — finished it;
        complete from cache), the job is fleet-poisoned, or we start
        draining.  The loop occupies this worker slot while a live peer
        owns the job, which is exactly the back-pressure we want: the
        work *is* in flight, just elsewhere.
        """
        assert self.fleet is not None
        if job.fleet_claim is not None:
            return True  # requeued (eviction/crash retry): still ours
        key = self._poison_key(job.spec)
        poll = max(0.05, min(0.5, self.fleet.lease_timeout / 10))
        while True:
            if self.draining:
                job.state = "preempted"
                job.events.append(
                    {"kind": "preempted", "reason": "draining"}
                )
                job.events.close()
                self.preempted += 1
                return False
            if self.cache is not None and self._cache_fast_path(job):
                self.fleet.remove_queue_entry(key)
                return False
            bundle = self.fleet.poisoned(key)
            if bundle is not None:
                self.fleet.remove_queue_entry(key)
                self._fail(job, ServiceError(
                    "poisoned",
                    f"job {job.spec.label!r} (key {key}) was quarantined "
                    f"fleet-wide as poison; diagnostic bundle at {bundle}",
                ))
                return False
            handle = self.fleet.try_claim(key, job.spec.to_dict())
            if handle is not None:
                job.fleet_claim = handle
                job.events.append(
                    {"kind": "claimed", "epoch": handle.epoch}
                )
                self.fleet.remove_queue_entry(key)
                return True
            await asyncio.sleep(poll)

    def _settle_fleet(self, job: Job) -> None:
        """Release the job's claim to match its settled state.

        Requeued jobs (``queued``: eviction or crash retry) keep their
        claim — they come back through :meth:`_run_job` and skip
        re-acquisition.  ``done``/``failed`` delete the claim (the work
        is settled fleet-wide); ``preempted`` hands it back ownerless,
        with a queue-shard entry, so a peer adopts it.
        """
        if self.fleet is None or job.state == "queued":
            return
        handle, job.fleet_claim = job.fleet_claim, None
        if handle is None:
            return
        if job.state in ("done", "failed"):
            self.fleet.release(handle, done=True)
        else:
            self.fleet.release(handle, done=False, requeue=True)

    async def _run_attempts(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job.attempts += 1
            job.events.append({"kind": "attempt", "n": job.attempts})
            budget = self._graceful_budget(job)
            t0 = time.monotonic()
            fut = loop.run_in_executor(self._pool, self._attempt, job, budget)
            try:
                await fut
            except WorkerDied as died:
                job.spent += time.monotonic() - t0
                if await self._handle_worker_death(job, died):
                    continue
                return
            except PreemptedError as exc:
                job.spent += time.monotonic() - t0
                job.snapshot = str(exc.path)
                # Settles the job (drain/timeout) or requeues it (eviction);
                # either way this invocation is over — a requeued job comes
                # back through the ready queue, behind waiting work.
                self._classify_preemption(job, exc)
                return
            except SnapshotMismatchError as exc:
                # A stale spool snapshot slipped past the load check;
                # _simulate_cell already quarantined it — rerun fresh.
                job.spent += time.monotonic() - t0
                job.events.append(
                    {"kind": "snapshot_discarded", "reason": str(exc)}
                )
                continue
            except Exception as exc:  # noqa: BLE001 - classified below
                job.spent += time.monotonic() - t0
                if await self._maybe_retry(job, exc):
                    continue
                return
            job.spent += time.monotonic() - t0
            if self.pool is not None:
                self.pool.note_ok()
            self._finish_ok(job)
            return

    def _graceful_budget(self, job: Job) -> float | None:
        """Seconds this attempt may run before self-preempting, or None."""
        slices = []
        if self.evict_after is not None:
            slices.append(self.evict_after)
        if self.timeout is not None:
            slices.append(max(0.05, self.timeout - job.spent))
        return min(slices) if slices else None

    def _classify_preemption(self, job: Job, exc: PreemptedError) -> None:
        """Settle (drain/timeout) or requeue (eviction) a preempted job."""
        if self.draining:
            job.state = "preempted"
            job.events.append(
                {"kind": "preempted", "reason": "draining",
                 "snapshot": str(exc.path),
                 "tasks_completed": exc.tasks_completed}
            )
            job.events.close()
            self.preempted += 1
            return
        if self.timeout is not None and job.spent >= self.timeout:
            # Budget exhausted — but the snapshot stays in the spool, so a
            # resubmission of the same config *resumes* rather than restarts.
            self._fail(job, ServiceError(
                "timeout",
                f"job exceeded its {self.timeout}s wall-clock budget "
                f"(checkpointed after {exc.tasks_completed} tasks; a "
                "resubmission will resume from the snapshot)",
            ))
            return
        # Time-slice eviction: back of the queue, snapshot in hand.  The
        # rerun is continuation, not failure — give its attempt back so
        # evictions never eat into the retry budget.
        job.attempts -= 1
        job.evictions += 1
        self.evicted += 1
        job.state = "queued"
        job.events.append(
            {"kind": "evicted", "snapshot": str(exc.path),
             "tasks_completed": exc.tasks_completed}
        )
        assert self._ready is not None
        self._ready.put_nowait(job.id)

    async def _maybe_retry(self, job: Job, exc: Exception) -> bool:
        """Schedule a retry for a transient failure; False when settled."""
        permanent = (
            isinstance(exc, PERMANENT_ERRORS)
            or getattr(exc, "permanent", False)
        )
        # A child-side failure arrives as WorkerJobError carrying the
        # original exception's name; report that, not the wrapper's.
        error_name = getattr(exc, "error_name", type(exc).__name__)
        retryable = (
            not permanent
            and job.attempts <= self.retries
            and not self.draining
        )
        if not retryable:
            self._fail(job, ServiceError(
                "job-failed", f"{error_name}: {exc}"
            ))
            return False
        delay = retry_delay(job.attempts, self.backoff, rng=self._rng)
        job.events.append(
            {"kind": "retry", "after": round(delay, 3),
             "error": error_name}
        )
        if delay:
            await asyncio.sleep(delay)
        return True

    async def _handle_worker_death(self, job: Job, died: WorkerDied) -> bool:
        """Classify a dead/silent worker; True when the job should rerun.

        Requeues under ``max(retries, poison_after - 1)`` — the crash
        budget must always reach the poison threshold, or a default
        ``retries=1`` queue would fail a poison job before diagnosing it.
        The retry resumes byte-identically from the job's last periodic
        snapshot in the spool.
        """
        job.worker_deaths += 1
        self.worker_deaths += 1
        if self.pool is not None:
            self.pool.note_death()
        job.events.append({
            "kind": "worker_died", "reason": died.reason,
            "exitcode": died.exitcode, "signal": died.term_signal,
            "heartbeat_age_s": round(died.heartbeat_age, 3),
        })
        if self.draining:
            if job.state == "running":
                job.state = "preempted"
                job.events.append(
                    {"kind": "preempted", "reason": "draining"}
                )
                job.events.close()
                self.preempted += 1
            return False
        if died.reason == "hard-timeout":
            self._fail(job, ServiceError(
                "timeout",
                f"job exceeded its {self.timeout}s wall-clock budget "
                "and did not reach a task boundary in the grace window",
            ))
            return False
        if job.worker_deaths >= self.poison_after:
            self._quarantine_poison(job, died)
            return False
        if job.attempts <= max(self.retries, self.poison_after - 1):
            if self.pool is not None:
                self.pool.restarts += 1
            delay = retry_delay(job.attempts, self.backoff, rng=self._rng)
            job.events.append(
                {"kind": "retry", "after": round(delay, 3),
                 "error": "WorkerDied", "reason": died.reason}
            )
            if delay:
                await asyncio.sleep(delay)
            return True
        self._fail(job, ServiceError("job-failed", f"WorkerDied: {died}"))
        return False

    def _poison_key(self, spec: RunSpec | SweepSpec) -> str:
        """Stable identity of a submission for the poison registry."""
        blob = json.dumps(spec.to_dict(), sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]

    def _quarantine_poison(self, job: Job, died: WorkerDied) -> None:
        """Quarantine a job that keeps killing workers; write diagnostics.

        The bundle under ``spool/poison/`` names everything an operator
        needs to reproduce offline; the registry entry rejects any
        resubmission of the same spec for this server's lifetime.
        """
        key = self._poison_key(job.spec)
        bundle_dir = self.spool / "poison"
        bundle_dir.mkdir(parents=True, exist_ok=True)
        bundle_path = bundle_dir / f"{key}.json"
        tail, _ = job.events.since(0)
        bundle = {
            "kind": "poison-quarantine",
            "job_key": key,
            "job_id": job.id,
            "label": job.spec.label,
            "spec": job.spec.to_dict(),
            "attempts": job.attempts,
            "worker_deaths": job.worker_deaths,
            "last_death": {
                "reason": died.reason,
                "exitcode": died.exitcode,
                "signal": died.term_signal,
                "heartbeat_age_s": round(died.heartbeat_age, 3),
            },
            "quarantined_at": time.time(),
            "events_tail": tail[-20:],
        }
        with atomic_write(bundle_path) as fh:
            json.dump(bundle, fh, indent=2, sort_keys=True)
        self.poisoned[key] = str(bundle_path)
        if self.fleet is not None:
            # One host diagnosing poison is enough for the whole fleet:
            # publish the bundle so no peer pays the same worker deaths.
            self.fleet.poison(key, bundle)
        self._fail(job, ServiceError(
            "poisoned",
            f"job {job.spec.label!r} killed {job.worker_deaths} worker "
            f"processes and is quarantined as poison; diagnostic bundle "
            f"at {bundle_path}",
        ))

    def _finish_ok(self, job: Job) -> None:
        job.result = self._assemble_result(job)
        job.state = "done"
        job.finished = time.time()
        self.completed += 1
        job.events.append(
            {"kind": "done", "cache_hits": job.cache_hits,
             "simulated": job.simulated}
        )
        job.events.close()

    def _fail(self, job: Job, err: ServiceError) -> None:
        job.error = err.to_dict()
        job.state = "failed"
        job.finished = time.time()
        self.failed += 1
        job.events.append({"kind": "failed", "error": job.error})
        job.events.close()

    def _assemble_result(self, job: Job) -> dict[str, Any]:
        if job.spec.kind == "run":
            return job.partial[job.spec.label]
        from repro.experiments.harness import config_fingerprint
        from repro.experiments.serialize import SCHEMA_VERSION

        return {
            "schema_version": SCHEMA_VERSION,
            "runs": {cell: job.partial[cell] for cell in sorted(job.partial)},
            "failures": [],
            "sweep": {
                "config_sha256": config_fingerprint(job.spec.config()),
                "seed": job.spec.seed,
                "scale": job.spec.scale,
            },
        }

    # ------------------------------------------------------------------
    # the supervision-thread attempt
    # ------------------------------------------------------------------

    def _attempt(self, job: Job, budget: float | None) -> None:
        """Run one attempt of ``job`` in an isolated worker process.

        Blocks the supervision thread inside
        :meth:`WorkerPool.run_attempt` until the child settles; progress
        (``cell_done``, events) is applied to the job record as it
        streams in.  Raises :class:`PreemptedError` on checkpoint-and-
        stop, :class:`WorkerJobError` for child-side job failures, and
        :class:`WorkerDied` when the child crashed or lost its lease —
        the asyncio side classifies all three.
        """
        assert self.pool is not None
        self.pool.run_attempt(job, budget, on_simulated=self._note_simulated)

    def _note_simulated(self) -> None:
        self.simulations_run += 1
