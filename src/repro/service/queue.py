"""Bounded asyncio job queue: retries, backoff, breaker, eviction, cache.

One :class:`JobQueue` owns every job the server accepts.  The robustness
contract, piece by piece:

* **Bounded admission** — a :class:`CircuitBreaker` watches queue depth;
  past ``max_pending`` it opens and submissions are shed with a typed
  ``saturated`` error (HTTP 503 + ``Retry-After``) until the backlog
  drains below the low-water mark.  The server never builds an unbounded
  queue it can only fall over under.
* **Content-addressed dedup** — before any work, each cell of a job is
  looked up in the :class:`~repro.service.cache.ResultCache` under
  :func:`~repro.service.cache.request_key`; duplicate submissions of an
  identical config perform exactly zero new simulation.
* **Bounded retries with backoff + jitter** — transient failures re-run
  the attempt after :func:`repro.experiments.harness.retry_delay`
  (exponential, capped, jittered); permanent errors
  (:data:`~repro.experiments.harness.PERMANENT_ERRORS`) fail immediately
  with a typed ``job-failed`` envelope.
* **Wall-clock budgets and eviction** — every attempt runs under a
  :class:`~repro.snapshot.Checkpointer` deadline, so a job past its
  time slice (``evict_after``) preempts itself *at a task boundary*,
  leaves a resumable snapshot in the spool, and goes to the back of the
  queue; a job past its total ``timeout`` fails (typed ``timeout``) but
  its snapshot survives, so a resubmission resumes instead of restarting.
* **Graceful drain** — :meth:`JobQueue.drain` (the SIGTERM path) preempts
  every in-flight job to its snapshot and refuses new work; ``kill -9``
  loses nothing already cached because cache and spool writes are atomic.

Simulations run on a thread pool.  The simulator is pure Python, so
threads trade parallel speedup for simplicity; process-level parallelism
stays the sweep harness's job.  What matters here is that the event loop
keeps serving status/health requests while workers grind, and that a
worker can always be stopped at a task boundary through its checkpointer.
"""

from __future__ import annotations

import asyncio
import os
import random
import threading
import time
import uuid
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.experiments.harness import PERMANENT_ERRORS, retry_delay
from repro.service.cache import ResultCache, request_key
from repro.service.envelope import ServiceError
from repro.sim.machine import POLICIES
from repro.snapshot import (
    Checkpointer,
    PreemptedError,
    SnapshotMismatchError,
    load_or_quarantine,
)

__all__ = [
    "RunSpec",
    "SweepSpec",
    "Job",
    "JobQueue",
    "CircuitBreaker",
    "EventBuffer",
    "SLOW_ENV",
    "CRASH_ENV",
]

#: chaos hook: a float number of seconds every job attempt sleeps before
#: simulating, so smoke tests can reliably land a signal mid-job.
SLOW_ENV = "REPRO_SERVICE_SLOW"

#: chaos hook: set to a job label ("workload/policy") to make its worker
#: thread kill the whole server process (``os._exit(99)``) before running —
#: the in-process stand-in for a spot-instance disappearing under us.
CRASH_ENV = "REPRO_SERVICE_CRASH"

#: extra seconds past a job's graceful budget before the hard backstop
#: abandons a (presumed hung) worker thread.
HARD_TIMEOUT_GRACE = 30.0

#: job states.  ``preempted`` is terminal for this server instance but not
#: for the work: the snapshot in the spool resumes it on resubmission.
JOB_STATES = ("queued", "running", "done", "failed", "preempted")


def _build_config(scale: int, faults: str, strict: bool):
    from repro.config import scaled_config

    cfg = scaled_config(1.0 / scale)
    if faults or strict:
        cfg = replace(cfg, fault_spec=faults, strict_invariants=strict)
    cfg.validate()
    return cfg


@dataclass(frozen=True)
class RunSpec:
    """One (workload, policy) simulation request."""

    workload: str
    policy: str
    seed: int = 0
    scale: int = 64
    faults: str = ""
    strict: bool = False

    kind = "run"

    def validate(self) -> None:
        from repro.workloads.registry import workload_names

        if self.workload not in workload_names(include_extra=True):
            raise ValueError(f"unknown workload {self.workload!r}")
        if self.policy not in POLICIES:
            raise ValueError(f"unknown policy {self.policy!r}")
        if not isinstance(self.scale, int) or self.scale < 1:
            raise ValueError(f"scale must be a positive integer, got {self.scale!r}")
        if not isinstance(self.seed, int):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        # Build (and therefore validate) the config now so a nonsense
        # fault spec is rejected at submission, not deep inside a worker.
        self.config()

    def config(self):
        return _build_config(self.scale, self.faults, self.strict)

    def cells(self) -> list[tuple[str, str]]:
        return [(self.workload, self.policy)]

    @property
    def label(self) -> str:
        return f"{self.workload}/{self.policy}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "workload": self.workload,
            "policy": self.policy,
            "seed": self.seed,
            "scale": self.scale,
            "faults": self.faults,
            "strict": self.strict,
        }


@dataclass(frozen=True)
class SweepSpec:
    """A workloads x policies grid; each cell caches independently."""

    workloads: tuple[str, ...]
    policies: tuple[str, ...]
    seed: int = 0
    scale: int = 64
    faults: str = ""
    strict: bool = False

    kind = "sweep"

    def validate(self) -> None:
        if not self.workloads or not self.policies:
            raise ValueError("sweep needs at least one workload and one policy")
        for wl, pol in [(w, self.policies[0]) for w in self.workloads] + [
            (self.workloads[0], p) for p in self.policies
        ]:
            RunSpec(wl, pol, self.seed, self.scale,
                    self.faults, self.strict).validate()

    def config(self):
        return _build_config(self.scale, self.faults, self.strict)

    def cells(self) -> list[tuple[str, str]]:
        return [(wl, pol) for wl in self.workloads for pol in self.policies]

    @property
    def label(self) -> str:
        return f"sweep:{len(self.workloads)}x{len(self.policies)}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "workloads": list(self.workloads),
            "policies": list(self.policies),
            "seed": self.seed,
            "scale": self.scale,
            "faults": self.faults,
            "strict": self.strict,
        }


def spec_from_dict(raw: dict[str, Any]) -> RunSpec | SweepSpec:
    """Parse a submission body into a validated spec.

    Raises plain :class:`ValueError` with a message naming the problem;
    the server maps it to a typed ``invalid-request`` envelope.
    """
    if not isinstance(raw, dict):
        raise ValueError("request body must be a JSON object")
    kind = raw.get("kind", "run")
    common = {
        "seed": raw.get("seed", 0),
        "scale": raw.get("scale", 64),
        "faults": raw.get("faults", ""),
        "strict": bool(raw.get("strict", False)),
    }
    if kind == "run":
        if "workload" not in raw or "policy" not in raw:
            raise ValueError("run request needs 'workload' and 'policy'")
        spec: RunSpec | SweepSpec = RunSpec(
            str(raw["workload"]), str(raw["policy"]), **common
        )
    elif kind == "sweep":
        workloads = raw.get("workloads")
        policies = raw.get("policies")
        if not isinstance(workloads, list) or not isinstance(policies, list):
            raise ValueError(
                "sweep request needs 'workloads' and 'policies' lists"
            )
        spec = SweepSpec(
            tuple(str(w) for w in workloads),
            tuple(str(p) for p in policies),
            **common,
        )
    else:
        raise ValueError(f"unknown job kind {kind!r} (expected 'run' or 'sweep')")
    spec.validate()
    return spec


class EventBuffer:
    """Thread-safe, bounded, cursor-addressed progress feed.

    Worker threads append; the NDJSON endpoint reads with
    :meth:`since` and polls until :attr:`closed`.  Past ``capacity`` the
    oldest events are discarded (counted in :attr:`dropped`) — a slow
    consumer can lose history, never correctness.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.dropped = 0
        self._items: list[dict[str, Any]] = []
        self._base = 0  # cursor of _items[0]
        self._lock = threading.Lock()
        self._closed = False

    def append(self, item: dict[str, Any]) -> None:
        with self._lock:
            self._items.append(item)
            overflow = len(self._items) - self.capacity
            if overflow > 0:
                del self._items[:overflow]
                self._base += overflow
                self.dropped += overflow

    def since(self, cursor: int) -> tuple[list[dict[str, Any]], int]:
        """Events at or after ``cursor`` plus the next cursor to poll from."""
        with self._lock:
            start = max(0, cursor - self._base)
            items = self._items[start:]
            return items, self._base + len(self._items)

    def close(self) -> None:
        with self._lock:
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed


@dataclass
class Job:
    """One accepted submission and everything that happened to it."""

    id: str
    spec: RunSpec | SweepSpec
    state: str = "queued"
    attempts: int = 0
    evictions: int = 0
    cache_hits: int = 0      # cells answered from the cache
    simulated: int = 0       # cells this job actually simulated
    cells_done: int = 0
    cells_total: int = 1
    error: dict[str, Any] | None = None
    result: dict[str, Any] | None = None
    resumed_from_task: int | None = None
    snapshot: str | None = None
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    spent: float = 0.0       # wall seconds across attempts
    events: EventBuffer = field(default_factory=EventBuffer)
    #: completed cell results carried across evictions/retries.
    partial: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: the in-flight attempt's checkpointer (set from the worker thread).
    current_ck: Checkpointer | None = None

    def to_dict(self) -> dict[str, Any]:
        """The job record served by status endpoints (result separate)."""
        out: dict[str, Any] = {
            "id": self.id,
            "kind": self.spec.kind,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "attempts": self.attempts,
            "evictions": self.evictions,
            "cache_hits": self.cache_hits,
            "simulated": self.simulated,
            "cells_done": self.cells_done,
            "cells_total": self.cells_total,
            "spent_s": round(self.spent, 3),
        }
        if self.error is not None:
            out["error"] = self.error
        if self.resumed_from_task is not None:
            out["resumed_from_task"] = self.resumed_from_task
        if self.snapshot is not None:
            out["snapshot"] = self.snapshot
        return out

    @property
    def cache_hit(self) -> bool:
        """True when no cell of this job needed new simulation."""
        return self.simulated == 0 and self.state == "done"


class CircuitBreaker:
    """Depth-watching load shedder with hysteresis.

    ``open`` when the backlog reaches ``max_pending``; stays open (shedding
    with ``Retry-After``) until the backlog drains to ``low_water`` so the
    server recovers before accepting more, instead of flapping.
    """

    def __init__(self, max_pending: int, low_water: int | None = None) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.max_pending = max_pending
        self.low_water = (
            max(0, max_pending // 2) if low_water is None else low_water
        )
        if self.low_water >= max_pending:
            raise ValueError("low_water must be below max_pending")
        self.state = "closed"
        self.trips = 0
        self.shed = 0

    def admit(self, depth: int) -> None:
        """Raise a typed ``saturated`` error instead of admitting, when shedding."""
        if self.state == "closed":
            if depth >= self.max_pending:
                self.state = "open"
                self.trips += 1
        elif depth <= self.low_water:
            self.state = "closed"
        if self.state == "open":
            self.shed += 1
            raise ServiceError(
                "saturated",
                f"job queue is saturated ({depth} jobs pending, "
                f"limit {self.max_pending}); retry later",
                retry_after=round(0.5 + 0.25 * depth, 3),
            )


class JobQueue:
    """The job engine behind :class:`~repro.service.server.ServiceServer`."""

    def __init__(
        self,
        *,
        workers: int = 2,
        max_pending: int = 32,
        timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.25,
        evict_after: float | None = None,
        checkpoint_every: int = 0,
        spool_dir: str | Path,
        cache: ResultCache | None = None,
        jitter_seed: int | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff < 0:
            raise ValueError("backoff must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        if evict_after is not None and evict_after <= 0:
            raise ValueError("evict_after must be positive")
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.evict_after = evict_after
        #: also snapshot every N completed tasks, so even ``kill -9``
        #: (which never reaches the drain path) resumes from the last
        #: periodic snapshot instead of restarting.
        self.checkpoint_every = checkpoint_every
        self.spool = Path(spool_dir)
        self.spool.mkdir(parents=True, exist_ok=True)
        self.cache = cache
        self.breaker = CircuitBreaker(max_pending)
        self.jobs: dict[str, Job] = {}
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.evicted = 0
        self.preempted = 0
        self.simulations_run = 0
        self.draining = False
        self._rng = random.Random(jitter_seed)
        self._ready: asyncio.Queue[str] | None = None
        self._tasks: list[asyncio.Task] = []
        self._pool: Any = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self._ready = asyncio.Queue()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-job"
        )
        self._tasks = [
            asyncio.create_task(self._worker_loop(), name=f"jobworker-{i}")
            for i in range(self.workers)
        ]

    async def drain(self, grace: float = 10.0) -> int:
        """Graceful shutdown: checkpoint in-flight work, stop the workers.

        Every running job's checkpointer gets a preempt request; workers
        then stop at their next task boundary with a snapshot in the
        spool.  Jobs still queued are marked ``preempted`` without a
        snapshot (a resubmission simply reruns them — and hits the cache
        for every cell that finished).  Returns the number of jobs that
        did not complete.
        """
        self.draining = True
        deadline = time.monotonic() + grace
        while True:
            # Re-request every iteration: a worker mid-attempt may create
            # its checkpointer *after* drain started, and a requeued job's
            # next attempt gets a fresh checkpointer too.
            running = False
            for job in self.jobs.values():
                if job.state == "running":
                    running = True
                    ck = job.current_ck
                    if ck is not None:
                        ck.request_preempt()
            if not running or time.monotonic() >= deadline:
                break
            await asyncio.sleep(0.05)
        stopped = 0
        for job in self.jobs.values():
            if job.state in ("queued", "running"):
                job.state = "preempted"
                job.events.append({"kind": "preempted", "reason": "draining"})
                job.events.close()
                self.preempted += 1
                stopped += 1
            elif job.state == "preempted":
                stopped += 1
        for task in self._tasks:
            task.cancel()
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        return stopped

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def depth(self) -> int:
        return sum(
            1 for j in self.jobs.values() if j.state in ("queued", "running")
        )

    def submit(self, spec: RunSpec | SweepSpec) -> Job:
        """Admit a job (or answer it from cache); raises :class:`ServiceError`.

        The all-cells-cached fast path completes the job synchronously —
        a duplicate submission never even enters the queue.
        """
        if self.draining:
            raise ServiceError(
                "draining", "server is shutting down; resubmit elsewhere",
                retry_after=5.0,
            )
        if self._ready is None:
            raise ServiceError("internal", "job queue is not started")
        job = Job(
            id=uuid.uuid4().hex[:12], spec=spec,
            cells_total=len(spec.cells()),
        )
        if self._cache_fast_path(job):
            self.submitted += 1
            self.jobs[job.id] = job
            return job
        self.breaker.admit(self.depth())
        self.submitted += 1
        self.jobs[job.id] = job
        job.events.append({"kind": "queued", "label": spec.label})
        self._ready.put_nowait(job.id)
        return job

    def get(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError("not-found", f"unknown job id {job_id!r}")
        return job

    def stats(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "depth": self.depth(),
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "evicted": self.evicted,
            "preempted": self.preempted,
            "simulations_run": self.simulations_run,
            "breaker": {
                "state": self.breaker.state,
                "max_pending": self.breaker.max_pending,
                "trips": self.breaker.trips,
                "shed": self.breaker.shed,
            },
            "draining": self.draining,
        }

    def _cache_fast_path(self, job: Job) -> bool:
        """Complete ``job`` immediately iff every cell is already cached."""
        if self.cache is None:
            return False
        cfg = job.spec.config()
        cells = job.spec.cells()
        keys = {
            cell: request_key(cfg, cell[0], cell[1], job.spec.seed)
            for cell in cells
        }
        if not all(keys[cell] in self.cache for cell in cells):
            return False
        for cell in cells:
            cached = self.cache.get(keys[cell])
            if cached is None:  # corrupt entry surfaced mid-check: recompute
                return False
            job.partial[f"{cell[0]}/{cell[1]}"] = cached
            job.cache_hits += 1
            job.cells_done += 1
            job.events.append(
                {"kind": "cell_done", "cell": f"{cell[0]}/{cell[1]}",
                 "cache_hit": True}
            )
        self._finish_ok(job)
        return True

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    async def _worker_loop(self) -> None:
        assert self._ready is not None
        while True:
            job_id = await self._ready.get()
            job = self.jobs.get(job_id)
            if job is None or job.state != "queued":
                continue
            try:
                await self._run_job(job)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - never kill the loop
                self._fail(job, ServiceError(
                    "internal", f"{type(exc).__name__}: {exc}"
                ))

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        job.state = "running"
        if job.started is None:
            job.started = time.time()
        while True:
            job.attempts += 1
            job.events.append({"kind": "attempt", "n": job.attempts})
            budget = self._graceful_budget(job)
            t0 = time.monotonic()
            fut = loop.run_in_executor(self._pool, self._attempt, job, budget)
            hard = None if budget is None else budget + HARD_TIMEOUT_GRACE
            try:
                await asyncio.wait_for(fut, timeout=hard)
            except asyncio.TimeoutError:
                job.spent += time.monotonic() - t0
                ck = job.current_ck
                if ck is not None:
                    ck.request_preempt()  # stop the thread when it can
                self._fail(job, ServiceError(
                    "timeout",
                    f"job exceeded its {self.timeout}s wall-clock budget "
                    "and did not reach a task boundary in the grace window",
                ))
                return
            except PreemptedError as exc:
                job.spent += time.monotonic() - t0
                job.snapshot = str(exc.path)
                # Settles the job (drain/timeout) or requeues it (eviction);
                # either way this invocation is over — a requeued job comes
                # back through the ready queue, behind waiting work.
                self._classify_preemption(job, exc)
                return
            except SnapshotMismatchError as exc:
                # A stale spool snapshot slipped past the load check;
                # _simulate_cell already quarantined it — rerun fresh.
                job.spent += time.monotonic() - t0
                job.events.append(
                    {"kind": "snapshot_discarded", "reason": str(exc)}
                )
                continue
            except Exception as exc:  # noqa: BLE001 - classified below
                job.spent += time.monotonic() - t0
                if await self._maybe_retry(job, exc):
                    continue
                return
            job.spent += time.monotonic() - t0
            self._finish_ok(job)
            return

    def _graceful_budget(self, job: Job) -> float | None:
        """Seconds this attempt may run before self-preempting, or None."""
        slices = []
        if self.evict_after is not None:
            slices.append(self.evict_after)
        if self.timeout is not None:
            slices.append(max(0.05, self.timeout - job.spent))
        return min(slices) if slices else None

    def _classify_preemption(self, job: Job, exc: PreemptedError) -> None:
        """Settle (drain/timeout) or requeue (eviction) a preempted job."""
        if self.draining:
            job.state = "preempted"
            job.events.append(
                {"kind": "preempted", "reason": "draining",
                 "snapshot": str(exc.path),
                 "tasks_completed": exc.tasks_completed}
            )
            job.events.close()
            self.preempted += 1
            return
        if self.timeout is not None and job.spent >= self.timeout:
            # Budget exhausted — but the snapshot stays in the spool, so a
            # resubmission of the same config *resumes* rather than restarts.
            self._fail(job, ServiceError(
                "timeout",
                f"job exceeded its {self.timeout}s wall-clock budget "
                f"(checkpointed after {exc.tasks_completed} tasks; a "
                "resubmission will resume from the snapshot)",
            ))
            return
        # Time-slice eviction: back of the queue, snapshot in hand.  The
        # rerun is continuation, not failure — give its attempt back so
        # evictions never eat into the retry budget.
        job.attempts -= 1
        job.evictions += 1
        self.evicted += 1
        job.state = "queued"
        job.events.append(
            {"kind": "evicted", "snapshot": str(exc.path),
             "tasks_completed": exc.tasks_completed}
        )
        assert self._ready is not None
        self._ready.put_nowait(job.id)

    async def _maybe_retry(self, job: Job, exc: Exception) -> bool:
        """Schedule a retry for a transient failure; False when settled."""
        permanent = isinstance(exc, PERMANENT_ERRORS)
        retryable = (
            not permanent
            and job.attempts <= self.retries
            and not self.draining
        )
        if not retryable:
            self._fail(job, ServiceError(
                "job-failed", f"{type(exc).__name__}: {exc}"
            ))
            return False
        delay = retry_delay(job.attempts, self.backoff, rng=self._rng)
        job.events.append(
            {"kind": "retry", "after": round(delay, 3),
             "error": type(exc).__name__}
        )
        if delay:
            await asyncio.sleep(delay)
        return True

    def _finish_ok(self, job: Job) -> None:
        job.result = self._assemble_result(job)
        job.state = "done"
        job.finished = time.time()
        self.completed += 1
        job.events.append(
            {"kind": "done", "cache_hits": job.cache_hits,
             "simulated": job.simulated}
        )
        job.events.close()

    def _fail(self, job: Job, err: ServiceError) -> None:
        job.error = err.to_dict()
        job.state = "failed"
        job.finished = time.time()
        self.failed += 1
        job.events.append({"kind": "failed", "error": job.error})
        job.events.close()

    def _assemble_result(self, job: Job) -> dict[str, Any]:
        if job.spec.kind == "run":
            return job.partial[job.spec.label]
        from repro.experiments.harness import config_fingerprint
        from repro.experiments.serialize import SCHEMA_VERSION

        return {
            "schema_version": SCHEMA_VERSION,
            "runs": {cell: job.partial[cell] for cell in sorted(job.partial)},
            "failures": [],
            "sweep": {
                "config_sha256": config_fingerprint(job.spec.config()),
                "seed": job.spec.seed,
                "scale": job.spec.scale,
            },
        }

    # ------------------------------------------------------------------
    # the worker-thread attempt
    # ------------------------------------------------------------------

    def _attempt(self, job: Job, budget: float | None) -> None:
        """Execute every remaining cell of ``job`` (worker thread).

        Cells found in the cache are adopted; the rest simulate under a
        checkpointer whose deadline implements eviction/timeout.  Raises
        :class:`PreemptedError` out of the thread when a slice expires —
        the asyncio side classifies it.
        """
        slow = float(os.environ.get(SLOW_ENV, "0") or 0.0)
        if slow > 0:
            time.sleep(slow)
        if os.environ.get(CRASH_ENV, "") == job.spec.label:
            os._exit(99)
        cfg = job.spec.config()
        deadline = (
            time.monotonic() + budget if budget is not None else None
        )
        for wl, pol in job.spec.cells():
            cell = f"{wl}/{pol}"
            if cell in job.partial:
                continue
            key = request_key(cfg, wl, pol, job.spec.seed)
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                job.partial[cell] = cached
                job.cache_hits += 1
                job.cells_done += 1
                job.events.append(
                    {"kind": "cell_done", "cell": cell, "cache_hit": True}
                )
                continue
            result = self._simulate_cell(job, cfg, wl, pol, key, deadline)
            job.partial[cell] = result
            job.cells_done += 1
            job.events.append(
                {"kind": "cell_done", "cell": cell, "cache_hit": False}
            )

    def _simulate_cell(
        self, job: Job, cfg, wl: str, pol: str, key: str,
        deadline: float | None,
    ) -> dict[str, Any]:
        from repro.api import Session
        from repro.obs.observer import Observer
        from repro.obs.stream import CallbackSink

        snap_path = self.spool / f"{key}.snap"
        ck = Checkpointer(
            snap_path, every=self.checkpoint_every, deadline=deadline
        )
        job.current_ck = ck
        resume_from = None
        if snap_path.is_file() and load_or_quarantine(snap_path) is not None:
            resume_from = snap_path
        observer = Observer(
            sink=CallbackSink(job.events.append), timeline=False
        )
        session = Session(cfg, seed=job.spec.seed)
        try:
            rr = session.run(
                wl, pol, trace=observer, checkpoint=ck,
                resume_from=resume_from,
            )
        except SnapshotMismatchError:
            if resume_from is None:
                raise
            # The spool snapshot belongs to some other identity (stale
            # key collision, older build): quarantine it and run fresh.
            try:
                os.replace(snap_path, str(snap_path) + ".corrupt")
            except OSError:
                pass
            job.events.append(
                {"kind": "snapshot_discarded", "cell": f"{wl}/{pol}"}
            )
            ck = Checkpointer(
                snap_path, every=self.checkpoint_every, deadline=deadline
            )
            job.current_ck = ck
            observer = Observer(
                sink=CallbackSink(job.events.append), timeline=False
            )
            session = Session(cfg, seed=job.spec.seed)
            rr = session.run(wl, pol, trace=observer, checkpoint=ck)
        finally:
            job.current_ck = None
        self.simulations_run += 1
        job.simulated += 1
        result = rr.stats_dict()
        resumed = rr.experiment.extra.get("resumed_from_task")
        if resumed is not None:
            job.resumed_from_task = max(job.resumed_from_task or 0, resumed)
        if self.cache is not None:
            self.cache.put(
                key, result,
                meta={"workload": wl, "policy": pol, "seed": job.spec.seed,
                      "scale": job.spec.scale},
            )
        try:
            snap_path.unlink()
        except OSError:
            pass
        return result
