"""Stdlib-only asyncio HTTP server fronting the job queue.

Deliberately minimal HTTP/1.1: one request per connection
(``Connection: close``), JSON bodies, and every response — success or
failure — a versioned envelope (:mod:`repro.service.envelope`).  A client
never sees a stack trace; the worst case is a typed ``internal`` error.

Routes (all under ``/v1``):

========================  ======================================================
``GET  /v1/health``       queue + cache statistics, breaker state, fleet gauges
``POST /v1/run``          submit one (workload, policy) job
``POST /v1/sweep``        submit a workloads x policies grid job
``GET  /v1/jobs/<id>``    job record (state, attempts, evictions, cache hits)
``GET  /v1/jobs/<id>/result``  the result dict once the job is done
``GET  /v1/jobs/<id>/events``  NDJSON progress stream until the job settles
========================  ======================================================

The events stream opens with a ``hello`` envelope line (so a client can
check the server version before trusting anything else), then one JSON
object per line: sampled observer events from the running simulation plus
job lifecycle markers (``queued``/``attempt``/``cell_done``/``evicted``/
``retry``/``done``/``failed``).

Shutdown: SIGTERM/SIGINT flips the queue to draining (new submissions get
a typed ``draining`` 503), preempts every in-flight job to a spool
snapshot at its next task boundary, then the process exits with
:data:`EXIT_DRAINED` (75, ``EX_TEMPFAIL`` — same convention as the CLI's
preempted runs) so supervisors know to reschedule, not to bury.
"""

from __future__ import annotations

import asyncio
import json
import signal
from pathlib import Path
from typing import Any, Callable

from repro.service.cache import ResultCache
from repro.service.envelope import ServiceError, error_envelope, ok_envelope
from repro.service.fleet import DEFAULT_HOST_LEASE_TIMEOUT, FleetNode
from repro.service.queue import JobQueue, spec_from_dict

__all__ = ["ServiceServer", "EXIT_DRAINED", "MAX_BODY"]

#: exit status after a graceful drain (EX_TEMPFAIL — "try again later").
EXIT_DRAINED = 75

#: request body cap; a simulation request is a few hundred bytes.
MAX_BODY = 1 << 20

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


class ServiceServer:
    """Owns the listening socket, the :class:`JobQueue`, and the cache."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache_dir: str | Path,
        spool_dir: str | Path,
        workers: int = 2,
        max_pending: int = 32,
        timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.25,
        evict_after: float | None = None,
        checkpoint_every: int = 0,
        drain_grace: float = 10.0,
        worker_mem_mb: int | None = None,
        lease_timeout: float = 30.0,
        poison_after: int = 3,
        fleet_dir: str | Path | None = None,
        host_id: str | None = None,
        host_lease_timeout: float = DEFAULT_HOST_LEASE_TIMEOUT,
    ) -> None:
        self.host = host
        self.port = port
        self.drain_grace = drain_grace
        self.fleet: FleetNode | None = None
        if fleet_dir is not None:
            self.fleet = FleetNode(
                fleet_dir,
                host_id=host_id,
                lease_timeout=host_lease_timeout,
                poison_after=poison_after,
            )
        self.cache = ResultCache(
            cache_dir,
            fleet_dir=(
                None if self.fleet is None else self.fleet.results_dir
            ),
        )
        self.queue = JobQueue(
            workers=workers,
            max_pending=max_pending,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            evict_after=evict_after,
            checkpoint_every=checkpoint_every,
            spool_dir=spool_dir,
            cache=self.cache,
            worker_mem_mb=worker_mem_mb,
            lease_timeout=lease_timeout,
            poison_after=poison_after,
            fleet=self.fleet,
        )
        self._server: asyncio.base_events.Server | None = None
        self._drained = asyncio.Event()
        self.exit_code = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the queue workers."""
        await self.queue.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.fleet is not None:
            # The bound port is only known now: refresh the host lease so
            # peers (and ``repro fleet status``) see a dialable address.
            self.fleet.addr = f"{self.host}:{self.port}"
            self.fleet.register()

    async def serve_forever(self, *, install_signals: bool = True) -> int:
        """Run until drained; returns the intended process exit code."""
        if self._server is None:
            await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(
                    sig, lambda s=sig: asyncio.ensure_future(self.shutdown(s))
                )
        await self._drained.wait()
        return self.exit_code

    async def shutdown(self, sig: int | None = None) -> None:
        """Drain: checkpoint in-flight jobs, close the socket, wake the exit."""
        if self.queue.draining:
            return
        stopped = await self.queue.drain(grace=self.drain_grace)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.exit_code = EXIT_DRAINED if (sig is not None or stopped) else 0
        self._drained.set()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, target, body = await self._read_request(reader)
            except ServiceError as err:
                await self._send_json(writer, err.status, error_envelope(err))
                return
            try:
                await self._route(method, target, body, writer)
            except ServiceError as err:
                await self._send_json(writer, err.status, error_envelope(err))
            except Exception as exc:  # noqa: BLE001 - typed envelope, no trace
                err = ServiceError(
                    "internal", f"{type(exc).__name__}: {exc}"
                )
                await self._send_json(writer, err.status, error_envelope(err))
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # client went away mid-exchange; nothing to tell it
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, Any] | None]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ServiceError("invalid-request", "malformed request line")
        method, target = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError as exc:
                    raise ServiceError(
                        "invalid-request", "bad Content-Length header"
                    ) from exc
        if length > MAX_BODY:
            raise ServiceError(
                "invalid-request",
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY}-byte limit",
            )
        body: dict[str, Any] | None = None
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    "invalid-request", f"request body is not valid JSON: {exc}"
                ) from exc
        return method, target, body

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        *,
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        extra = dict(headers or {})
        err = payload.get("error")
        if isinstance(err, dict) and err.get("retry_after") is not None:
            extra["Retry-After"] = str(err["retry_after"])
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        head += [f"{k}: {v}" for k, v in extra.items()]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------

    async def _route(
        self,
        method: str,
        target: str,
        body: dict[str, Any] | None,
        writer: asyncio.StreamWriter,
    ) -> None:
        path = target.split("?", 1)[0].rstrip("/")
        routes: dict[tuple[str, str], Callable] = {
            ("GET", "/v1/health"): self._health,
            ("POST", "/v1/run"): self._submit,
            ("POST", "/v1/sweep"): self._submit,
        }
        handler = routes.get((method, path))
        if handler is not None:
            await handler(method, path, body, writer)
            return
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                raise ServiceError(
                    "method-not-allowed", f"{method} not allowed on {path}"
                )
            await self._jobs(path, writer)
            return
        known_paths = {"/v1/health", "/v1/run", "/v1/sweep"}
        if path in known_paths:
            raise ServiceError(
                "method-not-allowed", f"{method} not allowed on {path}"
            )
        raise ServiceError("not-found", f"no route for {path!r}")

    async def _health(self, method, path, body, writer) -> None:
        await self._send_json(
            writer,
            200,
            ok_envelope({
                "status": "draining" if self.queue.draining else "ok",
                "queue": self.queue.stats(),
                "cache": self.cache.stats(),
                **(
                    {"fleet": self.fleet.status()}
                    if self.fleet is not None else {}
                ),
            }),
        )

    async def _submit(self, method, path, body, writer) -> None:
        if body is None:
            raise ServiceError("invalid-request", "missing JSON request body")
        kind = "sweep" if path.endswith("/sweep") else "run"
        try:
            # warn_legacy: flat (pre-scenario) bodies still work but emit a
            # DeprecationWarning at this external boundary only — internal
            # spec round-trips stay silent.
            spec = spec_from_dict({**body, "kind": kind}, warn_legacy=True)
        except ValueError as exc:
            raise ServiceError("invalid-request", str(exc)) from exc
        job = self.queue.submit(spec)  # raises saturated/draining
        await self._send_json(writer, 200, ok_envelope({"job": job.to_dict()}))

    async def _jobs(self, path: str, writer: asyncio.StreamWriter) -> None:
        parts = path.split("/")  # '', 'v1', 'jobs', <id>[, sub]
        job_id = parts[3] if len(parts) > 3 else ""
        sub = parts[4] if len(parts) > 4 else ""
        job = self.queue.get(job_id)  # raises not-found
        if sub == "":
            await self._send_json(
                writer, 200, ok_envelope({"job": job.to_dict()})
            )
        elif sub == "result":
            if job.state == "failed":
                raise ServiceError.from_dict(job.error or {})
            if job.state != "done" or job.result is None:
                raise ServiceError(
                    "not-found",
                    f"job {job_id} has no result yet (state {job.state!r})",
                )
            await self._send_json(
                writer, 200,
                ok_envelope({"job": job.to_dict(), "result": job.result}),
            )
        elif sub == "events":
            await self._stream_events(job, writer)
        else:
            raise ServiceError("not-found", f"no route for {path!r}")

    async def _stream_events(self, job, writer: asyncio.StreamWriter) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))

        def line(obj: dict[str, Any]) -> bytes:
            return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")

        writer.write(line(ok_envelope({"kind": "hello", "job": job.id})))
        await writer.drain()
        cursor = 0
        while True:
            items, cursor = job.events.since(cursor)
            for item in items:
                writer.write(line(item))
            if items:
                await writer.drain()
            if job.events.closed and not items:
                break
            if not items:
                await asyncio.sleep(0.05)
