"""Supervised multi-process worker pool: crash isolation + heartbeat leases.

The PR-6 queue executed every simulation on a ``ThreadPoolExecutor``
inside the server process, so one segfaulting, OOM-ing, or runaway job
took the whole service down with it.  This module moves each job attempt
into a **spawn-isolated subprocess** supervised from the (still
thread-based) attempt slot:

* **Process-per-attempt** — a fresh ``spawn`` child per attempt: no
  inherited locks, no shared heap, and a crash costs exactly one attempt.
  The child streams progress over a one-way pipe (``ready`` /
  ``cell_done`` / ``event`` / terminal ``ok``/``preempted``/``error``)
  and writes results/snapshots to the shared cache/spool directories —
  both atomic, so a child dying mid-write leaves either the old bytes or
  the new bytes, never a torn file the parent would trust.
* **Heartbeat lease** — the child stamps a shared array at every
  dispatch boundary (through a :class:`Checkpointer` subclass).  The
  supervisor kills any child silent past ``lease_timeout``: a hung
  worker is indistinguishable from a dead one, and both become a
  :class:`WorkerDied` the queue requeues under its retry budget.
  Lease age is judged on ``time.monotonic()`` deltas (parent and child
  share one host, so one monotonic clock) — an NTP step can slew the
  wall clock by minutes without making a healthy worker look dead; the
  wall-clock stamp rides along for diagnostics only.
  Byte-identical resume comes for free: the retry attempt resumes from
  the dead worker's last periodic snapshot in the spool (the PR-5
  replay-journal guarantee).
* **Memory rlimit** — ``mem_limit_mb`` applies ``RLIMIT_AS`` in the
  child, so a leaking simulation gets ``MemoryError`` (a classified,
  retryable failure) instead of inviting the host OOM killer to shoot
  the server.
* **Ready gating** — the spawn bootstrap imports the whole package
  before the child installs its SIGTERM handler.  The supervisor never
  forwards a preempt signal until the child reports ``ready``, so a
  drain can't kill a child mid-import and lose the checkpoint the drain
  exists to write.
* **Orphan reaping** — the child arms ``PR_SET_PDEATHSIG`` (SIGTERM on
  parent death), so ``kill -9`` of the server stops its children at the
  next task boundary instead of leaving orphans racing the restarted
  server for the spool.

The queue layers poison quarantine and graceful concurrency degradation
on top (see :mod:`repro.service.queue`); failure *injection* for all of
it lives in :mod:`repro.failpoints` (sites ``worker.crash``,
``worker.hang``, ``worker.oom``, ``worker.start.crash`` fire inside the
child at deterministic task boundaries).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro import failpoints
from repro.snapshot import Checkpointer, PreemptedError

__all__ = [
    "HARD_TIMEOUT_GRACE",
    "WorkerDied",
    "WorkerJobError",
    "AttemptHandle",
    "WorkerPool",
]

#: extra seconds past a job's graceful budget before the supervisor stops
#: waiting for a checkpoint and kills the (presumed wedged) worker.
HARD_TIMEOUT_GRACE = 30.0

#: how long a worker may go without a heartbeat before its lease expires.
DEFAULT_LEASE_TIMEOUT = 30.0

#: heartbeat array slots: lease decisions read the monotonic stamp; the
#: wall stamp exists only so humans can line logs up against it.
_HB_MONO = 0
_HB_WALL = 1


def _stamp(hb: Any) -> None:
    """Stamp the heartbeat lease (child side, every task boundary)."""
    hb[_HB_MONO] = time.monotonic()
    hb[_HB_WALL] = time.time()


class WorkerDied(Exception):
    """A worker process died (or was killed) without settling its job.

    ``reason`` is one of ``"crashed"`` (exited without a terminal
    message), ``"lease-expired"`` (heartbeat went silent), or
    ``"hard-timeout"`` (never reached a task boundary in the grace
    window).  ``exitcode`` is the raw ``Process.exitcode`` (negative =
    killed by that signal); ``term_signal`` extracts the signal number.
    """

    def __init__(
        self,
        reason: str,
        *,
        exitcode: int | None = None,
        heartbeat_age: float = 0.0,
    ) -> None:
        self.reason = reason
        self.exitcode = exitcode
        self.term_signal = (
            -exitcode if exitcode is not None and exitcode < 0 else None
        )
        self.heartbeat_age = heartbeat_age
        detail = f"worker {reason}"
        if self.term_signal is not None:
            detail += f" (signal {self.term_signal})"
        elif exitcode is not None:
            detail += f" (exit code {exitcode})"
        detail += f"; last heartbeat {heartbeat_age:.1f}s ago"
        super().__init__(detail)


class WorkerJobError(Exception):
    """The job itself failed inside the worker (the worker survived).

    Re-raised in the supervisor with the child-side exception's name and
    permanence classification attached, so the queue's retry logic treats
    it exactly as it treated in-process exceptions.
    """

    def __init__(self, error_name: str, message: str, permanent: bool) -> None:
        super().__init__(message)
        self.error_name = error_name
        self.permanent = permanent


class AttemptHandle:
    """The supervisor's view of one in-flight child attempt.

    Duck-types the one :class:`Checkpointer` method the queue's drain
    loop uses (:meth:`request_preempt`), so ``job.current_ck`` keeps
    working unchanged: a preempt request is forwarded to the child as
    SIGTERM once it reports ready.
    """

    def __init__(self, proc: multiprocessing.process.BaseProcess, hb: Any) -> None:
        self.proc = proc
        self.hb = hb
        self.ready = False
        self.preempt_requested = False
        self.signalled = False

    def request_preempt(self) -> None:
        """Signal-handler-safe: only sets a flag; the supervision loop
        forwards SIGTERM (repeat calls are idempotent)."""
        self.preempt_requested = True

    def heartbeat_age(self) -> float:
        """Seconds since the child's last stamp, on the shared monotonic
        clock — immune to wall-clock (NTP) steps in either direction."""
        return max(0.0, time.monotonic() - self.hb[_HB_MONO])

    def heartbeat_wall(self) -> float:
        """The wall-clock time of the last stamp — diagnostics only,
        never used for lease-expiry decisions."""
        return self.hb[_HB_WALL]


class WorkerPool:
    """Spawns, supervises, and accounts for per-attempt worker processes.

    Not a pool of long-lived processes: isolation is the point, so every
    attempt gets a fresh child (~0.4 s spawn+import on this codebase —
    noise against multi-second simulations).  What is pooled is the
    *accounting*: death/restart counters and the adaptive
    :attr:`concurrency` the queue's worker loops respect.
    """

    def __init__(
        self,
        workers: int,
        *,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        mem_limit_mb: int | None = None,
        spool: str | Path,
        cache_dir: str | Path | None = None,
        checkpoint_every: int = 0,
        degrade_after: int = 2,
        degrade_window: float = 60.0,
        mp_context: str = "spawn",
        fleet_dir: str | Path | None = None,
        fleet_host: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if mem_limit_mb is not None and mem_limit_mb < 1:
            raise ValueError("mem_limit_mb must be >= 1")
        self.workers = workers
        self.lease_timeout = lease_timeout
        self.mem_limit_mb = mem_limit_mb
        self.spool = str(spool)
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        self.checkpoint_every = checkpoint_every
        self.degrade_after = degrade_after
        self.degrade_window = degrade_window
        self._mp_context = mp_context
        self.fleet_dir = None if fleet_dir is None else str(fleet_dir)
        self.fleet_host = fleet_host
        #: wired to FleetNode.note_fenced by the server in fleet mode, so
        #: a child's fence loss shows up in the /v1/health gauges.
        self.on_fenced: Callable[[], None] | None = None
        #: current admission width; sheds toward 1 under repeated worker
        #: deaths, recovers toward ``workers`` on healthy completions.
        self.concurrency = workers
        self.spawned = 0
        self.deaths = 0
        self.restarts = 0
        self.lease_expired = 0
        self.completions = 0
        self._death_times: list[float] = []
        self._attempts: dict[str, AttemptHandle] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # supervision (runs in the queue's attempt-slot thread, blocking)
    # ------------------------------------------------------------------

    def run_attempt(
        self,
        job: Any,
        budget: float | None,
        on_simulated: Callable[[], None] | None = None,
    ) -> None:
        """Run one attempt of ``job`` in a fresh child; block until settled.

        Mirrors the old in-thread attempt's contract: returns on success
        (``job.partial``/counters updated from ``cell_done`` messages),
        raises :class:`PreemptedError` on checkpoint-and-stop,
        :class:`WorkerJobError` for child-side job failures, and
        :class:`WorkerDied` when the child vanished or lost its lease.
        """
        ctx = multiprocessing.get_context(self._mp_context)
        recv, send = ctx.Pipe(duplex=False)
        # [monotonic, wall]: CLOCK_MONOTONIC is per-boot, so parent and
        # child (same host by construction) read the same timeline.
        hb = ctx.Array("d", [time.monotonic(), time.time()], lock=False)
        payload = self._payload(job, budget)
        proc = ctx.Process(
            target=_attempt_main, args=(send, hb, payload),
            name=f"repro-worker-{job.id}-a{job.attempts}", daemon=True,
        )
        handle = AttemptHandle(proc, hb)
        with self._lock:
            self.spawned += 1
            self._attempts[job.id] = handle
        job.current_ck = handle
        proc.start()
        send.close()  # child holds the only write end: EOF tracks its death
        start = time.monotonic()
        hard_deadline = (
            None if budget is None else start + budget + HARD_TIMEOUT_GRACE
        )
        terminal: tuple | None = None
        try:
            while terminal is None:
                if handle.preempt_requested and handle.ready and not handle.signalled:
                    handle.signalled = True
                    _soft_kill(proc)
                got = recv.poll(0.05)
                if got:
                    try:
                        msg = recv.recv()
                    except (EOFError, OSError):
                        break
                    terminal = self._handle_message(job, handle, msg, on_simulated)
                    continue
                age = handle.heartbeat_age()
                if hard_deadline is not None and time.monotonic() >= hard_deadline:
                    _hard_kill(proc)
                    raise WorkerDied(
                        "hard-timeout", exitcode=proc.exitcode, heartbeat_age=age
                    )
                if age > self.lease_timeout:
                    with self._lock:
                        self.lease_expired += 1
                    _hard_kill(proc)
                    raise WorkerDied(
                        "lease-expired", exitcode=proc.exitcode, heartbeat_age=age
                    )
                if not proc.is_alive():
                    while recv.poll(0):  # drain what the child flushed dying
                        try:
                            msg = recv.recv()
                        except (EOFError, OSError):
                            break
                        terminal = self._handle_message(
                            job, handle, msg, on_simulated
                        )
                        if terminal is not None:
                            break
                    break
            if terminal is None:
                proc.join(timeout=5.0)
                raise WorkerDied(
                    "crashed",
                    exitcode=proc.exitcode,
                    heartbeat_age=handle.heartbeat_age(),
                )
        finally:
            job.current_ck = None
            with self._lock:
                self._attempts.pop(job.id, None)
            if proc.is_alive():
                _hard_kill(proc)
            proc.join(timeout=5.0)
            recv.close()
        kind = terminal[0]
        if kind == "ok":
            with self._lock:
                self.completions += 1
            return
        if kind == "preempted":
            raise PreemptedError(Path(terminal[1]), terminal[2])
        if kind == "error":
            raise WorkerJobError(terminal[1], terminal[2], terminal[3])
        raise WorkerDied(  # unknown terminal: treat as protocol corruption
            "crashed", exitcode=proc.exitcode, heartbeat_age=handle.heartbeat_age()
        )

    def _payload(self, job: Any, budget: float | None) -> dict[str, Any]:
        done = set(job.partial)
        remaining = [
            [wl, pol] for wl, pol in job.spec.cells()
            if f"{wl}/{pol}" not in done
        ]
        claim = getattr(job, "fleet_claim", None)
        fleet = None
        if self.fleet_dir is not None and claim is not None:
            # The child re-checks this (dir, key, epoch) fence right
            # before every shared-store publish: once a peer reclaims the
            # claim at a higher epoch, this attempt can no longer write.
            fleet = {
                "dir": self.fleet_dir,
                "host_id": self.fleet_host,
                "job_key": claim.key,
                "epoch": claim.epoch,
            }
        return {
            "spec": job.spec.to_dict(),
            "label": job.spec.label,
            "attempt": job.attempts,
            "cells": remaining,
            "budget": budget,
            "checkpoint_every": self.checkpoint_every,
            "spool": self.spool,
            "cache_dir": self.cache_dir,
            "mem_limit_mb": self.mem_limit_mb,
            "parent_pid": os.getpid(),
            "failpoints": failpoints.active_spec(),
            "fleet": fleet,
        }

    def _handle_message(
        self,
        job: Any,
        handle: AttemptHandle,
        msg: tuple,
        on_simulated: Callable[[], None] | None,
    ) -> tuple | None:
        """Apply one child message to the job record; return terminal msgs."""
        kind = msg[0]
        if kind == "ready":
            handle.ready = True
            return None
        if kind == "event":
            job.events.append(msg[1])
            return None
        if kind == "snapshot_discarded":
            job.events.append({"kind": "snapshot_discarded", "cell": msg[1]})
            return None
        if kind == "fleet_fenced":
            job.events.append({"kind": "fleet_fenced", "cell": msg[1]})
            if self.on_fenced is not None:
                self.on_fenced()
            return None
        if kind == "cell_done":
            _, cell, result, cache_hit, resumed = msg
            job.partial[cell] = result
            job.cells_done += 1
            if cache_hit:
                job.cache_hits += 1
            else:
                job.simulated += 1
                if on_simulated is not None:
                    on_simulated()
            if resumed is not None:
                job.resumed_from_task = max(job.resumed_from_task or 0, resumed)
            job.events.append(
                {"kind": "cell_done", "cell": cell, "cache_hit": cache_hit}
            )
            return None
        return msg  # ok / preempted / error settle the attempt

    # ------------------------------------------------------------------
    # health accounting
    # ------------------------------------------------------------------

    def note_death(self) -> None:
        """Record a worker death; shed concurrency under a death burst.

        ``degrade_after`` deaths inside ``degrade_window`` seconds drop
        :attr:`concurrency` one step (floor 1) and reset the window —
        repeated crashes serialize the pool instead of crash-looping it
        at full width.
        """
        now = time.monotonic()
        with self._lock:
            self.deaths += 1
            self._death_times.append(now)
            cutoff = now - self.degrade_window
            self._death_times = [t for t in self._death_times if t >= cutoff]
            if (
                len(self._death_times) >= self.degrade_after
                and self.concurrency > 1
            ):
                self.concurrency -= 1
                self._death_times.clear()

    def note_ok(self) -> None:
        """A healthy completion with no recent deaths restores one step."""
        now = time.monotonic()
        with self._lock:
            cutoff = now - self.degrade_window
            self._death_times = [t for t in self._death_times if t >= cutoff]
            if not self._death_times and self.concurrency < self.workers:
                self.concurrency += 1

    def kill_all(self) -> int:
        """SIGKILL every live child (the drain deadline's backstop).

        Joins each killed child briefly so the caller observes them
        reaped — a SIGKILL'd process exits immediately, so the join is
        bounded in practice; the timeout only guards kernel pathology.
        """
        killed = 0
        with self._lock:
            handles = list(self._attempts.values())
        for handle in handles:
            if handle.proc.is_alive():
                _hard_kill(handle.proc)
                killed += 1
        for handle in handles:
            handle.proc.join(timeout=5.0)
        return killed

    def stats(self) -> dict[str, Any]:
        with self._lock:
            busy = len(self._attempts)
            alive = sum(1 for h in self._attempts.values() if h.proc.is_alive())
            return {
                "configured": self.workers,
                "concurrency": self.concurrency,
                "busy": busy,
                "alive": alive,
                "spawned": self.spawned,
                "deaths": self.deaths,
                "restarts": self.restarts,
                "lease_expired": self.lease_expired,
                "completions": self.completions,
                "lease_timeout": self.lease_timeout,
                "mem_limit_mb": self.mem_limit_mb,
            }


def _soft_kill(proc: multiprocessing.process.BaseProcess) -> None:
    try:
        if proc.pid is not None:
            os.kill(proc.pid, signal.SIGTERM)
    except (ProcessLookupError, OSError):
        pass


def _hard_kill(proc: multiprocessing.process.BaseProcess) -> None:
    try:
        proc.kill()
    except (ValueError, OSError):  # already reaped
        pass


# ---------------------------------------------------------------------------
# child side
# ---------------------------------------------------------------------------


def _set_pdeathsig() -> None:
    """Arm PR_SET_PDEATHSIG=SIGTERM (Linux): if the server is kill -9'd,
    the child checkpoints at its next boundary instead of racing the
    restarted server for the spool as an orphan.  Best-effort elsewhere."""
    try:
        import ctypes

        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, signal.SIGTERM)  # PR_SET_PDEATHSIG = 1
    except (OSError, AttributeError, TypeError):
        pass


def _safe_send(conn: Any, msg: tuple) -> None:
    """Send, swallowing a vanished parent — the child finishes its atomic
    cache/spool writes either way, and those are what resume reads."""
    try:
        conn.send(msg)
    except (BrokenPipeError, OSError):
        pass


def _attempt_main(conn: Any, hb: Any, payload: dict[str, Any]) -> None:
    """Child entry point: run the attempt's remaining cells, stream progress.

    Ordering here is the crash-safety contract: pdeathsig + rlimit first
    (so even an early wreck is contained), then signal handlers, then the
    ``ready`` message — only after which the parent will forward SIGTERM.
    """
    _set_pdeathsig()
    parent = payload.get("parent_pid")
    if parent and os.getppid() != parent:
        os._exit(98)  # orphaned during spawn: nobody is listening
    if payload.get("mem_limit_mb"):
        try:
            import resource

            limit = int(payload["mem_limit_mb"]) << 20
            resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
        except (ImportError, ValueError, OSError):
            pass
    if payload.get("failpoints"):
        spec, seed = payload["failpoints"]
        failpoints.configure(spec, seed)

    # The current cell's checkpointer, shared with the SIGTERM handler.
    holder: dict[str, Any] = {"ck": None, "preempt": False}

    def _on_term(signum: int, frame: Any) -> None:
        holder["preempt"] = True
        ck = holder["ck"]
        if ck is not None:
            ck.request_preempt()

    signal.signal(signal.SIGTERM, _on_term)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    _stamp(hb)
    _safe_send(conn, ("ready",))
    fctx = {"job": payload["label"], "attempt": payload["attempt"]}
    try:
        failpoints.fire("worker.start.crash", **fctx)
        failpoints.fire("queue.attempt.slow", **fctx)
        failpoints.fire("queue.attempt.crash", **fctx)
        _run_cells(conn, hb, holder, payload, fctx)
    except PreemptedError as exc:
        _safe_send(conn, ("preempted", str(exc.path), exc.tasks_completed))
        conn.close()
        os._exit(75)  # EX_TEMPFAIL, same as the server's drain exit
    except BaseException as exc:  # noqa: BLE001 - classified by the parent
        from repro.experiments.harness import PERMANENT_ERRORS

        _safe_send(
            conn,
            ("error", type(exc).__name__, str(exc),
             isinstance(exc, PERMANENT_ERRORS)),
        )
        conn.close()
        os._exit(1)
    _safe_send(conn, ("ok",))
    conn.close()
    os._exit(0)


def _run_cells(
    conn: Any, hb: Any, holder: dict[str, Any], payload: dict[str, Any],
    fctx: dict[str, Any],
) -> None:
    # Heavy imports happen here, after ready: the budget deadline below is
    # computed after them, so a short time slice buys simulation, not
    # interpreter startup.
    from repro.service.cache import ResultCache, request_key
    from repro.service.queue import spec_from_dict

    spec = spec_from_dict(payload["spec"])
    cfg = spec.config()
    fleet = payload.get("fleet")
    cache = (
        ResultCache(
            payload["cache_dir"],
            fleet_dir=(
                Path(fleet["dir"]) / "results" if fleet is not None else None
            ),
        )
        if payload.get("cache_dir") else None
    )
    spool = Path(payload["spool"])
    budget = payload["budget"]
    deadline = time.monotonic() + budget if budget is not None else None
    for wl, pol in payload["cells"]:
        cell = f"{wl}/{pol}"
        _stamp(hb)
        key = request_key(cfg, wl, pol, spec.seed)
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            _safe_send(conn, ("cell_done", cell, cached, True, None))
            continue
        result, resumed = _simulate(
            conn, hb, holder, payload, fctx, cfg, spec, wl, pol, key,
            spool, cache, deadline,
        )
        _safe_send(conn, ("cell_done", cell, result, False, resumed))


class _WorkerCheckpointer(Checkpointer):
    """Checkpointer that also stamps the heartbeat lease and evaluates
    worker-scoped failpoints at every live dispatch boundary."""

    def __init__(self, *args: Any, hb: Any = None,
                 fctx: dict[str, Any] | None = None, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._hb = hb
        self._fctx = fctx or {}
        # Activation is fixed for the child's lifetime; cache the check so
        # the uninjected hot path pays one attribute test per dispatch.
        self._fp_active = failpoints.get().active

    def after_dispatch(self, executor: Any, name: str, duration: int) -> None:
        if self._hb is not None:
            _stamp(self._hb)
        if self._fp_active:
            ctx = dict(self._fctx, task=executor.machine.tasks_completed)
            failpoints.fire("worker.crash", **ctx)
            failpoints.fire("worker.hang", **ctx)
            failpoints.fire("worker.oom", **ctx)
        super().after_dispatch(executor, name, duration)


def _simulate(
    conn: Any, hb: Any, holder: dict[str, Any], payload: dict[str, Any],
    fctx: dict[str, Any], cfg: Any, spec: Any, wl: str, pol: str, key: str,
    spool: Path, cache: Any, deadline: float | None,
) -> tuple[dict[str, Any], int | None]:
    from repro.api import Session
    from repro.obs.observer import Observer
    from repro.obs.stream import CallbackSink
    from repro.snapshot import SnapshotMismatchError, load_or_quarantine

    snap_path = spool / f"{key}.snap"

    def make_ck() -> _WorkerCheckpointer:
        ck = _WorkerCheckpointer(
            snap_path, every=payload["checkpoint_every"], deadline=deadline,
            hb=hb, fctx=fctx,
        )
        holder["ck"] = ck
        if holder["preempt"]:  # SIGTERM landed before this cell started
            ck.request_preempt()
        return ck

    def make_observer() -> Any:
        return Observer(
            sink=CallbackSink(lambda evt: _safe_send(conn, ("event", evt))),
            timeline=False,
        )

    ck = make_ck()
    resume_from = None
    if snap_path.is_file() and load_or_quarantine(snap_path) is not None:
        resume_from = snap_path
    session = Session(cfg, seed=spec.seed)
    try:
        rr = session.run(
            wl, pol, trace=make_observer(), checkpoint=ck,
            resume_from=resume_from,
        )
    except SnapshotMismatchError:
        if resume_from is None:
            raise
        # The spool snapshot belongs to some other identity (stale key
        # collision, older build): quarantine it and run fresh.
        try:
            os.replace(snap_path, str(snap_path) + ".corrupt")
        except OSError:
            pass
        _safe_send(conn, ("snapshot_discarded", f"{wl}/{pol}"))
        ck = make_ck()
        session = Session(cfg, seed=spec.seed)
        rr = session.run(wl, pol, trace=make_observer(), checkpoint=ck)
    finally:
        holder["ck"] = None
    result = rr.stats_dict()
    resumed = rr.experiment.extra.get("resumed_from_task")
    if cache is not None:
        fleet = payload.get("fleet")
        fence = None
        if fleet is not None:
            from repro.service.fleet import claim_matches

            def fence() -> bool:
                # Re-read the claim file at the last possible moment: a
                # peer that reclaimed this job holds a higher epoch, so a
                # stale attempt fails here and never publishes.
                return claim_matches(
                    fleet["dir"], fleet["job_key"],
                    fleet["host_id"], fleet["epoch"],
                )

        fenced_before = cache.fleet_fenced
        cache.put(
            key, result,
            meta={"workload": wl, "policy": pol, "seed": spec.seed,
                  "scale": spec.scale},
            fence=fence,
        )
        if cache.fleet_fenced > fenced_before:
            # Fenced: a peer owns this job now.  Leave the shared spool
            # snapshot alone — it is the new owner's resume point.
            _safe_send(conn, ("fleet_fenced", f"{wl}/{pol}"))
            return result, resumed
    try:
        snap_path.unlink()
    except OSError:
        pass
    return result, resumed
