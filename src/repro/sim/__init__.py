"""Machine model: the composition of cores, caches, NoC, DRAM and the
active NUCA policy into one trace-driven simulator (the gem5 stand-in)."""

from repro.sim.dram import MemoryControllers
from repro.sim.latency import LatencyModel
from repro.sim.machine import Machine, MachineStats, build_machine

__all__ = ["Machine", "MachineStats", "build_machine", "MemoryControllers", "LatencyModel"]
