"""Off-chip memory controllers with a row-buffer model.

Four controllers sit at the mesh corners (a common tiled-CMP arrangement);
physical blocks interleave across them.  LLC-bypassed accesses under
TD-NUCA travel core <-> controller directly; LLC misses travel
bank <-> controller.

Each controller keeps its last-open DRAM row: an access to the same row
costs :attr:`LatencyConfig.dram_row_hit` cycles instead of the full
activate+read latency.  Bulk sequential sweeps — streaming fills, the
flush-then-refetch of whole dependencies — therefore mostly pay row-hit
latency, as on real hardware.  (Task-atomic trace interleaving makes the
model slightly optimistic about row locality; see DESIGN.md.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import LatencyConfig
from repro.noc.topology import Mesh

__all__ = ["MemoryControllers", "DramStats"]


@dataclass
class DramStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    # Transient-fault accounting (zero on fault-free runs).
    transient_errors: int = 0
    retries: int = 0
    retry_cycles: int = 0
    retries_exhausted: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def row_hit_ratio(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


class MemoryControllers:
    """Corner-tile memory controllers with block interleaving."""

    def __init__(self, mesh: Mesh, latency: LatencyConfig | None = None) -> None:
        self.mesh = mesh
        self.latency = latency if latency is not None else LatencyConfig()
        corners = [
            mesh.tile_at(0, 0),
            mesh.tile_at(mesh.width - 1, 0),
            mesh.tile_at(0, mesh.height - 1),
            mesh.tile_at(mesh.width - 1, mesh.height - 1),
        ]
        # Deduplicate for degenerate 1xN meshes.
        self.tiles: tuple[int, ...] = tuple(dict.fromkeys(corners))
        self.stats = DramStats()
        self._open_row: dict[int, int] = {}
        # Transient-error injection (installed by FaultInjector).
        self._error_p: float = 0.0
        self._max_retries: int = 0
        self._rng = None
        # Observability hook (repro.obs.Observer.attach plants it).  Only
        # the fault slow path (_retry_penalty) consults it, so the inlined
        # fault-free DRAM fast path is untouched.
        self.obs = None

    def set_fault_model(
        self, probability: float, max_retries: int, rng, retry_cost=None
    ) -> None:
        """Enable per-access transient errors.

        Every access independently fails with ``probability`` and is
        retried; each retry costs a full re-access plus exponential
        backoff (:meth:`LatencyConfig` ``dram_retry_backoff``), charged
        into the returned latency and counted in :class:`DramStats`.
        After ``max_retries`` consecutive failures the access completes
        anyway (the controller's last-resort correction path) and is
        counted in ``retries_exhausted``.
        """
        if not 0.0 <= probability < 1.0:
            raise ValueError("error probability must be in [0, 1)")
        if max_retries <= 0:
            raise ValueError("max_retries must be positive")
        self._error_p = probability
        self._max_retries = max_retries
        self._rng = rng
        # ``retry_cost(attempt, base_cycles)`` — normally
        # :meth:`repro.sim.latency.LatencyModel.dram_retry`.
        self._retry_cost = retry_cost

    def controller_for(self, block: int) -> int:
        """Tile of the controller owning ``block``."""
        return self.tiles[block % len(self.tiles)]

    # --- checkpoint/restore ---

    def state_dict(self) -> dict:
        """Row-buffer and counter state.  The fault model (probability,
        retry budget, shared RNG) is reinstalled by the injector on rebuild
        and is not duplicated here."""
        return {
            "stats": {
                "reads": self.stats.reads,
                "writes": self.stats.writes,
                "row_hits": self.stats.row_hits,
                "row_misses": self.stats.row_misses,
                "transient_errors": self.stats.transient_errors,
                "retries": self.stats.retries,
                "retry_cycles": self.stats.retry_cycles,
                "retries_exhausted": self.stats.retries_exhausted,
            },
            "open_row": list(self._open_row.items()),
        }

    def load_state_dict(self, state: dict) -> None:
        self.stats = DramStats(**state["stats"])
        self._open_row = {int(mc): int(row) for mc, row in state["open_row"]}

    def _access(self, block: int) -> tuple[int, int]:
        mc = block % len(self.tiles)
        row = block // self.latency.dram_row_blocks
        if self._open_row.get(mc) == row:
            self.stats.row_hits += 1
            cycles = self.latency.dram_row_hit
        else:
            self.stats.row_misses += 1
            self._open_row[mc] = row
            cycles = self.latency.dram
        if self._error_p:
            cycles += self._retry_penalty(cycles)
        return self.tiles[mc], cycles

    def _retry_penalty(self, base_cycles: int) -> int:
        """Cycles added by transient errors on one access (0 normally)."""
        attempts = 0
        exhausted = False
        st = self.stats
        while self._rng.random() < self._error_p:
            attempts += 1
            if attempts >= self._max_retries:
                st.retries_exhausted += 1
                exhausted = True
                break
        if not attempts:
            return 0
        st.transient_errors += 1
        st.retries += attempts
        penalty = 0
        backoff = self.latency.dram_retry_backoff
        for attempt in range(1, attempts + 1):
            if self._retry_cost is not None:
                penalty += self._retry_cost(attempt, base_cycles)
            else:
                penalty += base_cycles + (backoff << (attempt - 1))
        st.retry_cycles += penalty
        if self.obs is not None:
            self.obs.dram_retry(attempts, penalty, exhausted)
        return penalty

    def read(self, block: int) -> tuple[int, int]:
        """Record a DRAM read; returns ``(controller tile, cycles)``.

        The row-buffer model is inlined (rather than delegated to
        :meth:`_access`) because reads sit on the per-reference hot path.
        """
        st = self.stats
        st.reads += 1
        mc = block % len(self.tiles)
        row = block // self.latency.dram_row_blocks
        open_row = self._open_row
        if open_row.get(mc) == row:
            st.row_hits += 1
            cycles = self.latency.dram_row_hit
        else:
            st.row_misses += 1
            open_row[mc] = row
            cycles = self.latency.dram
        if self._error_p:
            cycles += self._retry_penalty(cycles)
        return self.tiles[mc], cycles

    def write(self, block: int) -> tuple[int, int]:
        """Record a DRAM write; returns ``(controller tile, cycles)``.

        Inlined like :meth:`read` — writebacks ride the same hot path.
        """
        st = self.stats
        st.writes += 1
        mc = block % len(self.tiles)
        row = block // self.latency.dram_row_blocks
        open_row = self._open_row
        if open_row.get(mc) == row:
            st.row_hits += 1
            cycles = self.latency.dram_row_hit
        else:
            st.row_misses += 1
            open_row[mc] = row
            cycles = self.latency.dram
        if self._error_p:
            cycles += self._retry_penalty(cycles)
        return self.tiles[mc], cycles
