"""Off-chip memory controllers with a row-buffer model.

Four controllers sit at the mesh corners (a common tiled-CMP arrangement);
physical blocks interleave across them.  LLC-bypassed accesses under
TD-NUCA travel core <-> controller directly; LLC misses travel
bank <-> controller.

Each controller keeps its last-open DRAM row: an access to the same row
costs :attr:`LatencyConfig.dram_row_hit` cycles instead of the full
activate+read latency.  Bulk sequential sweeps — streaming fills, the
flush-then-refetch of whole dependencies — therefore mostly pay row-hit
latency, as on real hardware.  (Task-atomic trace interleaving makes the
model slightly optimistic about row locality; see DESIGN.md.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import LatencyConfig
from repro.noc.topology import Mesh

__all__ = ["MemoryControllers", "DramStats"]


@dataclass
class DramStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def row_hit_ratio(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


class MemoryControllers:
    """Corner-tile memory controllers with block interleaving."""

    def __init__(self, mesh: Mesh, latency: LatencyConfig | None = None) -> None:
        self.mesh = mesh
        self.latency = latency if latency is not None else LatencyConfig()
        corners = [
            mesh.tile_at(0, 0),
            mesh.tile_at(mesh.width - 1, 0),
            mesh.tile_at(0, mesh.height - 1),
            mesh.tile_at(mesh.width - 1, mesh.height - 1),
        ]
        # Deduplicate for degenerate 1xN meshes.
        self.tiles: tuple[int, ...] = tuple(dict.fromkeys(corners))
        self.stats = DramStats()
        self._open_row: dict[int, int] = {}

    def controller_for(self, block: int) -> int:
        """Tile of the controller owning ``block``."""
        return self.tiles[block % len(self.tiles)]

    def _access(self, block: int) -> tuple[int, int]:
        mc = block % len(self.tiles)
        row = block // self.latency.dram_row_blocks
        if self._open_row.get(mc) == row:
            self.stats.row_hits += 1
            cycles = self.latency.dram_row_hit
        else:
            self.stats.row_misses += 1
            self._open_row[mc] = row
            cycles = self.latency.dram
        return self.tiles[mc], cycles

    def read(self, block: int) -> tuple[int, int]:
        """Record a DRAM read; returns ``(controller tile, cycles)``."""
        self.stats.reads += 1
        return self._access(block)

    def write(self, block: int) -> tuple[int, int]:
        """Record a DRAM write; returns ``(controller tile, cycles)``."""
        self.stats.writes += 1
        return self._access(block)
