"""Pluggable simulation kernels for the per-reference hot path.

A :class:`SimKernel` owns the inner loop of :meth:`Machine._run_blocks`:
given one task's translated block trace it drives the L1s, the NUCA LLC,
the directory, DRAM and all the batched stat/traffic accounting.  Two
implementations exist:

``reference``
    The flat single-reference interpreter (PR 3), extracted verbatim from
    ``Machine._run_blocks``.  Always available, always exact; every other
    backend is defined as "byte-identical MachineStats to reference".

``vector``
    A numpy backend that batches the per-trace work — RRT resolution via
    ``np.searchsorted``, bank decode over unique masks, prefix-summable
    flag counters — around a lean event loop.  Optional: it requires
    numpy and falls back (warning once) to ``reference`` when numpy is
    missing, and it dispatches per task, deferring to the reference loop
    whenever the machine is in a state it does not model (tracing hooks,
    DRAM transients, dead banks, non-PLRU replacement, D-NUCA).

``verify``
    A debug harness that runs *both* kernels on every task and raises
    :class:`KernelMismatchError` on the first divergence (chaos-testable
    through the ``kernel.dispatch.mismatch`` failpoint).

Selection precedence: ``REPRO_KERNEL`` env var > ``SystemConfig.kernel``;
``auto`` resolves to ``vector`` when numpy is importable (and not masked
by ``REPRO_KERNEL_DISABLE_NUMPY=1``), else ``reference``.  The golden
snapshot suite is the equivalence gate — see DESIGN.md §13.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field

__all__ = [
    "KERNEL_NAMES",
    "KernelMismatchError",
    "KernelStats",
    "SimKernel",
    "make_kernel",
    "numpy_available",
    "resolve_kernel_name",
]

#: accepted values for ``SystemConfig.kernel`` / ``--kernel`` / ``REPRO_KERNEL``.
KERNEL_NAMES = ("auto", "reference", "vector", "verify")

#: env var overriding the configured kernel (highest precedence).
KERNEL_ENV = "REPRO_KERNEL"

#: env var simulating a numpy-less install for the optional-dependency
#: path (the package core itself needs numpy, so CI proves the reference
#: kernel never touches the vector module through this gate instead).
DISABLE_NUMPY_ENV = "REPRO_KERNEL_DISABLE_NUMPY"


class KernelMismatchError(AssertionError):
    """``verify`` mode found the two kernels disagreeing on a task."""


@dataclass
class KernelStats:
    """Dispatch accounting, kept on the kernel object (never inside
    ``MachineStats`` — result payloads must stay backend-agnostic so the
    service result cache can share entries across kernels)."""

    tasks_total: int = 0
    #: tasks fully executed by the vector fast path.
    tasks_vector: int = 0
    #: tasks executed by the reference loop (including per-task fallbacks).
    tasks_reference: int = 0
    #: tasks the vector kernel started but finished with a reference
    #: suffix after an own-core back-invalidation hazard.
    tasks_mixed: int = 0
    #: tasks double-executed by verify mode.
    tasks_verified: int = 0
    #: reasons the vector kernel declined a task, by gate name.
    fallback_reasons: dict = field(default_factory=dict)

    def count_fallback(self, reason: str) -> None:
        self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1


class SimKernel:
    """Interface: one strategy for executing a task's block trace."""

    #: registry name; subclasses override.
    name = "abstract"

    def __init__(self) -> None:
        self.stats = KernelStats()

    def run_blocks(self, machine, core, pblocks, writes, compute_per_access=None):
        """Execute the trace on ``machine``; returns memory+compute cycles.

        Implementations must leave the machine in exactly the state the
        reference interpreter would (the golden snapshots enforce this),
        including the pending-traffic flush at the end of the task.
        """
        raise NotImplementedError


def numpy_available() -> bool:
    """True when the vector kernel's numpy dependency is usable."""
    if os.environ.get(DISABLE_NUMPY_ENV, "") == "1":
        return False
    try:  # pragma: no cover - import always succeeds in-repo
        import numpy  # noqa: F401
    except Exception:  # pragma: no cover - exercised via the env gate
        return False
    return True


def resolve_kernel_name(configured: str = "auto") -> str:
    """Apply the ``REPRO_KERNEL`` override and validate the name."""
    name = os.environ.get(KERNEL_ENV) or configured or "auto"
    if name not in KERNEL_NAMES:
        raise ValueError(
            f"unknown simulation kernel {name!r}; expected one of {KERNEL_NAMES}"
        )
    return name


_warned_no_numpy = False


def _warn_no_numpy_once(requested: str) -> None:
    global _warned_no_numpy
    if not _warned_no_numpy:
        _warned_no_numpy = True
        warnings.warn(
            f"kernel {requested!r} requested but numpy is unavailable; "
            "falling back to the reference kernel (install the [vector] "
            "extra to enable the batched backend)",
            RuntimeWarning,
            stacklevel=3,
        )


def make_kernel(name: str = "auto") -> SimKernel:
    """Build the kernel for a resolved or raw selector name.

    ``auto`` prefers ``vector`` and silently uses ``reference`` when
    numpy is unavailable; an explicit ``vector``/``verify`` request warns
    once before degrading.
    """
    name = resolve_kernel_name(name)
    from repro.sim.kernels.reference import ReferenceKernel

    if name == "reference":
        return ReferenceKernel()
    if not numpy_available():
        if name in ("vector", "verify"):
            _warn_no_numpy_once(name)
        return ReferenceKernel()
    from repro.sim.kernels.vector import VectorKernel

    if name in ("vector", "auto"):
        return VectorKernel()
    from repro.sim.kernels.verify import VerifyKernel

    return VerifyKernel()
