"""The reference simulation kernel: the flat per-reference interpreter.

This is the PR-3 hot loop extracted verbatim from ``Machine._run_blocks``
(``self`` became the ``m`` machine parameter; nothing else changed).  It
is the semantic ground truth every other kernel is measured against, so
treat edits here as protocol changes: the 22 golden snapshots must be
regenerated and the vector kernel updated in lockstep.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.core.rrt import decode_bank_mask
from repro.core.tdnuca import TdNucaPolicy
from repro.noc.traffic import CONTROL_BYTES
from repro.nuca.base import BYPASS
from repro.sim.kernels import SimKernel

__all__ = ["ReferenceKernel"]

# Dense MessageClass indices (mirrors repro.sim.machine's module-level
# aliases; imported lazily there to avoid a cycle at package init).
from repro.noc.traffic import MessageClass as _MC

_REQUEST = int(_MC.REQUEST)
_DATA = int(_MC.DATA)
_WRITEBACK = int(_MC.WRITEBACK)
_DRAM_REQUEST = int(_MC.DRAM_REQUEST)
_DRAM_DATA = int(_MC.DRAM_DATA)


class ReferenceKernel(SimKernel):
    """Single-reference interpreter; always available, always exact."""

    name = "reference"

    def run_blocks(self, m, core, pblocks, writes, compute_per_access=None):
        self.stats.tasks_total += 1
        self.stats.tasks_reference += 1
        return run_blocks_interpreted(m, core, pblocks, writes, compute_per_access)


def run_blocks_interpreted(m, core, pblocks, writes, compute_per_access=None):
    """The flat loop itself, callable without a kernel object so the
    vector backend can delegate per-task (and per-suffix) slices to it."""
    # Local aliases: this loop runs per memory reference.  Latency,
    # traffic and energy deltas that are fixed per event kind are
    # accumulated in local integers and applied once after the loop;
    # only data-dependent quantities (DRAM row-buffer cycles, hop
    # counts) are touched per reference.
    lat = m.latency
    l1 = m.l1s[core]
    l1_sets = l1._map
    l1_ways = l1._ways
    l1_assoc = l1.assoc
    l1_mask = l1._set_mask
    l1_dirty = l1._dirty
    l1_repl = l1._repl
    l1_plru = l1._plru_fast
    llc_banks = m.llc.banks
    llc_dead = m.llc._dead
    llc_mask = llc_banks[0]._set_mask
    llc_plru = llc_banks[0]._plru_fast
    dist_rows = m.mesh.dist_rows
    dist_core = dist_rows[core]
    policy = m.policy
    bank_for = policy.bank_for
    directory = m.directory
    on_l1_fill = directory.on_l1_fill
    d_sharers = directory._sharers
    d_owner = directory._owner
    d_stats = directory.stats
    bit_core = 1 << core
    dram = m.dram
    dram_read = dram.read
    dram_write = dram.write
    # Fault-free DRAM is the common case: inline the row-buffer model
    # and batch its stats.  With transient errors installed, fall back
    # to the method calls (they own the retry/backoff machinery).
    dram_fast = dram._error_p == 0.0
    dram_open = dram._open_row
    dram_tiles = dram.tiles
    dram_n_mc = len(dram_tiles)
    dram_row_blocks = dram.latency.dram_row_blocks
    dram_row_hit_cyc = dram.latency.dram_row_hit
    dram_miss_cyc = dram.latency.dram
    energy = m.energy
    rrt_cycles = policy.lookup_cycles
    is_td = m.rrts is not None
    dnuca = m._dnuca
    compute = lat.compute if compute_per_access is None else compute_per_access
    bypass = BYPASS
    cycles = 0

    # TD-NUCA bank resolution, specialised: within one task trace the
    # requesting core's RRT table is immutable (ISA instructions only
    # run at task boundaries), so the fused lookup in
    # :meth:`TdNucaPolicy.bank_for` can be hoisted here and its stats
    # batched.  Fault-degraded runs (dead banks) keep the method call.
    td_fast = type(policy) is TdNucaPolicy and not policy._dead_banks
    td_starts = None
    if td_fast:
        td_rrt = policy.rrts[core]
        td_table = td_rrt._tables.get(td_rrt._active_pid)
        if td_table is not None and td_table.starts:
            td_starts = td_table.starts
            td_ends = td_table.ends
            td_masks = td_table.masks
        td_shift = policy._block_shift
        td_bank_mask = policy._bank_mask

    # Batched counters (flushed after the loop).
    l1_hits = 0
    l1_write_hits = 0
    n_l1_miss = 0
    llc_hits = 0
    llc_misses = 0
    llc_req_units = 0  # sum of (hops + 1) over core <-> bank round trips
    dram_pairs = 0     # DRAM request/data message pairs
    dram_units = 0     # sum of (hops + 1) over those pairs
    n_wb = 0           # dirty L1 victims written back (policy-resolved)
    wb_llc = 0         # ... of which landed in an LLC bank
    wb_units = 0       # sum of (hops + 1) over WRITEBACK messages
    wb_dram = 0        # ... of which went straight to DRAM (bypass)
    l1_new = 0         # L1 fills into empty ways (occupancy delta)
    l1_evs = 0         # L1 evictions
    l1_dirty_evs = 0   # ... of which were dirty
    n_rrt_hits = 0     # td_fast: RRT lookup hits
    n_bypass = 0       # td_fast: LLC bypasses
    n_local = 0        # td_fast: local-bank resolutions
    d_reads = 0        # dram_fast: demand reads
    d_writes = 0       # dram_fast: bypassed writebacks
    d_row_hits = 0     # dram_fast: row-buffer hits
    d_row_misses = 0   # dram_fast: row-buffer misses

    blocks_list = pblocks.tolist()
    for block, write in zip(blocks_list, writes.tolist()):
        # Inlined L1 probe (the allocation-free hit fast path).
        s = block & l1_mask
        way = l1_sets[s].get(block)
        if way is not None:
            l1_hits += 1
            repl = l1_repl[s]
            if l1_plru:
                repl._bits = (repl._bits | repl._or[way]) & repl._and[way]
            else:
                repl.touch(way)
            if write:
                l1_write_hits += 1
                l1_dirty[s][way] = True
                m._write_hit_coherence(core, block)
            continue

        # L1 miss: fill (the miss count is batched below), then RRT
        # lookup (TD-NUCA) / NUCA search (D-NUCA), then bank resolution.
        # The fill is CacheBank._insert inlined with batched counters.
        n_l1_miss += 1
        smap = l1_sets[s]
        sways = l1_ways[s]
        repl = l1_repl[s]
        if len(smap) < l1_assoc:
            way = sways.index(None)
            l1_new += 1
            ev_l1 = -1
            ev_l1_dirty = False
        else:
            way = repl._victim[repl._bits] if l1_plru else repl.victim()
            ev_l1 = sways[way]
            ev_l1_dirty = l1_dirty[s][way]
            del smap[ev_l1]
            l1_evs += 1
            if ev_l1_dirty:
                l1_dirty_evs += 1
        sways[way] = block
        smap[block] = way
        l1_dirty[s][way] = write
        if l1_plru:
            repl._bits = (repl._bits | repl._or[way]) & repl._and[way]
        else:
            repl.touch(way)

        if td_fast:
            # TdNucaPolicy.bank_for, inlined over the hoisted table.
            mask_bits = None
            if td_starts is not None:
                paddr = block << td_shift
                i = bisect_right(td_starts, paddr) - 1
                if i >= 0 and paddr < td_ends[i]:
                    n_rrt_hits += 1
                    mask_bits = td_masks[i]
            if mask_bits is None:
                bank = block & td_bank_mask
                if bank == core:
                    n_local += 1
            elif mask_bits == 0:
                n_bypass += 1
                bank = bypass
            else:
                dbanks = decode_bank_mask(mask_bits)
                nb = len(dbanks)
                bank = dbanks[0] if nb == 1 else dbanks[block % nb]
                if bank == core:
                    n_local += 1
        else:
            bank = bank_for(core, block, write)

        # Coherence: fetch may invalidate/downgrade remote L1 copies.
        # The directory's common cases (untracked block, or this core
        # already the only party) are inlined; contended blocks fall
        # back to the full protocol method.
        mask = d_sharers.get(block, 0)
        if write:
            if mask & ~bit_core:
                actions = on_l1_fill(core, block, True)
                cycles += m._coherence_actions(core, block, bank, actions)
            else:
                d_sharers[block] = bit_core
                d_owner[block] = core
        else:
            owner = d_owner.get(block)
            if owner is not None and owner != core:
                actions = on_l1_fill(core, block, False)
                cycles += m._coherence_actions(core, block, bank, actions)
            else:
                d_sharers[block] = mask | bit_core
        entries = len(d_sharers)
        if entries > d_stats.entries_peak:
            d_stats.entries_peak = entries

        if bank == bypass:
            dram_pairs += 1
            if dram_fast:
                mcix = block % dram_n_mc
                row = block // dram_row_blocks
                if dram_open.get(mcix) == row:
                    d_row_hits += 1
                    cycles += dram_row_hit_cyc
                else:
                    d_row_misses += 1
                    dram_open[mcix] = row
                    cycles += dram_miss_cyc
                d_reads += 1
                mc = dram_tiles[mcix]
            else:
                mc, dram_cycles = dram_read(block)
                cycles += dram_cycles
            dram_units += dist_core[mc] + 1
        else:
            llc_req_units += dist_core[bank] + 1
            if llc_dead and bank in llc_dead:
                raise RuntimeError(
                    f"access routed to dead LLC bank {bank}; "
                    "policy remap failed"
                )
            bank_obj = llc_banks[bank]
            bs = block & llc_mask
            bway = bank_obj._map[bs].get(block)
            if bway is not None:
                # Inlined LLC read-probe hit.
                llc_hits += 1
                bst = bank_obj.stats
                bst.hits += 1
                bst.read_hits += 1
                repl = bank_obj._repl[bs]
                if llc_plru:
                    repl._bits = (
                        repl._bits | repl._or[bway]
                    ) & repl._and[bway]
                else:
                    repl.touch(bway)
            else:
                llc_misses += 1
                bank_obj.stats.misses += 1
                dram_pairs += 1
                if dram_fast:
                    mcix = block % dram_n_mc
                    row = block // dram_row_blocks
                    if dram_open.get(mcix) == row:
                        d_row_hits += 1
                        cycles += dram_row_hit_cyc
                    else:
                        d_row_misses += 1
                        dram_open[mcix] = row
                        cycles += dram_miss_cyc
                    d_reads += 1
                    mc = dram_tiles[mcix]
                else:
                    mc, dram_cycles = dram_read(block)
                    cycles += dram_cycles
                dram_units += dist_rows[bank][mc] + 1
                evicted, evicted_dirty = bank_obj._insert(block, False)
                if evicted >= 0:
                    m._llc_eviction(bank, evicted, evicted_dirty)
            if dnuca is not None:
                migration = dnuca.post_access(core, block, bank)
                if migration is not None:
                    m._migrate_block(migration)

        # L1 fill displaced a victim; dirty victims write back through
        # the policy-resolved bank (the RRT is consulted for
        # writebacks too — Section III-B3).
        if ev_l1_dirty:
            n_wb += 1
            if td_fast:
                mask_bits = None
                if td_starts is not None:
                    paddr = ev_l1 << td_shift
                    i = bisect_right(td_starts, paddr) - 1
                    if i >= 0 and paddr < td_ends[i]:
                        n_rrt_hits += 1
                        mask_bits = td_masks[i]
                if mask_bits is None:
                    wb_bank = ev_l1 & td_bank_mask
                    if wb_bank == core:
                        n_local += 1
                elif mask_bits == 0:
                    n_bypass += 1
                    wb_bank = bypass
                else:
                    dbanks = decode_bank_mask(mask_bits)
                    nb = len(dbanks)
                    wb_bank = dbanks[0] if nb == 1 else dbanks[ev_l1 % nb]
                    if wb_bank == core:
                        n_local += 1
            else:
                wb_bank = bank_for(core, ev_l1, True)
            # Inlined directory.on_l1_evict (dirty eviction).
            mask = d_sharers.get(ev_l1, 0) & ~bit_core
            if mask:
                d_sharers[ev_l1] = mask
            else:
                d_sharers.pop(ev_l1, None)
            if d_owner.get(ev_l1) == core:
                del d_owner[ev_l1]
            if wb_bank == bypass:
                wb_dram += 1
                if dram_fast:
                    mcix = ev_l1 % dram_n_mc
                    row = ev_l1 // dram_row_blocks
                    if dram_open.get(mcix) == row:
                        d_row_hits += 1
                    else:
                        d_row_misses += 1
                        dram_open[mcix] = row
                    d_writes += 1
                    mc = dram_tiles[mcix]
                else:
                    mc, _wb_cycles = dram_write(ev_l1)
                wb_units += dist_core[mc] + 1
            else:
                wb_units += dist_core[wb_bank] + 1
                if llc_dead and wb_bank in llc_dead:
                    raise RuntimeError(
                        f"access routed to dead LLC bank {wb_bank}; "
                        "policy remap failed"
                    )
                wb_obj = llc_banks[wb_bank]
                wb_llc += 1
                if not wb_obj.probe(ev_l1, True):
                    wb_obj.stats.misses += 1
                    ev2, ev2_dirty = wb_obj._insert(ev_l1, True)
                    if ev2 >= 0:
                        m._llc_eviction(wb_bank, ev2, ev2_dirty)

    # --- apply the batched deltas ---
    n = len(blocks_list)
    llc_req = llc_hits + llc_misses

    # Latency: every access pays compute + the L1 probe; LLC legs pay
    # the round trip (2 * hops * per_hop, summed via the router units)
    # plus the hit or tag-probe service time; DRAM legs likewise.
    cycles += (compute + lat.l1_hit) * n
    if is_td or dnuca is not None:
        cycles += rrt_cycles * n_l1_miss
    cycles += lat.llc_hit * llc_hits + lat.llc_miss_probe * llc_misses
    cycles += 2 * lat.per_hop * (
        llc_req_units - llc_req + dram_units - dram_pairs
    )

    # L1 demand stats (inserts above skipped the per-call counting).
    st = l1.stats
    st.hits += l1_hits
    st.read_hits += l1_hits - l1_write_hits
    st.write_hits += l1_write_hits
    st.misses += n_l1_miss
    st.evictions += l1_evs
    st.dirty_evictions += l1_dirty_evs
    l1._occupancy += l1_new

    # Specialised-path stat batches (exact counter-for-counter match
    # with the bank_for / MemoryControllers method bodies).
    if td_fast:
        n_res = n_l1_miss + n_wb
        rst = td_rrt.stats
        rst.lookups += n_res
        rst.hits += n_rrt_hits
        pst = policy.stats
        pst.resolutions += n_res
        pst.bypasses += n_bypass
        pst.local_bank_hits += n_local
    if dram_fast:
        dst = dram.stats
        dst.reads += d_reads
        dst.writes += d_writes
        dst.row_hits += d_row_hits
        dst.row_misses += d_row_misses

    # Energy events.
    energy.l1_accesses += n
    if is_td:
        energy.rrt_lookups += n_l1_miss + n_wb
    energy.llc_tag_probes += llc_req + wb_llc
    energy.llc_data_reads += llc_hits
    energy.llc_data_writes += llc_misses + wb_llc
    energy.dram_accesses += dram_pairs + wb_dram

    # Traffic: each LLC access is a REQUEST/DATA pair and each DRAM
    # access a DRAM_REQUEST/DRAM_DATA pair, both legs sharing one hop
    # count — so router-bytes and flit-hops factor over the summed
    # (hops + 1) router units.  L1 victim writebacks add one
    # WRITEBACK data message each.
    data_bytes = m._data_bytes
    total_units = llc_req_units + dram_units
    m._acc_router_bytes += (
        (CONTROL_BYTES + data_bytes) * total_units + data_bytes * wb_units
    )
    m._acc_flit_hops += (
        (m._ctrl_flits + m._data_flits) * total_units
        + m._data_flits * wb_units
    )
    m._acc_messages += 2 * (llc_req + dram_pairs) + n_wb
    acc_cb = m._acc_class_bytes
    acc_cb[_REQUEST] += CONTROL_BYTES * llc_req
    acc_cb[_DATA] += data_bytes * llc_req
    acc_cb[_WRITEBACK] += data_bytes * n_wb
    acc_cb[_DRAM_REQUEST] += CONTROL_BYTES * dram_pairs
    acc_cb[_DRAM_DATA] += data_bytes * dram_pairs
    m._acc_nuca_sum += llc_req_units - llc_req
    m._acc_nuca_count += llc_req
    m._flush_traffic()

    return cycles
