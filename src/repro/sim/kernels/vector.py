"""The vector simulation kernel: specialized per-task batch execution.

Profiling at experiment scales shows the tiny scaled L1 misses ~90-97%
of references, so the *miss* path is what must get cheaper.  The kernel
has two engines, picked per task by trace length:

Fused engine (traces below :data:`NUMPY_MIN_REFS` — the common case)
    A single-pass interpreter with the reference loop's exact event
    order, specialized for the preconditions the dispatch gate already
    guarantees (Tree-PLRU, fault-free DRAM, no dead banks, no D-NUCA,
    TD-NUCA/S-NUCA policy).  It drops the reference loop's per-event
    capability branches, inlines every remaining per-event method call
    (S-NUCA resolution, write-hit upgrades, LLC probe/insert, the whole
    eviction cascade), memoizes the last-hit RRT range so repeated
    lookups in a task's dependency regions skip the bisect, and derives
    several counters at commit time instead of per event.

Phased engine (long traces), three stages:

    Phase A — a lean sequential pass simulating only the private L1
    (probe, fill, PLRU, dirty flags), emitting one event tuple per miss
    and per write hit.  Sound in isolation because within a task nothing
    else can change this core's L1 — except an own-core LLC
    back-invalidation, the *hazard* handled below.

    Bank resolution — all miss blocks (demand + dirty-victim
    writebacks) resolve to LLC banks as arrays: RRT range lookup via
    ``np.searchsorted`` (bit-equal to ``bisect_right``), bank-set decode
    grouped by unique RRT mask, per-resolution stats as vector sums.

    Phase B — a sequential pass over the events in position order
    driving everything order-sensitive: directory, LLC banks, DRAM
    open-row, coherence, eviction cascades, with the same inlining as
    the fused engine.

Hazard handling (phased engine)
    If an LLC eviction back-invalidates a block out of *this* core's L1
    (rare), phase B's L1 (already at end-of-task state) is rewound by
    replaying the trace prefix onto an entry snapshot, the invalidation
    is applied to the now time-accurate L1, the current position is
    finished, the batched stats for the prefix are committed, and the
    rest of the trace runs on the reference interpreter.  Every counter,
    cycle term and traffic batch is additive, so prefix + suffix equals
    the reference end state exactly.  (The fused engine processes events
    in true time order, so it has no hazard at all.)

Per-task dispatch falls back to the reference loop whenever the machine
is in a state this kernel does not model: tracing hooks, D-NUCA, DRAM
transient errors, dead banks, non-PLRU replacement, or a policy other
than TD-NUCA/S-NUCA.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.core.rrt import decode_bank_mask
from repro.core.tdnuca import TdNucaPolicy
from repro.noc.traffic import CONTROL_BYTES, MessageClass
from repro.nuca.base import BYPASS
from repro.nuca.snuca import SNuca
from repro.sim.kernels import SimKernel
from repro.sim.kernels.reference import run_blocks_interpreted

__all__ = ["VectorKernel", "NUMPY_MIN_REFS"]

#: trace length below which the fused single-pass interpreter runs
#: instead of the phased numpy path.  Measured on CPython 3.12: the
#: fused loop wins at every paper-scale trace length (tasks run a few
#: hundred to a few thousand references, and per-miss work is dict-bound
#: state machines numpy cannot batch), so the threshold defaults past
#: them; the phased path stays correct (cross-kernel equivalence tests
#: pin it) for traces long enough that batched resolution amortizes.
NUMPY_MIN_REFS = 65536

_REQUEST = int(MessageClass.REQUEST)
_DATA = int(MessageClass.DATA)
_WRITEBACK = int(MessageClass.WRITEBACK)
_INVALIDATION = int(MessageClass.INVALIDATION)
_ACK = int(MessageClass.ACK)
_DRAM_REQUEST = int(MessageClass.DRAM_REQUEST)
_DRAM_DATA = int(MessageClass.DRAM_DATA)


class VectorKernel(SimKernel):
    """Batched backend; dispatches per task, reference on slow paths."""

    name = "vector"

    def run_blocks(self, m, core, pblocks, writes, compute_per_access=None):
        self.stats.tasks_total += 1
        reason = _fallback_reason(m, core)
        if reason is not None:
            self.stats.tasks_reference += 1
            self.stats.count_fallback(reason)
            return run_blocks_interpreted(
                m, core, pblocks, writes, compute_per_access
            )
        if len(pblocks) < NUMPY_MIN_REFS:
            cycles = _run_fused(m, core, pblocks, writes, compute_per_access)
            self.stats.tasks_vector += 1
            return cycles
        cycles, mixed = _run_vector(m, core, pblocks, writes, compute_per_access)
        if mixed:
            self.stats.tasks_mixed += 1
        else:
            self.stats.tasks_vector += 1
        return cycles


def _fallback_reason(m, core):
    """Why this task cannot take the vector path (None = it can)."""
    if m.obs is not None:
        return "tracing"
    if m._dnuca is not None:
        return "dnuca"
    if m.dram._error_p != 0.0:
        return "dram-transients"
    if m.llc._dead or m._dead_banks:
        return "dead-banks"
    if not m.l1s[core]._plru_fast or not m.llc.banks[0]._plru_fast:
        return "replacement"
    policy = m.policy
    if type(policy) is TdNucaPolicy or type(policy) is SNuca:
        if policy._dead_banks:
            return "dead-banks"
        return None
    return "policy"


def _run_fused(m, core, pblocks, writes, compute_per_access):
    """Single-pass specialized interpreter for short traces.

    Same event order as the reference loop, but specialized for the
    fast-path preconditions the dispatch gate already guarantees (PLRU
    replacement, fault-free DRAM, no dead banks, no D-NUCA, TD-NUCA or
    S-NUCA policy), which lets it drop the reference loop's per-event
    capability branches, inline its remaining per-event method calls
    (S-NUCA bank resolution, write-hit upgrades, LLC insert/probe, the
    whole eviction cascade) and derive more counters at commit time.
    Short traces are the common case at paper experiment scales, where a
    task runs a few hundred references — far too few for per-task numpy
    batching to amortize its fixed costs.
    """
    lat = m.latency
    l1 = m.l1s[core]
    l1_sets = l1._map
    l1_ways = l1._ways
    l1_assoc = l1.assoc
    l1_mask = l1._set_mask
    l1_dirty = l1._dirty
    l1_repl = l1._repl
    llc_banks = m.llc.banks
    llc_mask = llc_banks[0]._set_mask
    llc_assoc = llc_banks[0].assoc
    dist_rows = m.mesh.dist_rows
    dist_core = dist_rows[core]
    policy = m.policy
    directory = m.directory
    on_l1_fill = directory.on_l1_fill
    drop_block = directory.drop_block
    d_sharers = directory._sharers
    d_owner = directory._owner
    d_stats = directory.stats
    d_peak = d_stats.entries_peak
    bit_core = 1 << core
    not_bit_core = ~bit_core
    whc = m._write_hit_coherence
    coherence_actions = m._coherence_actions
    dram = m.dram
    dst = dram.stats
    dram_open = dram._open_row
    dram_tiles = dram.tiles
    dram_n_mc = len(dram_tiles)
    dram_row_blocks = dram.latency.dram_row_blocks
    dram_row_hit_cyc = dram.latency.dram_row_hit
    dram_miss_cyc = dram.latency.dram
    energy = m.energy
    compute = lat.compute if compute_per_access is None else compute_per_access
    bypass = BYPASS
    cycles = 0
    data_bytes = m._data_bytes
    data_flits = m._data_flits
    ctrl_flits = m._ctrl_flits
    acc_cb = m._acc_class_bytes

    td_fast = type(policy) is TdNucaPolicy
    td_starts = None
    if td_fast:
        td_rrt = policy.rrts[core]
        td_table = td_rrt._tables.get(td_rrt._active_pid)
        if td_table is not None and td_table.starts:
            td_starts = td_table.starts
            td_ends = td_table.ends
            td_masks = td_table.masks
        td_shift = policy._block_shift
        td_bank_mask = policy._bank_mask
        sn_mask = 0
    else:
        sn_mask = policy._mask
    # Last-hit RRT entry memo: the table is immutable within a task and
    # accesses cluster in the task's dependency ranges, so most lookups
    # land in the entry the previous one did — skip the bisect then.
    # (Ranges are sorted and disjoint, so a memo hit and the bisect
    # always agree.)
    memo_lo = 0
    memo_hi = 0
    memo_mask = 0

    # Batched counters; several of the reference loop's are derived at
    # commit instead: l1_new = misses - evictions, dirty evictions =
    # writebacks, DRAM reads = demand pairs, DRAM writes = bypassed
    # writebacks, row misses = accesses - row hits.
    l1_hits = 0
    l1_write_hits = 0
    n_l1_miss = 0
    llc_hits = 0
    llc_misses = 0
    llc_req_units = 0
    dram_pairs = 0
    dram_units = 0
    n_wb = 0
    wb_llc = 0
    wb_units = 0
    wb_dram = 0
    n_rrt_hits = 0
    n_bypass = 0
    n_local = 0
    l1_evs = 0
    d_row_hits = 0

    def evict(bank_, victim, dirty):
        """Inlined ``Machine._llc_eviction`` (fault-free, no D-NUCA)."""
        dist_bank = dist_rows[bank_]
        if dirty:
            energy.llc_data_reads += 1
            dst.writes += 1
            mcix = victim % dram_n_mc
            row = victim // dram_row_blocks
            if dram_open.get(mcix) == row:
                dst.row_hits += 1
            else:
                dst.row_misses += 1
                dram_open[mcix] = row
            routers = dist_bank[dram_tiles[mcix]] + 1
            m._acc_router_bytes += data_bytes * routers
            m._acc_flit_hops += data_flits * routers
            m._acc_messages += 1
            acc_cb[_WRITEBACK] += data_bytes
            energy.dram_accesses += 1
        vs = victim & llc_mask
        for bo in llc_banks:
            if victim in bo._map[vs]:
                return
        for core_ in drop_block(victim):
            routers = dist_bank[core_] + 1
            m._acc_router_bytes += 2 * CONTROL_BYTES * routers
            m._acc_flit_hops += 2 * ctrl_flits * routers
            m._acc_messages += 2
            acc_cb[_INVALIDATION] += CONTROL_BYTES
            acc_cb[_ACK] += CONTROL_BYTES
            present, was_dirty = m.l1s[core_].invalidate(victim)
            if present and was_dirty:
                dst.writes += 1
                mcix = victim % dram_n_mc
                row = victim // dram_row_blocks
                if dram_open.get(mcix) == row:
                    dst.row_hits += 1
                else:
                    dst.row_misses += 1
                    dram_open[mcix] = row
                routers = dist_rows[core_][dram_tiles[mcix]] + 1
                m._acc_router_bytes += data_bytes * routers
                m._acc_flit_hops += data_flits * routers
                m._acc_messages += 1
                acc_cb[_WRITEBACK] += data_bytes
                energy.dram_accesses += 1

    blocks_list = pblocks.tolist()
    for block, write in zip(blocks_list, writes.tolist()):
        s = block & l1_mask
        smap = l1_sets[s]
        way = smap.get(block)
        if way is not None:
            l1_hits += 1
            repl = l1_repl[s]
            repl._bits = (repl._bits | repl._or[way]) & repl._and[way]
            if write:
                l1_write_hits += 1
                l1_dirty[s][way] = True
                # Inlined _write_hit_coherence fast path: sole owner or
                # silent upgrade; contended blocks take the full method.
                if d_sharers.get(block, 0) & not_bit_core:
                    whc(core, block)
                elif d_owner.get(block) != core:
                    on_l1_fill(core, block, True)
            continue

        n_l1_miss += 1
        sways = l1_ways[s]
        repl = l1_repl[s]
        if len(smap) < l1_assoc:
            way = sways.index(None)
            ev_l1 = -1
            ev_l1_dirty = False
        else:
            way = repl._victim[repl._bits]
            ev_l1 = sways[way]
            ev_l1_dirty = l1_dirty[s][way]
            del smap[ev_l1]
            l1_evs += 1
        sways[way] = block
        smap[block] = way
        l1_dirty[s][way] = write
        repl._bits = (repl._bits | repl._or[way]) & repl._and[way]

        if td_fast:
            mask_bits = None
            if td_starts is not None:
                paddr = block << td_shift
                if memo_lo <= paddr < memo_hi:
                    n_rrt_hits += 1
                    mask_bits = memo_mask
                else:
                    ti = bisect_right(td_starts, paddr) - 1
                    if ti >= 0 and paddr < td_ends[ti]:
                        n_rrt_hits += 1
                        memo_lo = td_starts[ti]
                        memo_hi = td_ends[ti]
                        memo_mask = mask_bits = td_masks[ti]
            if mask_bits is None:
                bank = block & td_bank_mask
                if bank == core:
                    n_local += 1
            elif mask_bits == 0:
                n_bypass += 1
                bank = bypass
            else:
                dbanks = decode_bank_mask(mask_bits)
                nb = len(dbanks)
                bank = dbanks[0] if nb == 1 else dbanks[block % nb]
                if bank == core:
                    n_local += 1
        else:
            bank = block & sn_mask
            if bank == core:
                n_local += 1

        mask = d_sharers.get(block, 0)
        if write:
            if mask & not_bit_core:
                cycles += coherence_actions(
                    core, block, bank, on_l1_fill(core, block, True)
                )
            else:
                d_sharers[block] = bit_core
                d_owner[block] = core
        else:
            owner = d_owner.get(block)
            if owner is not None and owner != core:
                cycles += coherence_actions(
                    core, block, bank, on_l1_fill(core, block, False)
                )
            else:
                d_sharers[block] = mask | bit_core
        entries = len(d_sharers)
        if entries > d_peak:
            d_peak = entries

        if bank == bypass:
            dram_pairs += 1
            mcix = block % dram_n_mc
            row = block // dram_row_blocks
            if dram_open.get(mcix) == row:
                d_row_hits += 1
                cycles += dram_row_hit_cyc
            else:
                dram_open[mcix] = row
                cycles += dram_miss_cyc
            dram_units += dist_core[dram_tiles[mcix]] + 1
        else:
            llc_req_units += dist_core[bank] + 1
            bank_obj = llc_banks[bank]
            bs = block & llc_mask
            bmap = bank_obj._map[bs]
            bway = bmap.get(block)
            if bway is not None:
                llc_hits += 1
                bst = bank_obj.stats
                bst.hits += 1
                bst.read_hits += 1
                repl = bank_obj._repl[bs]
                repl._bits = (repl._bits | repl._or[bway]) & repl._and[bway]
            else:
                llc_misses += 1
                bank_obj.stats.misses += 1
                dram_pairs += 1
                mcix = block % dram_n_mc
                row = block // dram_row_blocks
                if dram_open.get(mcix) == row:
                    d_row_hits += 1
                    cycles += dram_row_hit_cyc
                else:
                    dram_open[mcix] = row
                    cycles += dram_miss_cyc
                dram_units += dist_rows[bank][dram_tiles[mcix]] + 1
                # Inlined CacheBank._insert(block, False).
                bways = bank_obj._ways[bs]
                repl = bank_obj._repl[bs]
                if len(bmap) < llc_assoc:
                    bway = bways.index(None)
                    bank_obj._occupancy += 1
                    bways[bway] = block
                    bmap[block] = bway
                    bank_obj._dirty[bs][bway] = False
                    repl._bits = (
                        repl._bits | repl._or[bway]
                    ) & repl._and[bway]
                else:
                    bway = repl._victim[repl._bits]
                    evicted = bways[bway]
                    evicted_dirty = bank_obj._dirty[bs][bway]
                    del bmap[evicted]
                    bst = bank_obj.stats
                    bst.evictions += 1
                    if evicted_dirty:
                        bst.dirty_evictions += 1
                    bways[bway] = block
                    bmap[block] = bway
                    bank_obj._dirty[bs][bway] = False
                    repl._bits = (
                        repl._bits | repl._or[bway]
                    ) & repl._and[bway]
                    evict(bank, evicted, evicted_dirty)

        if ev_l1_dirty:
            n_wb += 1
            if td_fast:
                mask_bits = None
                if td_starts is not None:
                    paddr = ev_l1 << td_shift
                    if memo_lo <= paddr < memo_hi:
                        n_rrt_hits += 1
                        mask_bits = memo_mask
                    else:
                        ti = bisect_right(td_starts, paddr) - 1
                        if ti >= 0 and paddr < td_ends[ti]:
                            n_rrt_hits += 1
                            memo_lo = td_starts[ti]
                            memo_hi = td_ends[ti]
                            memo_mask = mask_bits = td_masks[ti]
                if mask_bits is None:
                    wb_bank = ev_l1 & td_bank_mask
                    if wb_bank == core:
                        n_local += 1
                elif mask_bits == 0:
                    n_bypass += 1
                    wb_bank = bypass
                else:
                    dbanks = decode_bank_mask(mask_bits)
                    nb = len(dbanks)
                    wb_bank = dbanks[0] if nb == 1 else dbanks[ev_l1 % nb]
                    if wb_bank == core:
                        n_local += 1
            else:
                wb_bank = ev_l1 & sn_mask
                if wb_bank == core:
                    n_local += 1
            # Inlined directory.on_l1_evict (dirty eviction).
            mask = d_sharers.get(ev_l1, 0) & not_bit_core
            if mask:
                d_sharers[ev_l1] = mask
            else:
                d_sharers.pop(ev_l1, None)
            if d_owner.get(ev_l1) == core:
                del d_owner[ev_l1]
            if wb_bank == bypass:
                wb_dram += 1
                mcix = ev_l1 % dram_n_mc
                row = ev_l1 // dram_row_blocks
                if dram_open.get(mcix) == row:
                    d_row_hits += 1
                else:
                    dram_open[mcix] = row
                wb_units += dist_core[dram_tiles[mcix]] + 1
            else:
                wb_units += dist_core[wb_bank] + 1
                wb_obj = llc_banks[wb_bank]
                wb_llc += 1
                # Inlined CacheBank.probe(ev_l1, True) + _insert(ev_l1, True).
                ws = ev_l1 & llc_mask
                wmap = wb_obj._map[ws]
                wway = wmap.get(ev_l1)
                if wway is not None:
                    wst = wb_obj.stats
                    wst.hits += 1
                    wst.write_hits += 1
                    wb_obj._dirty[ws][wway] = True
                    wrepl = wb_obj._repl[ws]
                    wrepl._bits = (
                        wrepl._bits | wrepl._or[wway]
                    ) & wrepl._and[wway]
                else:
                    wb_obj.stats.misses += 1
                    wways = wb_obj._ways[ws]
                    wrepl = wb_obj._repl[ws]
                    if len(wmap) < llc_assoc:
                        wway = wways.index(None)
                        wb_obj._occupancy += 1
                        wways[wway] = ev_l1
                        wmap[ev_l1] = wway
                        wb_obj._dirty[ws][wway] = True
                        wrepl._bits = (
                            wrepl._bits | wrepl._or[wway]
                        ) & wrepl._and[wway]
                    else:
                        wway = wrepl._victim[wrepl._bits]
                        ev2 = wways[wway]
                        ev2_dirty = wb_obj._dirty[ws][wway]
                        del wmap[ev2]
                        wst = wb_obj.stats
                        wst.evictions += 1
                        if ev2_dirty:
                            wst.dirty_evictions += 1
                        wways[wway] = ev_l1
                        wmap[ev_l1] = wway
                        wb_obj._dirty[ws][wway] = True
                        wrepl._bits = (
                            wrepl._bits | wrepl._or[wway]
                        ) & wrepl._and[wway]
                        evict(wb_bank, ev2, ev2_dirty)

    # --- apply the batched deltas (mirror of the reference commit) ---
    n = len(blocks_list)
    llc_req = llc_hits + llc_misses
    d_stats.entries_peak = d_peak

    cycles += (compute + lat.l1_hit) * n
    is_td = m.rrts is not None
    if is_td:
        cycles += policy.lookup_cycles * n_l1_miss
    cycles += lat.llc_hit * llc_hits + lat.llc_miss_probe * llc_misses
    cycles += 2 * lat.per_hop * (
        llc_req_units - llc_req + dram_units - dram_pairs
    )

    st = l1.stats
    st.hits += l1_hits
    st.read_hits += l1_hits - l1_write_hits
    st.write_hits += l1_write_hits
    st.misses += n_l1_miss
    st.evictions += l1_evs
    st.dirty_evictions += n_wb
    l1._occupancy += n_l1_miss - l1_evs

    n_res = n_l1_miss + n_wb
    pst = policy.stats
    pst.resolutions += n_res
    pst.local_bank_hits += n_local
    if td_fast:
        rst = td_rrt.stats
        rst.lookups += n_res
        rst.hits += n_rrt_hits
        pst.bypasses += n_bypass

    dst.reads += dram_pairs
    dst.writes += wb_dram
    dst.row_hits += d_row_hits
    dst.row_misses += dram_pairs + wb_dram - d_row_hits

    energy.l1_accesses += n
    if is_td:
        energy.rrt_lookups += n_res
    energy.llc_tag_probes += llc_req + wb_llc
    energy.llc_data_reads += llc_hits
    energy.llc_data_writes += llc_misses + wb_llc
    energy.dram_accesses += dram_pairs + wb_dram

    total_units = llc_req_units + dram_units
    m._acc_router_bytes += (
        (CONTROL_BYTES + data_bytes) * total_units + data_bytes * wb_units
    )
    m._acc_flit_hops += (
        (ctrl_flits + data_flits) * total_units + data_flits * wb_units
    )
    m._acc_messages += 2 * (llc_req + dram_pairs) + n_wb
    acc_cb[_REQUEST] += CONTROL_BYTES * llc_req
    acc_cb[_DATA] += data_bytes * llc_req
    acc_cb[_WRITEBACK] += data_bytes * n_wb
    acc_cb[_DRAM_REQUEST] += CONTROL_BYTES * dram_pairs
    acc_cb[_DRAM_DATA] += data_bytes * dram_pairs
    m._acc_nuca_sum += llc_req_units - llc_req
    m._acc_nuca_count += llc_req
    m._flush_traffic()

    return cycles


def _resolve_banks_np(blocks, core, td_starts, td_ends, td_masks,
                      td_shift, td_bank_mask):
    """Vectorized TD-NUCA bank resolution for one int64 block array.

    Returns ``(banks, n_rrt_hits, n_bypass, n_local)``; the counts match
    the reference loop's per-resolution stats exactly.
    """
    nb_ev = len(blocks)
    if td_starts is not None and nb_ev:
        paddr = blocks << td_shift
        idx = np.searchsorted(td_starts, paddr, side="right") - 1
        valid = idx >= 0
        idx0 = np.where(valid, idx, 0)
        rrt_hit = valid & (paddr < td_ends[idx0])
        mask_vals = np.where(rrt_hit, td_masks[idx0], -1)
    else:
        rrt_hit = np.zeros(nb_ev, dtype=bool)
        mask_vals = np.full(nb_ev, -1, dtype=np.int64)
    banks = np.empty(nb_ev, dtype=np.int64)
    no_entry = mask_vals == -1
    banks[no_entry] = blocks[no_entry] & td_bank_mask
    is_bypass = mask_vals == 0
    banks[is_bypass] = BYPASS
    spread = ~(no_entry | is_bypass)
    if spread.any():
        for mval in np.unique(mask_vals[spread]):
            sel = mask_vals == mval
            dbanks = np.asarray(decode_bank_mask(int(mval)), dtype=np.int64)
            if len(dbanks) == 1:
                banks[sel] = dbanks[0]
            else:
                banks[sel] = dbanks[blocks[sel] % len(dbanks)]
    return (
        banks,
        int(rrt_hit.sum()),
        int(is_bypass.sum()),
        int((banks == core).sum()),
    )


def _run_vector(m, core, pblocks, writes, compute_per_access):
    """Execute one task's trace; returns ``(cycles, hazard_happened)``."""
    lat = m.latency
    l1 = m.l1s[core]
    l1_sets = l1._map
    l1_ways = l1._ways
    l1_assoc = l1.assoc
    l1_mask = l1._set_mask
    l1_dirty = l1._dirty
    l1_repl = l1._repl
    policy = m.policy
    td_fast = type(policy) is TdNucaPolicy
    compute = lat.compute if compute_per_access is None else compute_per_access
    bypass = BYPASS
    blocks_list = pblocks.tolist()
    writes_list = writes.tolist()
    use_numpy = len(blocks_list) >= NUMPY_MIN_REFS

    if td_fast:
        td_rrt = policy.rrts[core]
        td_table = td_rrt._tables.get(td_rrt._active_pid)
        td_starts = td_ends = td_masks = None
        if td_table is not None and td_table.starts:
            td_starts = td_table.starts
            td_ends = td_table.ends
            td_masks = td_table.masks
        td_shift = policy._block_shift
        td_bank_mask = policy._bank_mask
        sn_mask = 0
    else:
        sn_mask = policy._mask
        td_starts = td_ends = td_masks = None
        td_shift = td_bank_mask = 0

    # Entry snapshot of the (tiny) L1 for the hazard rewind.
    snap_map = [d.copy() for d in l1_sets]
    snap_ways = [list(w) for w in l1_ways]
    snap_dirty = [list(d) for d in l1_dirty]
    snap_bits = [r._bits for r in l1_repl]

    # ---- Phase A: L1-only sweep, emitting miss / write-hit events ----
    miss = []          # (pos, block, write, ev_block(-1), ev_dirty)
    whit_pos = []      # positions of write hits (coherence in phase B)
    whit_block = []
    bank_list = []     # demand bank per miss (python resolution mode)
    wb_bank_list = []  # writeback bank per dirty eviction (same order)
    miss_append = miss.append
    wp_append = whit_pos.append
    wblk_append = whit_block.append
    bank_append = bank_list.append
    wbb_append = wb_bank_list.append
    resolve_inline = not use_numpy
    n_rrt_hits = 0
    n_bypass = 0
    n_local = 0
    l1_evs = 0
    pos = -1
    for block, write in zip(blocks_list, writes_list):
        pos += 1
        s = block & l1_mask
        smap = l1_sets[s]
        way = smap.get(block)
        repl = l1_repl[s]
        if way is not None:
            repl._bits = (repl._bits | repl._or[way]) & repl._and[way]
            if write:
                l1_dirty[s][way] = True
                wp_append(pos)
                wblk_append(block)
            continue
        sways = l1_ways[s]
        if len(smap) < l1_assoc:
            way = sways.index(None)
            ev = -1
            evd = False
        else:
            way = repl._victim[repl._bits]
            ev = sways[way]
            evd = l1_dirty[s][way]
            del smap[ev]
            l1_evs += 1
        sways[way] = block
        smap[block] = way
        l1_dirty[s][way] = write
        repl._bits = (repl._bits | repl._or[way]) & repl._and[way]
        miss_append((pos, block, write, ev, evd))
        if resolve_inline:
            # TdNucaPolicy.bank_for / SNuca.bank_for inlined (same logic
            # as the reference loop; stats batched into local counters).
            if td_fast:
                mask_bits = None
                if td_starts is not None:
                    paddr = block << td_shift
                    ti = bisect_right(td_starts, paddr) - 1
                    if ti >= 0 and paddr < td_ends[ti]:
                        n_rrt_hits += 1
                        mask_bits = td_masks[ti]
                if mask_bits is None:
                    bank = block & td_bank_mask
                    if bank == core:
                        n_local += 1
                elif mask_bits == 0:
                    n_bypass += 1
                    bank = bypass
                else:
                    dbanks = decode_bank_mask(mask_bits)
                    nb = len(dbanks)
                    bank = dbanks[0] if nb == 1 else dbanks[block % nb]
                    if bank == core:
                        n_local += 1
            else:
                bank = block & sn_mask
                if bank == core:
                    n_local += 1
            bank_append(bank)
            if evd:
                if td_fast:
                    mask_bits = None
                    if td_starts is not None:
                        paddr = ev << td_shift
                        ti = bisect_right(td_starts, paddr) - 1
                        if ti >= 0 and paddr < td_ends[ti]:
                            n_rrt_hits += 1
                            mask_bits = td_masks[ti]
                    if mask_bits is None:
                        wb_bank = ev & td_bank_mask
                        if wb_bank == core:
                            n_local += 1
                    elif mask_bits == 0:
                        n_bypass += 1
                        wb_bank = bypass
                    else:
                        dbanks = decode_bank_mask(mask_bits)
                        nb = len(dbanks)
                        wb_bank = dbanks[0] if nb == 1 else dbanks[ev % nb]
                        if wb_bank == core:
                            n_local += 1
                else:
                    wb_bank = ev & sn_mask
                    if wb_bank == core:
                        n_local += 1
                wbb_append(wb_bank)

    # ---- Batched bank resolution (large tasks) ----
    if use_numpy and miss:
        _pos_col, block_col, _w_col, ev_col, evd_col = zip(*miss)
        mb = np.asarray(block_col, dtype=np.int64)
        wb_blocks = np.asarray(
            [e for e, d in zip(ev_col, evd_col) if d], dtype=np.int64
        )
        if td_fast:
            starts_a = ends_a = masks_a = None
            if td_starts is not None:
                starts_a = np.asarray(td_starts, dtype=np.int64)
                ends_a = np.asarray(td_ends, dtype=np.int64)
                masks_a = np.asarray(td_masks, dtype=np.int64)
            banks_d, h_d, b_d, c_d = _resolve_banks_np(
                mb, core, starts_a, ends_a, masks_a, td_shift, td_bank_mask
            )
            banks_w, h_w, b_w, c_w = _resolve_banks_np(
                wb_blocks, core, starts_a, ends_a, masks_a,
                td_shift, td_bank_mask,
            )
            n_rrt_hits = h_d + h_w
            n_bypass = b_d + b_w
            n_local = c_d + c_w
        else:
            banks_d = mb & sn_mask
            banks_w = wb_blocks & sn_mask
            n_local = int((banks_d == core).sum()) + int(
                (banks_w == core).sum()
            )
        bank_list = banks_d.tolist()
        wb_bank_list = banks_w.tolist()

    # ---- Phase B: position-ordered event loop ----
    llc = m.llc
    llc_banks = llc.banks
    llc_mask = llc_banks[0]._set_mask
    llc_assoc = llc_banks[0].assoc
    dist_rows = m.mesh.dist_rows
    dist_core = dist_rows[core]
    directory = m.directory
    on_l1_fill = directory.on_l1_fill
    drop_block = directory.drop_block
    d_sharers = directory._sharers
    d_owner = directory._owner
    d_stats = directory.stats
    bit_core = 1 << core
    not_bit_core = ~bit_core
    whc = m._write_hit_coherence
    coherence_actions = m._coherence_actions
    dram = m.dram
    dst = dram.stats
    dram_open = dram._open_row
    dram_tiles = dram.tiles
    dram_n_mc = len(dram_tiles)
    dram_row_blocks = dram.latency.dram_row_blocks
    dram_row_hit_cyc = dram.latency.dram_row_hit
    dram_miss_cyc = dram.latency.dram
    energy = m.energy
    data_bytes = m._data_bytes
    data_flits = m._data_flits
    ctrl_flits = m._ctrl_flits
    acc_cb = m._acc_class_bytes

    cycles = 0
    llc_hits = 0
    llc_misses = 0
    llc_req_units = 0
    dram_pairs = 0
    dram_units = 0
    wb_llc = 0
    wb_units = 0
    wb_dram = 0
    d_reads = 0
    d_writes = 0
    d_row_hits = 0
    d_row_misses = 0

    hazard = False       # an own-core back-invalidation forced a rewind
    l1_accurate = False  # True once the L1 has been rewound to "now"
    entry_resident = None

    def rewind(p):
        """Rewind the L1 to its exact state after position ``p``."""
        nonlocal l1_accurate, hazard
        l1._map = sets_ = [d.copy() for d in snap_map]
        l1._ways = ways_ = [list(w) for w in snap_ways]
        l1._dirty = dirty_ = [list(d) for d in snap_dirty]
        repls = l1_repl
        for s_, bits in enumerate(snap_bits):
            repls[s_]._bits = bits
        for block_, write_ in zip(blocks_list[: p + 1], writes_list[: p + 1]):
            s_ = block_ & l1_mask
            smap_ = sets_[s_]
            way_ = smap_.get(block_)
            repl_ = repls[s_]
            if way_ is None:
                sways_ = ways_[s_]
                if len(smap_) < l1_assoc:
                    way_ = sways_.index(None)
                else:
                    way_ = repl_._victim[repl_._bits]
                    del smap_[sways_[way_]]
                sways_[way_] = block_
                smap_[block_] = way_
                dirty_[s_][way_] = write_
            elif write_:
                dirty_[s_][way_] = True
            repl_._bits = (repl_._bits | repl_._or[way_]) & repl_._and[way_]
        l1_accurate = True
        hazard = True

    def evict(bank_, victim, dirty, p, i):
        """Mirror of ``Machine._llc_eviction`` with the own-core hazard
        guard; the DRAM write and inclusion check are inlined (D-NUCA
        and DRAM transients are excluded by the dispatch gate)."""
        nonlocal entry_resident
        dist_bank = dist_rows[bank_]
        if dirty:
            energy.llc_data_reads += 1
            # Inlined fault-free MemoryControllers.write.
            dst.writes += 1
            mcix = victim % dram_n_mc
            row = victim // dram_row_blocks
            if dram_open.get(mcix) == row:
                dst.row_hits += 1
            else:
                dst.row_misses += 1
                dram_open[mcix] = row
            routers = dist_bank[dram_tiles[mcix]] + 1
            m._acc_router_bytes += data_bytes * routers
            m._acc_flit_hops += data_flits * routers
            m._acc_messages += 1
            acc_cb[_WRITEBACK] += data_bytes
            energy.dram_accesses += 1
        # Inlined NucaLLC.any_bank_holds (inclusion check).
        vs = victim & llc_mask
        for bo in llc_banks:
            if victim in bo._map[vs]:
                return
        for core_ in drop_block(victim):
            routers = dist_bank[core_] + 1
            m._acc_router_bytes += 2 * CONTROL_BYTES * routers
            m._acc_flit_hops += 2 * ctrl_flits * routers
            m._acc_messages += 2
            acc_cb[_INVALIDATION] += CONTROL_BYTES
            acc_cb[_ACK] += CONTROL_BYTES
            if core_ == core and not l1_accurate:
                # Phase B's own L1 is at end-of-task state; decide
                # whether the invalidation could matter at time p.
                if entry_resident is None:
                    entry_resident = set()
                    for d_ in snap_map:
                        entry_resident.update(d_)
                if victim in entry_resident or any(
                    t[1] == victim for t in miss[: i + 1]
                ):
                    rewind(p)  # time-accurate from here on
                else:
                    # Provably never L1-resident up to p: the
                    # reference invalidate would be a no-op.
                    continue
            present, was_dirty = m.l1s[core_].invalidate(victim)
            if present and was_dirty:
                dst.writes += 1
                mcix = victim % dram_n_mc
                row = victim // dram_row_blocks
                if dram_open.get(mcix) == row:
                    dst.row_hits += 1
                else:
                    dst.row_misses += 1
                    dram_open[mcix] = row
                routers = dist_rows[core_][dram_tiles[mcix]] + 1
                m._acc_router_bytes += data_bytes * routers
                m._acc_flit_hops += data_flits * routers
                m._acc_messages += 1
                acc_cb[_WRITEBACK] += data_bytes
                energy.dram_accesses += 1

    wi = 0
    n_whit = len(whit_pos)
    j = 0  # writeback-event cursor into wb_bank_list
    i_end = len(miss)
    n_c = len(blocks_list)
    for i, (p, b, w, ev, evd) in enumerate(miss):
        while wi < n_whit and whit_pos[wi] < p:
            # Inlined Machine._write_hit_coherence fast path: this core
            # already owns the line alone (or silently upgrades).
            hb = whit_block[wi]
            wi += 1
            if d_sharers.get(hb, 0) & not_bit_core:
                whc(core, hb)
            elif d_owner.get(hb) != core:
                on_l1_fill(core, hb, True)
        bank = bank_list[i]

        # Directory (identical inline to the reference loop).
        mask = d_sharers.get(b, 0)
        if w:
            if mask & not_bit_core:
                cycles += coherence_actions(core, b, bank, on_l1_fill(core, b, True))
            else:
                d_sharers[b] = bit_core
                d_owner[b] = core
        else:
            owner = d_owner.get(b)
            if owner is not None and owner != core:
                cycles += coherence_actions(core, b, bank, on_l1_fill(core, b, False))
            else:
                d_sharers[b] = mask | bit_core
        entries = len(d_sharers)
        if entries > d_stats.entries_peak:
            d_stats.entries_peak = entries

        if bank == bypass:
            dram_pairs += 1
            mcix = b % dram_n_mc
            row = b // dram_row_blocks
            if dram_open.get(mcix) == row:
                d_row_hits += 1
                cycles += dram_row_hit_cyc
            else:
                d_row_misses += 1
                dram_open[mcix] = row
                cycles += dram_miss_cyc
            d_reads += 1
            dram_units += dist_core[dram_tiles[mcix]] + 1
        else:
            llc_req_units += dist_core[bank] + 1
            bank_obj = llc_banks[bank]
            bs = b & llc_mask
            bmap = bank_obj._map[bs]
            bway = bmap.get(b)
            if bway is not None:
                llc_hits += 1
                bst = bank_obj.stats
                bst.hits += 1
                bst.read_hits += 1
                repl = bank_obj._repl[bs]
                repl._bits = (repl._bits | repl._or[bway]) & repl._and[bway]
            else:
                llc_misses += 1
                bank_obj.stats.misses += 1
                dram_pairs += 1
                mcix = b % dram_n_mc
                row = b // dram_row_blocks
                if dram_open.get(mcix) == row:
                    d_row_hits += 1
                    cycles += dram_row_hit_cyc
                else:
                    d_row_misses += 1
                    dram_open[mcix] = row
                    cycles += dram_miss_cyc
                d_reads += 1
                dram_units += dist_rows[bank][dram_tiles[mcix]] + 1
                # Inlined CacheBank._insert(b, False).
                bways = bank_obj._ways[bs]
                repl = bank_obj._repl[bs]
                if len(bmap) < llc_assoc:
                    bway = bways.index(None)
                    bank_obj._occupancy += 1
                else:
                    bway = repl._victim[repl._bits]
                    evicted = bways[bway]
                    evicted_dirty = bank_obj._dirty[bs][bway]
                    del bmap[evicted]
                    bst = bank_obj.stats
                    bst.evictions += 1
                    if evicted_dirty:
                        bst.dirty_evictions += 1
                    bways[bway] = b
                    bmap[b] = bway
                    bank_obj._dirty[bs][bway] = False
                    repl._bits = (repl._bits | repl._or[bway]) & repl._and[bway]
                    evict(bank, evicted, evicted_dirty, p, i)
                    bway = None
                if bway is not None:
                    bways[bway] = b
                    bmap[b] = bway
                    bank_obj._dirty[bs][bway] = False
                    repl._bits = (repl._bits | repl._or[bway]) & repl._and[bway]

        if evd:
            wb_bank = wb_bank_list[j]
            j += 1
            # Inlined directory.on_l1_evict (dirty eviction).
            mask = d_sharers.get(ev, 0) & not_bit_core
            if mask:
                d_sharers[ev] = mask
            else:
                d_sharers.pop(ev, None)
            if d_owner.get(ev) == core:
                del d_owner[ev]
            if wb_bank == bypass:
                wb_dram += 1
                mcix = ev % dram_n_mc
                row = ev // dram_row_blocks
                if dram_open.get(mcix) == row:
                    d_row_hits += 1
                else:
                    d_row_misses += 1
                    dram_open[mcix] = row
                d_writes += 1
                wb_units += dist_core[dram_tiles[mcix]] + 1
            else:
                wb_units += dist_core[wb_bank] + 1
                wb_obj = llc_banks[wb_bank]
                wb_llc += 1
                # Inlined CacheBank.probe(ev, True) + _insert(ev, True).
                ws = ev & llc_mask
                wmap = wb_obj._map[ws]
                wway = wmap.get(ev)
                if wway is not None:
                    wst = wb_obj.stats
                    wst.hits += 1
                    wst.write_hits += 1
                    wb_obj._dirty[ws][wway] = True
                    wrepl = wb_obj._repl[ws]
                    wrepl._bits = (
                        wrepl._bits | wrepl._or[wway]
                    ) & wrepl._and[wway]
                else:
                    wb_obj.stats.misses += 1
                    wways = wb_obj._ways[ws]
                    wrepl = wb_obj._repl[ws]
                    if len(wmap) < llc_assoc:
                        wway = wways.index(None)
                        wb_obj._occupancy += 1
                        wways[wway] = ev
                        wmap[ev] = wway
                        wb_obj._dirty[ws][wway] = True
                        wrepl._bits = (
                            wrepl._bits | wrepl._or[wway]
                        ) & wrepl._and[wway]
                    else:
                        wway = wrepl._victim[wrepl._bits]
                        ev2 = wways[wway]
                        ev2_dirty = wb_obj._dirty[ws][wway]
                        del wmap[ev2]
                        wst = wb_obj.stats
                        wst.evictions += 1
                        if ev2_dirty:
                            wst.dirty_evictions += 1
                        wways[wway] = ev
                        wmap[ev] = wway
                        wb_obj._dirty[ws][wway] = True
                        wrepl._bits = (
                            wrepl._bits | wrepl._or[wway]
                        ) & wrepl._and[wway]
                        evict(wb_bank, ev2, ev2_dirty, p, i)

        if hazard:
            i_end = i + 1
            n_c = p + 1
            break
    else:
        while wi < n_whit:
            hb = whit_block[wi]
            wi += 1
            if d_sharers.get(hb, 0) & not_bit_core:
                whc(core, hb)
            elif d_owner.get(hb) != core:
                on_l1_fill(core, hb, True)

    if hazard:
        # Recount the phase-A/resolution stats over the committed prefix
        # (misses [0, i_end) and the first j writebacks).
        l1_evs = sum(1 for t in miss[:i_end] if t[3] >= 0)
        n_rrt_hits, n_bypass, n_local = _prefix_policy_counts(
            miss, i_end, j, core, td_fast, td_starts, td_ends, td_masks,
            td_shift, td_bank_mask, sn_mask, bank_list, wb_bank_list,
        )

    # ---- Commit the batched deltas (exact mirror of the reference
    # post-loop; on a hazard this covers positions [0, p] and the
    # reference interpreter finishes — and commits — the suffix). ----
    n_l1_miss = i_end
    n_wb = j
    l1_hits = n_c - n_l1_miss
    l1_write_hits = wi
    l1_new = n_l1_miss - l1_evs
    l1_dirty_evs = n_wb
    llc_req = llc_hits + llc_misses

    cycles += (compute + lat.l1_hit) * n_c
    is_td = m.rrts is not None
    if is_td:
        cycles += policy.lookup_cycles * n_l1_miss
    cycles += lat.llc_hit * llc_hits + lat.llc_miss_probe * llc_misses
    cycles += 2 * lat.per_hop * (
        llc_req_units - llc_req + dram_units - dram_pairs
    )

    st = l1.stats
    st.hits += l1_hits
    st.read_hits += l1_hits - l1_write_hits
    st.write_hits += l1_write_hits
    st.misses += n_l1_miss
    st.evictions += l1_evs
    st.dirty_evictions += l1_dirty_evs
    l1._occupancy += l1_new

    n_res = n_l1_miss + n_wb
    pst = policy.stats
    pst.resolutions += n_res
    pst.local_bank_hits += n_local
    if td_fast:
        rst = td_rrt.stats
        rst.lookups += n_res
        rst.hits += n_rrt_hits
        pst.bypasses += n_bypass

    dst.reads += d_reads
    dst.writes += d_writes
    dst.row_hits += d_row_hits
    dst.row_misses += d_row_misses

    energy.l1_accesses += n_c
    if is_td:
        energy.rrt_lookups += n_res
    energy.llc_tag_probes += llc_req + wb_llc
    energy.llc_data_reads += llc_hits
    energy.llc_data_writes += llc_misses + wb_llc
    energy.dram_accesses += dram_pairs + wb_dram

    total_units = llc_req_units + dram_units
    m._acc_router_bytes += (
        (CONTROL_BYTES + data_bytes) * total_units + data_bytes * wb_units
    )
    m._acc_flit_hops += (
        (ctrl_flits + data_flits) * total_units + data_flits * wb_units
    )
    m._acc_messages += 2 * (llc_req + dram_pairs) + n_wb
    acc_cb[_REQUEST] += CONTROL_BYTES * llc_req
    acc_cb[_DATA] += data_bytes * llc_req
    acc_cb[_WRITEBACK] += data_bytes * n_wb
    acc_cb[_DRAM_REQUEST] += CONTROL_BYTES * dram_pairs
    acc_cb[_DRAM_DATA] += data_bytes * dram_pairs
    m._acc_nuca_sum += llc_req_units - llc_req
    m._acc_nuca_count += llc_req
    m._flush_traffic()

    if hazard:
        cycles += run_blocks_interpreted(
            m, core, pblocks[n_c:], writes[n_c:], compute_per_access
        )
    return cycles, hazard


def _prefix_policy_counts(miss, i_end, j_end, core, td_fast, td_starts,
                          td_ends, td_masks, td_shift, td_bank_mask,
                          sn_mask, bank_list, wb_bank_list):
    """Policy/RRT stat counts over the hazard-committed prefix: the first
    ``i_end`` demand misses plus the first ``j_end`` writebacks.  Redoes
    the (cheap) resolution rather than storing per-event flags on the
    hot path — hazards are rare."""
    if not td_fast:
        n_local = sum(1 for bk in bank_list[:i_end] if bk == core)
        n_local += sum(1 for bk in wb_bank_list[:j_end] if bk == core)
        return 0, 0, n_local
    n_rrt_hits = n_bypass = n_local = 0
    blocks = [t[1] for t in miss[:i_end]]
    blocks += [t[3] for t in miss[:i_end] if t[4]][:j_end]
    for block in blocks:
        mask_bits = None
        if td_starts is not None:
            paddr = block << td_shift
            ti = bisect_right(td_starts, paddr) - 1
            if ti >= 0 and paddr < td_ends[ti]:
                n_rrt_hits += 1
                mask_bits = td_masks[ti]
        if mask_bits is None:
            if block & td_bank_mask == core:
                n_local += 1
        elif mask_bits == 0:
            n_bypass += 1
        else:
            dbanks = decode_bank_mask(mask_bits)
            nb = len(dbanks)
            bank = dbanks[0] if nb == 1 else dbanks[block % nb]
            if bank == core:
                n_local += 1
    return n_rrt_hits, n_bypass, n_local
