"""The verify kernel: run both backends on every task, demand equality.

``REPRO_KERNEL=verify`` is the debug/chaos harness behind the golden
equivalence gate: each task runs on the vector kernel, the full machine
state is digested, the machine is rolled back (via the PR-5 snapshot
layer) and the task re-runs on the reference interpreter.  Any
divergence — state digest or returned cycle count — raises
:class:`KernelMismatchError` naming the first bad task.

The ``kernel.dispatch.mismatch`` failpoint mangles the vector digest so
the chaos suite can prove the comparison actually trips (a verifier that
cannot fail verifies nothing).
"""

from __future__ import annotations

import hashlib
import json

from repro import failpoints
from repro.sim.kernels import KernelMismatchError, SimKernel
from repro.sim.kernels.reference import run_blocks_interpreted
from repro.sim.kernels.vector import VectorKernel

__all__ = ["VerifyKernel"]

#: failpoint site: corrupts the vector-side digest to force a mismatch.
MISMATCH_SITE = "kernel.dispatch.mismatch"


def _digest(state: dict) -> bytes:
    blob = json.dumps(state, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).digest()


class VerifyKernel(SimKernel):
    """Double-execution harness; returns the reference result."""

    name = "verify"

    def __init__(self) -> None:
        super().__init__()
        self._vector = VectorKernel()

    def run_blocks(self, m, core, pblocks, writes, compute_per_access=None):
        self.stats.tasks_total += 1
        self.stats.tasks_verified += 1
        # state_dict() demands a quiescent machine; page-classification
        # flushes may have left pending traffic deltas.
        m._flush_traffic()
        before = m.state_dict()
        v_cycles = self._vector.run_blocks(
            m, core, pblocks, writes, compute_per_access
        )
        v_digest = failpoints.mangle(MISMATCH_SITE, _digest(m.state_dict()))
        m.load_state_dict(before)
        r_cycles = run_blocks_interpreted(
            m, core, pblocks, writes, compute_per_access
        )
        r_digest = _digest(m.state_dict())
        if v_digest != r_digest or v_cycles != r_cycles:
            task_no = m.tasks_completed + 1
            raise KernelMismatchError(
                f"vector/reference divergence at task {task_no} on core "
                f"{core} (policy {m.policy.name}): cycles "
                f"{v_cycles} vs {r_cycles}, state digests "
                f"{v_digest.hex()[:16]} vs {r_digest.hex()[:16]}"
            )
        return r_cycles
