"""Latency composition for the memory access paths.

All end-to-end latencies are built from the Table-I components; round
trips over the NoC cost ``2 * hops * (link + router)`` cycles.  Kept as a
small object with precomputed per-hop cost so the machine's hot loop does
plain integer arithmetic.

Table I describes a 16-core 4x4 mesh.  Larger meshes are not just "more
hops": bigger tag arrays, longer H-trees, wider arbiters and a more
loaded network raise the per-component costs themselves, so scale-out
scenarios select a calibrated per-mesh-size table via
:func:`latency_for_mesh` instead of stretching the 4x4 numbers.  The
tables are keyed by core count bands; a non-square mesh uses the band its
tile count falls in (a 4x8 mesh pays 8x8-class latencies).
"""

from __future__ import annotations

from repro.config import LatencyConfig

__all__ = ["LatencyModel", "MESH_LATENCY_TABLES", "latency_for_mesh"]

#: calibrated component latencies per mesh-size band, keyed by the
#: *maximum* core count the band covers.  The 16-core row is exactly
#: Table I (so paper-geometry configs are untouched); the 64- and
#: 256-core rows model the slower LLC banks (deeper tag/data arrays),
#: costlier miss probes, higher average NoC queueing of a busier fabric,
#: and the longer board trip to the memory controllers of a bigger chip.
MESH_LATENCY_TABLES: dict[int, LatencyConfig] = {
    16: LatencyConfig(),
    64: LatencyConfig(
        llc_hit=18,
        llc_miss_probe=6,
        dram=130,
        dram_row_hit=50,
        noc_contention=3,
    ),
    256: LatencyConfig(
        llc_hit=22,
        llc_miss_probe=8,
        dram=140,
        dram_row_hit=55,
        noc_contention=4,
    ),
}


def latency_for_mesh(width: int, height: int) -> LatencyConfig:
    """The calibrated :class:`LatencyConfig` for a ``width x height`` mesh.

    Selection is by tile count: the smallest band that fits the mesh.
    Meshes beyond the largest table (256 cores) use the 256-core numbers —
    by then distance, not component latency, dominates.
    """
    if width <= 0 or height <= 0:
        raise ValueError("mesh dimensions must be positive")
    cores = width * height
    for band in sorted(MESH_LATENCY_TABLES):
        if cores <= band:
            return MESH_LATENCY_TABLES[band]
    return MESH_LATENCY_TABLES[max(MESH_LATENCY_TABLES)]


class LatencyModel:
    """Precomputed cycle costs for one :class:`LatencyConfig`."""

    __slots__ = (
        "cfg",
        "l1_hit",
        "llc_hit",
        "llc_miss_probe",
        "dram",
        "per_hop",
        "compute",
    )

    def __init__(self, cfg: LatencyConfig) -> None:
        self.cfg = cfg
        self.l1_hit = cfg.l1_hit
        self.llc_hit = cfg.llc_hit
        self.llc_miss_probe = cfg.llc_miss_probe
        self.dram = cfg.dram
        self.per_hop = cfg.noc_per_hop()
        self.compute = cfg.compute_per_access

    def llc_access(self, hops: int) -> int:
        """L1 miss served by an LLC bank ``hops`` away (round trip)."""
        return self.l1_hit + 2 * hops * self.per_hop + self.llc_hit

    def llc_miss_detect(self, hops: int) -> int:
        """L1 miss that also misses the LLC bank: request + tag probe
        (the data-array read never happens)."""
        return self.l1_hit + 2 * hops * self.per_hop + self.llc_miss_probe

    def llc_miss_extra(self, bank_to_mc_hops: int, dram_cycles: int) -> int:
        """Additional cycles when the LLC bank misses and fetches from the
        controller ``bank_to_mc_hops`` away (``dram_cycles`` from the
        row-buffer model)."""
        return 2 * bank_to_mc_hops * self.per_hop + dram_cycles

    def bypass_access(self, core_to_mc_hops: int, dram_cycles: int) -> int:
        """L1 miss served directly by a memory controller (LLC bypass)."""
        return self.l1_hit + 2 * core_to_mc_hops * self.per_hop + dram_cycles

    def dram_retry(self, attempt: int, dram_cycles: int) -> int:
        """Cost of the ``attempt``-th (1-based) retry of a DRAM access hit
        by a transient error: a full re-access plus exponential backoff."""
        if attempt <= 0:
            raise ValueError("attempt is 1-based")
        return dram_cycles + (self.cfg.dram_retry_backoff << (attempt - 1))
