"""Latency composition for the memory access paths.

All end-to-end latencies are built from the Table-I components; round
trips over the NoC cost ``2 * hops * (link + router)`` cycles.  Kept as a
small object with precomputed per-hop cost so the machine's hot loop does
plain integer arithmetic.
"""

from __future__ import annotations

from repro.config import LatencyConfig

__all__ = ["LatencyModel"]


class LatencyModel:
    """Precomputed cycle costs for one :class:`LatencyConfig`."""

    __slots__ = (
        "cfg",
        "l1_hit",
        "llc_hit",
        "llc_miss_probe",
        "dram",
        "per_hop",
        "compute",
    )

    def __init__(self, cfg: LatencyConfig) -> None:
        self.cfg = cfg
        self.l1_hit = cfg.l1_hit
        self.llc_hit = cfg.llc_hit
        self.llc_miss_probe = cfg.llc_miss_probe
        self.dram = cfg.dram
        self.per_hop = cfg.noc_per_hop()
        self.compute = cfg.compute_per_access

    def llc_access(self, hops: int) -> int:
        """L1 miss served by an LLC bank ``hops`` away (round trip)."""
        return self.l1_hit + 2 * hops * self.per_hop + self.llc_hit

    def llc_miss_detect(self, hops: int) -> int:
        """L1 miss that also misses the LLC bank: request + tag probe
        (the data-array read never happens)."""
        return self.l1_hit + 2 * hops * self.per_hop + self.llc_miss_probe

    def llc_miss_extra(self, bank_to_mc_hops: int, dram_cycles: int) -> int:
        """Additional cycles when the LLC bank misses and fetches from the
        controller ``bank_to_mc_hops`` away (``dram_cycles`` from the
        row-buffer model)."""
        return 2 * bank_to_mc_hops * self.per_hop + dram_cycles

    def bypass_access(self, core_to_mc_hops: int, dram_cycles: int) -> int:
        """L1 miss served directly by a memory controller (LLC bypass)."""
        return self.l1_hit + 2 * core_to_mc_hops * self.per_hop + dram_cycles

    def dram_retry(self, attempt: int, dram_cycles: int) -> int:
        """Cost of the ``attempt``-th (1-based) retry of a DRAM access hit
        by a transient error: a full re-access plus exponential backoff."""
        if attempt <= 0:
            raise ValueError("attempt is 1-based")
        return dram_cycles + (self.cfg.dram_retry_backoff << (attempt - 1))
