"""The machine: cores, private L1s, banked NUCA LLC, coherence directory,
NoC, memory controllers and the active NUCA policy, driven by task traces.

This is the gem5/Ruby stand-in.  :meth:`Machine.run_task_trace` pushes a
task's block trace through the hierarchy:

L1 probe -> (RRT lookup under TD-NUCA) -> policy bank resolution ->
LLC bank access or bypass -> DRAM on miss -> fills, evictions, writebacks,
coherence invalidations -> latency, traffic and energy accounting.

Everything the paper's evaluation section measures falls out of this loop:
LLC accesses and hit ratios (Figs. 9/10), NUCA distances (Fig. 11), NoC
router-bytes (Fig. 12), LLC/NoC dynamic energy events (Figs. 13/14) and
the memory component of execution time (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.bank import BankStats
from repro.cache.directory import CoherenceDirectory
from repro.cache.l1 import L1Cache
from repro.cache.llc import NucaLLC
from repro.config import SystemConfig
from repro.core.isa import TdNucaISA
from repro.core.rrt import RRT
from repro.core.tdnuca import TdNucaPolicy
from repro.energy.model import EnergyBreakdown, EnergyTally
from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.faults.schedule import FaultSchedule, parse_fault_spec
from repro.mem.address import AddressMap
from repro.mem.pagetable import PageTable
from repro.mem.tlb import TLB, TLBStats
from repro.noc.topology import Mesh
from repro.noc.traffic import CONTROL_BYTES, MessageClass, TrafficStats, data_message_bytes
from repro.nuca.base import BYPASS, FlushAction, NucaPolicy
from repro.nuca.dnuca import DNuca
from repro.nuca.rnuca import RNuca
from repro.nuca.snuca import SNuca
from repro.runtime.task import Task
from repro.runtime.trace import build_trace
from repro.sim.dram import MemoryControllers
from repro.sim.latency import LatencyModel
from repro.stats.counters import BlockCensus

__all__ = ["Machine", "MachineStats", "build_machine", "POLICIES"]

#: recognised policy names for :func:`build_machine`.
POLICIES = (
    "snuca",
    "rnuca",
    "dnuca",
    "tdnuca",
    "tdnuca-bypass-only",
    "tdnuca-noisa",
)


@dataclass
class MachineStats:
    """Post-run snapshot of everything the figures consume."""

    policy: str
    llc: BankStats
    l1: BankStats
    traffic: TrafficStats
    energy: EnergyBreakdown
    tlb: TLBStats
    dram_reads: int
    dram_writes: int
    llc_accesses: int = 0
    llc_hit_ratio: float = 0.0
    mean_nuca_distance: float = 0.0
    router_bytes: int = 0
    bypassed_accesses: int = 0
    #: degraded-mode accounting; ``None`` when no fault schedule attached.
    faults: FaultStats | None = None
    extra: dict = field(default_factory=dict)


class Machine:
    """One simulated 16-core tiled CMP with a pluggable NUCA policy."""

    def __init__(
        self,
        cfg: SystemConfig,
        policy: NucaPolicy,
        *,
        fragmentation: float = 0.03,
        seed: int = 0,
        census: bool = True,
        isa: TdNucaISA | None = None,
        rrts: list[RRT] | None = None,
    ) -> None:
        cfg.validate()
        self.cfg = cfg
        self.amap = AddressMap(
            cfg.block_bytes, cfg.page_bytes, cfg.physical_address_bits
        )
        self.mesh = Mesh(
            cfg.mesh_width, cfg.mesh_height, cfg.cluster_width, cfg.cluster_height
        )
        self.pagetable = PageTable(self.amap, fragmentation, seed)
        self.tlbs = [
            TLB(self.pagetable, cfg.tlb_entries) for _ in range(cfg.num_cores)
        ]
        self.l1s = [
            L1Cache(c, cfg.l1_bytes, cfg.l1_assoc, cfg.block_bytes)
            for c in range(cfg.num_cores)
        ]
        self.llc = NucaLLC(
            cfg.num_banks, cfg.llc_bank_bytes, cfg.llc_assoc, cfg.block_bytes
        )
        self.directory = CoherenceDirectory(cfg.num_cores)
        self.dram = MemoryControllers(self.mesh, cfg.latency)
        self.traffic = TrafficStats(cfg.energy.flit_bytes)
        self.energy = EnergyTally()
        self.latency = LatencyModel(cfg.latency)
        self.policy = policy
        self.census = BlockCensus(cfg.num_cores) if census else None
        self.isa = isa
        self.rrts = rrts
        self._dnuca = policy if isinstance(policy, DNuca) else None
        if isa is not None:
            isa.flush_executor = self._execute_flush
        self._data_bytes = data_message_bytes(cfg.block_bytes)
        self._page_block_shift = self.amap.page_shift - self.amap.block_shift
        # Fault injection / strict checking (idle unless configured).
        self.tasks_completed = 0
        self.fault_injector: FaultInjector | None = None
        self.invariant_checker = (
            InvariantChecker(cfg.strict_check_interval)
            if cfg.strict_invariants
            else None
        )
        self._dead_banks: set[int] = set()
        self._alive_banks: list[int] = list(range(cfg.num_banks))
        # Per-core runtime/stack scratch regions (non-dependency traffic).
        # Placed at the top of the virtual address space so they can never
        # alias workload allocations (which grow upward from 0x1000).
        scratch_base = 1 << 40
        stride = max(cfg.page_bytes, cfg.nondep_blocks_per_task * cfg.block_bytes)
        self._scratch_vblocks = []
        for c in range(cfg.num_cores):
            start = (scratch_base + c * stride) >> self.amap.block_shift
            self._scratch_vblocks.append(
                np.arange(start, start + cfg.nondep_blocks_per_task, dtype=np.int64)
            )

    @property
    def num_cores(self) -> int:
        return self.cfg.num_cores

    # ------------------------------------------------------------------
    # trace execution (the hot path)
    # ------------------------------------------------------------------

    def run_task_trace(self, core: int, task: Task) -> int:
        """Apply ``task``'s memory trace issued from ``core``; returns the
        memory + per-access compute cycles it took."""
        trace = build_trace(task, self.amap)
        vblocks, writes = trace.vblocks, trace.writes
        scratch = self._scratch_vblocks[core]
        if len(scratch):
            # Runtime/stack traffic: one read and one write sweep per task.
            vblocks = np.concatenate([scratch, vblocks, scratch])
            writes = np.concatenate(
                [
                    np.zeros(len(scratch), dtype=bool),
                    writes,
                    np.ones(len(scratch), dtype=bool),
                ]
            )
        if len(vblocks) == 0:
            self._task_boundary()
            return 0
        if self.census is not None:
            self.census.record(core, vblocks, writes)
        pblocks = self.pagetable.translate_blocks(vblocks)

        # Batch OS page classification (R-NUCA); reads before writes.
        pages = pblocks >> self._page_block_shift
        uniq_pages, inverse = np.unique(pages, return_inverse=True)
        wrote = np.zeros(len(uniq_pages), dtype=bool)
        np.logical_or.at(wrote, inverse, writes)
        for action in self.policy.classify_pages(core, uniq_pages.tolist(), wrote.tolist()):
            self._apply_flush_action(action)

        cycles = self._run_blocks(core, pblocks, writes, task.compute_per_access)
        self._task_boundary()
        return cycles

    def _task_boundary(self) -> None:
        """One task's trace finished: fire due faults, then (strict mode)
        check invariants against the now-quiescent hierarchy."""
        self.tasks_completed += 1
        if self.fault_injector is not None:
            self.fault_injector.on_task_boundary(self.tasks_completed)
        if self.invariant_checker is not None:
            self.invariant_checker.on_task_boundary(self, self.tasks_completed)

    def _run_blocks(
        self,
        core: int,
        pblocks: np.ndarray,
        writes: np.ndarray,
        compute_per_access: int | None = None,
    ) -> int:
        # Local aliases: this loop runs per memory reference.
        lat = self.latency
        l1 = self.l1s[core]
        llc = self.llc
        mesh_dist = self.mesh.distance[core]
        policy = self.policy
        bank_for = policy.bank_for
        directory = self.directory
        dram = self.dram
        traffic = self.traffic
        energy = self.energy
        rrt_cycles = policy.lookup_cycles
        data_bytes = self._data_bytes
        is_td = self.rrts is not None
        dnuca = self._dnuca
        compute = lat.compute if compute_per_access is None else compute_per_access
        cycles = 0

        for block, write in zip(pblocks.tolist(), writes.tolist()):
            cycles += compute
            energy.l1_accesses += 1
            res = l1.access(block, write)
            if res.hit:
                cycles += lat.l1_hit
                if write:
                    self._write_hit_coherence(core, block)
                continue

            # L1 miss: RRT lookup (TD-NUCA) / NUCA search (D-NUCA), then
            # bank resolution.
            if is_td:
                cycles += rrt_cycles
                energy.rrt_lookups += 1
            elif dnuca is not None:
                cycles += rrt_cycles  # location-table search cost
            bank = bank_for(core, block, write)

            # Coherence: fetch may invalidate/downgrade remote L1 copies.
            actions = directory.on_l1_fill(core, block, write)
            if actions.invalidate or actions.writeback_from is not None:
                cycles += self._coherence_actions(core, block, bank, actions)

            if bank == BYPASS:
                mc, dram_cycles = dram.read(block)
                hops = int(mesh_dist[mc])
                traffic.record_message(MessageClass.DRAM_REQUEST, CONTROL_BYTES, hops)
                traffic.record_message(MessageClass.DRAM_DATA, data_bytes, hops)
                energy.dram_accesses += 1
                cycles += lat.bypass_access(hops, dram_cycles)
            else:
                hops = int(mesh_dist[bank])
                traffic.record_message(MessageClass.REQUEST, CONTROL_BYTES, hops)
                traffic.record_nuca_distance(hops)
                res2 = llc.access(bank, block, False)
                if res2.hit:
                    energy.llc_hit_read()
                    cycles += lat.llc_access(hops)
                else:
                    energy.llc_miss_fill()
                    mc, dram_cycles = dram.read(block)
                    mc_hops = self.mesh.hops(bank, mc)
                    traffic.record_message(
                        MessageClass.DRAM_REQUEST, CONTROL_BYTES, mc_hops
                    )
                    traffic.record_message(MessageClass.DRAM_DATA, data_bytes, mc_hops)
                    energy.dram_accesses += 1
                    cycles += lat.llc_miss_detect(hops) + lat.llc_miss_extra(
                        mc_hops, dram_cycles
                    )
                    if res2.evicted is not None:
                        self._llc_eviction(bank, res2.evicted, res2.evicted_dirty)
                traffic.record_message(MessageClass.DATA, data_bytes, hops)
                if dnuca is not None:
                    migration = dnuca.post_access(core, block, bank)
                    if migration is not None:
                        self._migrate_block(migration)

            # L1 fill displaced a victim; dirty victims write back through
            # the policy-resolved bank (the RRT is consulted for
            # writebacks too — Section III-B3).
            if res.evicted is not None and res.evicted_dirty:
                self._l1_writeback(core, res.evicted)

        return cycles

    # ------------------------------------------------------------------
    # fault injection (graceful degradation)
    # ------------------------------------------------------------------

    def attach_faults(self, schedule: FaultSchedule, seed: int = 0) -> FaultInjector:
        """Install a fault schedule; fires any ``at_task=0`` events now."""
        if self.fault_injector is not None:
            raise RuntimeError("a fault schedule is already attached")
        injector = FaultInjector(self, schedule, seed)
        self.fault_injector = injector
        injector.activate()
        return injector

    def fail_bank(self, bank: int) -> dict[str, int]:
        """Hard-fail one LLC bank: its contents are lost, the policy remaps
        future accesses to surviving banks, orphaned L1 copies are
        back-invalidated (dirty ones drain to DRAM — the L1s still work)
        and TD-NUCA RRT entries naming the bank are invalidated.  Returns
        the loss accounting for :class:`repro.faults.injector.FaultStats`."""
        victims = self.llc.banks[bank].resident_items()
        self.llc.kill_bank(bank)
        self.policy.disable_bank(bank)
        self._dead_banks.add(bank)
        self._alive_banks = [
            b for b in range(self.cfg.num_banks) if b not in self._dead_banks
        ]
        l1_dropped = 0
        for block, _dirty in victims:
            if self.llc.banks_holding(block):
                continue  # a replica in a live bank preserves inclusion
            for core in self.directory.drop_block(block):
                present, was_dirty = self.l1s[core].invalidate(block)
                if not present:
                    continue
                l1_dropped += 1
                if was_dirty:
                    mc, _ = self.dram.write(block)
                    self.traffic.record_message(
                        MessageClass.WRITEBACK,
                        self._data_bytes,
                        self.mesh.hops(core, mc),
                    )
                    self.energy.dram_accesses += 1
        rrt_dropped = 0
        if self.rrts is not None:
            for rrt in self.rrts:
                rrt_dropped += rrt.drop_bank_entries(bank)
        return {
            "blocks_lost": len(victims),
            "dirty_blocks_lost": sum(1 for _, d in victims if d),
            "l1_copies_dropped": l1_dropped,
            "rrt_entries_dropped": rrt_dropped,
        }

    def fail_link(self, a: int, b: int) -> None:
        """Hard-fail one NoC link; the mesh recomputes all distances over
        the surviving links (fault-aware fallback routing)."""
        self.mesh.fail_link(a, b)

    def _home_bank(self, block: int) -> int:
        """Static home bank for coherence traffic, remapped around dead
        banks the same way the policies remap (block-interleaved over the
        survivors)."""
        bank = block % self.cfg.num_banks
        if self._dead_banks and bank in self._dead_banks:
            alive = self._alive_banks
            bank = alive[block % len(alive)]
        return bank

    def check_invariants(self) -> list[InvariantViolation]:
        """Full machine-wide invariant sweep; [] means consistent."""
        from repro.faults.invariants import check_machine

        return check_machine(self)

    # ------------------------------------------------------------------
    # coherence and writeback helpers
    # ------------------------------------------------------------------

    def _write_hit_coherence(self, core: int, block: int) -> None:
        """Upgrade on an L1 write hit: invalidate remote sharers."""
        directory = self.directory
        mask = directory.sharer_mask(block)
        bit = 1 << core
        if mask & ~bit:
            actions = directory.on_l1_fill(core, block, True)
            bank = self._home_bank(block)  # upgrade goes to home bank
            self._coherence_actions(core, block, bank, actions)
        elif directory.owner(block) != core:
            # Silent E->M (or stale-presence) upgrade: just take ownership.
            directory.on_l1_fill(core, block, True)

    def _coherence_actions(self, core: int, block: int, bank: int, actions) -> int:
        """Perform invalidations/downgrades; returns added cycles."""
        traffic = self.traffic
        mesh = self.mesh
        home = bank if bank != BYPASS else self._home_bank(block)
        cycles = 0
        for victim_core in actions.invalidate:
            hops = mesh.hops(home, victim_core)
            traffic.record_message(MessageClass.INVALIDATION, CONTROL_BYTES, hops)
            traffic.record_message(MessageClass.ACK, CONTROL_BYTES, hops)
            present, dirty = self.l1s[victim_core].invalidate(block)
            if present and dirty and victim_core != actions.writeback_from:
                self._writeback_to_llc(victim_core, block, home)
            cycles = max(cycles, 2 * hops * self.latency.per_hop)
        wb = actions.writeback_from
        if wb is not None and wb not in actions.invalidate:
            # Downgrade: owner supplies data and keeps a clean copy.
            self.l1s[wb].make_clean(block)
            self._writeback_to_llc(wb, block, home)
            cycles = max(cycles, 2 * mesh.hops(home, wb) * self.latency.per_hop)
        elif wb is not None:
            self._writeback_to_llc(wb, block, home)
        return cycles

    def _writeback_to_llc(self, core: int, block: int, bank: int) -> None:
        """Dirty data moves from ``core``'s L1 into ``bank``."""
        hops = self.mesh.hops(core, bank)
        self.traffic.record_message(MessageClass.WRITEBACK, self._data_bytes, hops)
        res = self.llc.access(bank, block, True)
        if res.hit:
            self.energy.llc_hit_write()
        else:
            self.energy.llc_miss_fill()
            if res.evicted is not None:
                self._llc_eviction(bank, res.evicted, res.evicted_dirty)

    def _l1_writeback(self, core: int, block: int) -> None:
        """Dirty L1 victim: policy decides where the writeback goes."""
        bank = self.policy.bank_for(core, block, True)
        if self.rrts is not None:
            self.energy.rrt_lookups += 1
        self.directory.on_l1_evict(core, block, True)
        if bank == BYPASS:
            mc, _ = self.dram.write(block)
            hops = self.mesh.hops(core, mc)
            self.traffic.record_message(MessageClass.WRITEBACK, self._data_bytes, hops)
            self.energy.dram_accesses += 1
        else:
            self._writeback_to_llc(core, block, bank)

    def _migrate_block(self, migration) -> None:
        """D-NUCA gradual migration: move the block one bank over."""
        present, dirty = self.llc.banks[migration.src_bank].invalidate(
            migration.block
        )
        if not present:
            return
        hops = self.mesh.hops(migration.src_bank, migration.dst_bank)
        self.traffic.record_message(MessageClass.DATA, self._data_bytes, hops)
        self.energy.llc_victim_read()
        res = self.llc.banks[migration.dst_bank].fill(migration.block, dirty)
        self.energy.llc_miss_fill()
        if res.evicted is not None:
            if self._dnuca is not None:
                self._dnuca.evicted(res.evicted)
            self._llc_eviction(migration.dst_bank, res.evicted, res.evicted_dirty)

    def _llc_eviction(self, bank: int, victim: int, dirty: bool) -> None:
        """An LLC fill displaced ``victim``: write back if dirty and
        back-invalidate L1 copies (the LLC is inclusive)."""
        if self._dnuca is not None:
            self._dnuca.evicted(victim)
        if dirty:
            self.energy.llc_victim_read()
            mc, _ = self.dram.write(victim)
            hops = self.mesh.hops(bank, mc)
            self.traffic.record_message(MessageClass.WRITEBACK, self._data_bytes, hops)
            self.energy.dram_accesses += 1
        # Inclusive LLC: if no other bank holds a replica, L1 copies must go.
        if not self.llc.banks_holding(victim):
            for core in self.directory.drop_block(victim):
                hops = self.mesh.hops(bank, core)
                self.traffic.record_message(
                    MessageClass.INVALIDATION, CONTROL_BYTES, hops
                )
                self.traffic.record_message(MessageClass.ACK, CONTROL_BYTES, hops)
                present, was_dirty = self.l1s[core].invalidate(victim)
                if present and was_dirty:
                    mc, _ = self.dram.write(victim)
                    self.traffic.record_message(
                        MessageClass.WRITEBACK,
                        self._data_bytes,
                        self.mesh.hops(core, mc),
                    )
                    self.energy.dram_accesses += 1

    # ------------------------------------------------------------------
    # flush execution (tdnuca_flush and R-NUCA reclassification)
    # ------------------------------------------------------------------

    def _apply_flush_action(self, action: FlushAction) -> None:
        """R-NUCA reclassification flush."""
        blocks = list(action.blocks)
        if action.llc_banks:
            self._flush_llc(blocks, action.llc_banks)
        if action.l1_cores:
            self._flush_l1(blocks, action.l1_cores)

    def _execute_flush(
        self, blocks: list[int], level: str, tiles: tuple[int, ...]
    ) -> tuple[int, int]:
        """Installed as the TD-NUCA ISA flush executor."""
        if level == "l1":
            return self._flush_l1(blocks, tiles)
        return self._flush_llc(blocks, tiles)

    def _flush_l1(self, blocks: list[int], cores) -> tuple[int, int]:
        flushed = dirty_total = 0
        for core in cores:
            l1 = self.l1s[core]
            directory = self.directory
            for block in blocks:
                present, dirty = l1.invalidate(block)
                if not present:
                    continue
                flushed += 1
                directory.on_l1_evict(core, block, dirty)
                if dirty:
                    dirty_total += 1
                    mc, _ = self.dram.write(block)
                    self.traffic.record_message(
                        MessageClass.WRITEBACK,
                        self._data_bytes,
                        self.mesh.hops(core, mc),
                    )
                    self.energy.dram_accesses += 1
        return flushed, dirty_total

    def _flush_llc(self, blocks: list[int], banks) -> tuple[int, int]:
        flushed = dirty_total = 0
        for bank in banks:
            bank_obj = self.llc.banks[bank]
            self.energy.llc_probe(len(blocks))
            for block in blocks:
                present, dirty = bank_obj.invalidate(block)
                if not present:
                    continue
                flushed += 1
                if dirty:
                    dirty_total += 1
                    self.energy.llc_victim_read()
                    mc, _ = self.dram.write(block)
                    self.traffic.record_message(
                        MessageClass.WRITEBACK,
                        self._data_bytes,
                        self.mesh.hops(bank, mc),
                    )
                    self.energy.dram_accesses += 1
        return flushed, dirty_total

    # ------------------------------------------------------------------
    # stats reset (post-warmup measurement window)
    # ------------------------------------------------------------------

    def reset_stats(self) -> None:
        """Zero all counters while keeping cache contents, page mappings
        and OS/RRT classification state — the paper measures only the
        post-initialisation execution phase."""
        from repro.cache.bank import BankStats
        from repro.cache.directory import DirectoryStats
        from repro.core.rrt import RRTStats
        from repro.mem.tlb import TLBStats
        from repro.nuca.base import PolicyStats
        from repro.sim.dram import DramStats

        for l1 in self.l1s:
            l1.stats = BankStats()
        for bank in self.llc.banks:
            bank.stats = BankStats()
        for tlb in self.tlbs:
            tlb.stats = TLBStats()
        self.directory.stats = DirectoryStats()
        self.dram.stats = DramStats()
        self.traffic = TrafficStats(self.cfg.energy.flit_bytes)
        self.energy = EnergyTally()
        self.policy.stats = PolicyStats()
        if self.census is not None:
            self.census = BlockCensus(self.cfg.num_cores)
        if self.rrts is not None:
            for rrt in self.rrts:
                rrt.stats = RRTStats()
        if self.isa is not None:
            from repro.core.isa import ISAStats

            self.isa.stats = ISAStats()

    # ------------------------------------------------------------------
    # stats snapshot
    # ------------------------------------------------------------------

    def collect_stats(self) -> MachineStats:
        llc = self.llc.aggregate_stats()
        l1 = BankStats()
        for cache in self.l1s:
            l1.merge(cache.stats)
        tlb = TLBStats()
        for t in self.tlbs:
            tlb.merge(t.stats)
        energy = self.energy.breakdown(self.cfg.energy, self.traffic.flit_hops)
        extra: dict = {}
        if self.invariant_checker is not None:
            # Final sweep so even a run shorter than the check interval
            # ends with at least one full consistency proof.
            self.invariant_checker.full_sweep(self)
            extra["invariants"] = {
                "checks_run": self.invariant_checker.checks_run,
                "full_sweeps": self.invariant_checker.full_sweeps,
                "violations": self.invariant_checker.violations_found,
            }
        faults = (
            self.fault_injector.snapshot()
            if self.fault_injector is not None
            else None
        )
        return MachineStats(
            policy=self.policy.name,
            llc=llc,
            l1=l1,
            traffic=self.traffic,
            energy=energy,
            tlb=tlb,
            dram_reads=self.dram.stats.reads,
            dram_writes=self.dram.stats.writes,
            llc_accesses=llc.accesses,
            llc_hit_ratio=llc.hit_ratio,
            mean_nuca_distance=self.traffic.mean_nuca_distance,
            router_bytes=self.traffic.router_bytes,
            bypassed_accesses=self.policy.stats.bypasses,
            faults=faults,
            extra=extra,
        )


def _finalize_machine(machine: Machine, cfg: SystemConfig, seed: int) -> Machine:
    """Attach the configured fault schedule (if any) to a fresh machine."""
    if cfg.fault_spec:
        machine.attach_faults(parse_fault_spec(cfg.fault_spec), seed)
    return machine


def build_machine(
    cfg: SystemConfig,
    policy: str = "snuca",
    *,
    rrt_lookup_cycles: int | None = None,
    fragmentation: float = 0.03,
    seed: int = 0,
    census: bool = True,
) -> Machine:
    """Construct a machine running one of :data:`POLICIES`.

    ``tdnuca-bypass-only`` and ``tdnuca-noisa`` build the same hardware as
    ``tdnuca``; the behavioural difference lives in the runtime extension
    (see :func:`repro.experiments.runner.build_runtime`).
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")
    cfg.validate()
    amap = AddressMap(cfg.block_bytes, cfg.page_bytes, cfg.physical_address_bits)
    mesh = Mesh(cfg.mesh_width, cfg.mesh_height, cfg.cluster_width, cfg.cluster_height)
    if policy == "snuca":
        machine = Machine(
            cfg, SNuca(cfg.num_banks), fragmentation=fragmentation, seed=seed,
            census=census,
        )
        return _finalize_machine(machine, cfg, seed)
    if policy == "rnuca":
        machine = Machine(
            cfg, RNuca(mesh, amap), fragmentation=fragmentation, seed=seed,
            census=census,
        )
        return _finalize_machine(machine, cfg, seed)
    if policy == "dnuca":
        machine = Machine(
            cfg, DNuca(mesh), fragmentation=fragmentation, seed=seed,
            census=census,
        )
        return _finalize_machine(machine, cfg, seed)
    if policy == "tdnuca-noisa":
        # Section V-E runtime-overhead experiment: the runtime extension
        # runs all its bookkeeping but never executes the ISA instructions,
        # so the hardware is plain S-NUCA (no RRT latency on misses).  The
        # RRT/ISA objects exist only so the extension has something to
        # sample; they stay empty.
        machine = Machine(
            cfg, SNuca(cfg.num_banks), fragmentation=fragmentation, seed=seed,
            census=census,
        )
        rrts = [RRT(c, cfg.rrt_entries) for c in range(cfg.num_cores)]
        machine.isa = TdNucaISA(machine.amap, machine.tlbs, rrts, cfg.latency)
        machine.isa.flush_executor = machine._execute_flush
        return _finalize_machine(machine, cfg, seed)
    # TD-NUCA variants share the RRT/ISA hardware.
    rrts = [RRT(c, cfg.rrt_entries) for c in range(cfg.num_cores)]
    lookup = (
        cfg.latency.rrt_lookup if rrt_lookup_cycles is None else rrt_lookup_cycles
    )
    td_policy = TdNucaPolicy(mesh, amap, rrts, lookup)
    machine = Machine(
        cfg,
        td_policy,
        fragmentation=fragmentation,
        seed=seed,
        census=census,
        rrts=rrts,
    )
    isa = TdNucaISA(machine.amap, machine.tlbs, rrts, cfg.latency)
    machine.isa = isa
    isa.flush_executor = machine._execute_flush
    return _finalize_machine(machine, cfg, seed)
